"""Structure versions (Definition 9) and their inference.

A structure version ``V = <VSid, {D1,V, ..., Dn,V}, ti, tf>`` is a *valid
and unchanged* structure over its valid time: each ``Di,V`` is the
restriction of the temporal dimension ``Di`` to the elements valid for **all**
``t`` in ``[ti, tf]``.

The paper notes structure versions "partition history and … can be inferred
from the TMD Schema, as the intersections of the valid time intervals of all
Member Versions and Temporal Relationships".  :func:`infer_structure_versions`
implements exactly that: collect the critical instants of every dimension,
cut history at them, and restrict each dimension to each maximal span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from .chronology import NOW, Instant, Interval
from .dimension import TemporalDimension
from .errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .schema import TemporalMultidimensionalSchema

__all__ = ["StructureVersion", "infer_structure_versions"]


@dataclass(frozen=True)
class StructureVersion:
    """One maximal span over which the multidimensional structure is fixed.

    Attributes
    ----------
    vsid:
        Unique identifier (``"V1"``, ``"V2"``, ... in chronological order).
    valid_time:
        The span ``[ti, tf]`` (``tf`` may be ``NOW`` for the live version).
    dimensions:
        Per-dimension restrictions ``Di,V`` (Definition 9).
    """

    vsid: str
    valid_time: Interval
    dimensions: Mapping[str, TemporalDimension]

    def dimension(self, did: str) -> TemporalDimension:
        """The restriction of dimension ``did`` to this version."""
        try:
            return self.dimensions[did]
        except KeyError:
            raise ModelError(
                f"structure version {self.vsid!r} has no dimension {did!r}"
            ) from None

    def leaf_ids(self, did: str) -> frozenset[str]:
        """Ids of the leaf member versions of ``did`` within this version.

        The structure is constant over the span, so leaves at the span's
        start instant are the leaves throughout.
        """
        dim = self.dimension(did)
        snap = dim.at(self.valid_time.start)
        return frozenset(snap.leaves())

    def member_ids(self, did: str) -> frozenset[str]:
        """Ids of every member version of ``did`` valid in this version."""
        return frozenset(self.dimension(did).members)

    def contains_instant(self, t: Instant) -> bool:
        """Whether ``t`` falls inside this version's span."""
        return self.valid_time.contains(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {did: len(dim.members) for did, dim in self.dimensions.items()}
        return f"StructureVersion({self.vsid}, {self.valid_time!r}, members={sizes})"


def infer_structure_versions(
    schema: "TemporalMultidimensionalSchema",
    *,
    horizon: Instant | None = None,
) -> list[StructureVersion]:
    """Partition history into structure versions (Definition 9).

    The timeline is cut at every *critical instant* — an interval start or
    the instant after an interval end, over all member versions and temporal
    relationships of all dimensions.  Between two consecutive cuts the valid
    element set cannot change, so each span is a maximal unchanged
    structure.  Spans in which no member version is valid are dropped
    (history before the first member, or gaps).

    The last span is open-ended (``NOW``) when any element is still valid at
    the end of history; ``horizon`` only matters for callers that want to
    bound enumeration explicitly.
    """
    points = schema.critical_instants()
    if not points:
        return []
    has_open = any(
        mv.valid_time.open_ended
        for dim in schema.dimensions.values()
        for mv in dim.members.values()
    )
    spans: list[Interval] = []
    for i, start in enumerate(points):
        if i + 1 < len(points):
            spans.append(Interval(start, points[i + 1] - 1))
        elif has_open:
            spans.append(Interval(start, NOW))
        elif horizon is not None and horizon >= start:
            spans.append(Interval(start, horizon))
        # else: the final cut is just past the last closed end — empty span.

    versions: list[StructureVersion] = []
    for span in spans:
        restricted = {
            did: dim.restrict(span) for did, dim in schema.dimensions.items()
        }
        if not any(len(dim.members) for dim in restricted.values()):
            continue
        versions.append(
            StructureVersion(
                vsid=f"V{len(versions) + 1}",
                valid_time=span,
                dimensions=restricted,
            )
        )
    return versions
