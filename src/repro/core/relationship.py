"""Temporal relationships (Definition 2).

A temporal relationship ``<Id_from, Id_to, ti, tf>`` is an explicit,
valid-time-stamped rollup edge: ``Id_from`` is the *child* member version and
``Id_to`` the *parent*.  Its valid time must be included in the intersection
of the valid times of the two member versions it links — checked by the
owning :class:`~repro.core.dimension.TemporalDimension` at insertion, with
:func:`validate_relationship` as the reusable primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .chronology import Endpoint, Instant, Interval
from .errors import InvalidRelationshipError, ModelError
from .member import MemberVersion

__all__ = ["TemporalRelationship", "validate_relationship"]


@dataclass(frozen=True)
class TemporalRelationship:
    """A valid-time rollup edge from a child member version to a parent.

    Parameters
    ----------
    child:
        Identifier of the child member version (``Id_from``).
    parent:
        Identifier of the parent member version (``Id_to``).
    valid_time:
        The ``[ti, tf]`` slice over which the rollup holds.
    """

    child: str
    parent: str
    valid_time: Interval

    def __post_init__(self) -> None:
        if not self.child or not self.parent:
            raise InvalidRelationshipError(
                "temporal relationship needs non-empty child and parent ids"
            )
        if self.child == self.parent:
            raise InvalidRelationshipError(
                f"temporal relationship cannot link {self.child!r} to itself"
            )

    @property
    def start(self) -> Instant:
        """Start of the relationship's valid time."""
        return self.valid_time.start

    @property
    def end(self) -> Endpoint:
        """End of the relationship's valid time (possibly ``NOW``)."""
        return self.valid_time.end

    def valid_at(self, t: Instant) -> bool:
        """Whether the rollup holds at instant ``t``."""
        return self.valid_time.contains(t)

    def valid_throughout(self, interval: Interval) -> bool:
        """Whether the rollup holds over all of ``interval``."""
        return self.valid_time.covers(interval)

    def excluded_at(self, tf: Instant) -> "TemporalRelationship":
        """A copy whose validity ends at ``tf - 1`` (used by Exclude, §3.2)."""
        if tf <= self.start:
            raise ModelError(
                f"cannot exclude relationship {self.child}->{self.parent} at {tf}: "
                f"it starts at {self.start}"
            )
        return replace(self, valid_time=self.valid_time.truncate_end(tf - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.child} -> {self.parent}, {self.valid_time!r}>"


def validate_relationship(
    rel: TemporalRelationship, child: MemberVersion, parent: MemberVersion
) -> None:
    """Enforce Definition 2's inclusion constraint.

    Raises :class:`InvalidRelationshipError` unless ``rel.valid_time`` is
    included in the intersection of the valid times of ``child`` and
    ``parent``.
    """
    if rel.child != child.mvid or rel.parent != parent.mvid:
        raise InvalidRelationshipError(
            f"relationship {rel!r} does not link {child.mvid!r} to {parent.mvid!r}"
        )
    common = child.valid_time.intersect(parent.valid_time)
    if common is None or not common.covers(rel.valid_time):
        raise InvalidRelationshipError(
            f"valid time {rel.valid_time!r} of relationship {rel.child}->{rel.parent} "
            f"is not included in the intersection of the member versions' valid "
            f"times ({child.valid_time!r} ∩ {parent.valid_time!r})"
        )
