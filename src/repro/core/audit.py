"""Schema auditing: a linter for temporal multidimensional schemas.

The model is deliberately permissive — overlapping member versions are
legal (Definition 1), deletions without mappings are legal (they merely
orphan facts in later modes), split shares are free numbers.  A production
warehouse still wants to *see* these situations before analysts do.
:func:`audit_schema` scans a schema and reports findings in three
severities:

* ``error`` — situations that will produce wrong or missing numbers
  (facts stranded with no mapping route, empty structure versions);
* ``warning`` — likely modelling mistakes (split shares not summing to 1,
  merge back-shares not summing to 1, excluded members without outgoing
  mappings);
* ``info`` — notable but often intentional (overlapping versions of a
  member, unknown mapping functions, members created mid-history without
  incoming mappings).

The §5.2 prototype surfaces per-cell reliability; the audit is the
schema-level complement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .chronology import ym_str
from .mapping import LinearMapping

if TYPE_CHECKING:  # pragma: no cover
    from .schema import TemporalMultidimensionalSchema

__all__ = ["Finding", "AuditReport", "audit_schema"]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: str
    code: str
    subject: str
    message: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class AuditReport:
    """All findings of one audit run."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, severity: str, code: str, subject: str, message: str) -> None:
        """Record a finding."""
        assert severity in SEVERITIES
        self.findings.append(Finding(severity, code, subject, message))

    def by_severity(self, severity: str) -> list[Finding]:
        """Findings of one severity."""
        return [f for f in self.findings if f.severity == severity]

    def by_code(self, code: str) -> list[Finding]:
        """Findings of one code."""
        return [f for f in self.findings if f.code == code]

    @property
    def ok(self) -> bool:
        """Whether the audit found no errors."""
        return not self.by_severity("error")

    def to_text(self) -> str:
        """Human-readable report, errors first."""
        if not self.findings:
            return "audit: clean (no findings)"
        lines = []
        for severity in SEVERITIES:
            for finding in self.by_severity(severity):
                lines.append(
                    f"[{severity:<7}] {finding.code:<28} {finding.message}"
                )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.findings)


def _check_share_sums(schema: "TemporalMultidimensionalSchema", report: AuditReport) -> None:
    """Split forward shares and merge reverse shares should sum to ≈ 1."""
    by_source: dict[str, list] = {}
    by_target: dict[str, list] = {}
    for rel in schema.mappings:
        by_source.setdefault(rel.source, []).append(rel)
        by_target.setdefault(rel.target, []).append(rel)

    for source, rels in by_source.items():
        if len(rels) < 2:
            continue  # not a split group
        for measure in schema.measure_names:
            factors = []
            for rel in rels:
                mm = rel.measure_map(measure, direction="forward")
                if not isinstance(mm.function, LinearMapping):
                    factors = None
                    break
                factors.append(mm.function.k)
            if factors is None:
                continue
            total = sum(factors)
            if abs(total - 1.0) > 1e-6:
                report.add(
                    "warning",
                    "split-shares-not-conservative",
                    source,
                    f"forward shares of {source!r} for measure {measure!r} "
                    f"sum to {total:g} (a split conserving the measure "
                    f"should sum to 1)",
                )

    for target, rels in by_target.items():
        if len(rels) < 2:
            continue  # not a merge group
        for measure in schema.measure_names:
            factors = []
            for rel in rels:
                mm = rel.measure_map(measure, direction="reverse")
                if not isinstance(mm.function, LinearMapping):
                    factors = None
                    break
                factors.append(mm.function.k)
            if factors is None:
                continue
            total = sum(factors)
            if abs(total - 1.0) > 1e-6:
                report.add(
                    "warning",
                    "merge-back-shares-not-conservative",
                    target,
                    f"reverse shares into {target!r} for measure {measure!r} "
                    f"sum to {total:g} (a conservative back-mapping should "
                    f"sum to 1)",
                )


def _check_transition_coverage(
    schema: "TemporalMultidimensionalSchema", report: AuditReport
) -> None:
    """Excluded members should map forward; late members should map back."""
    history_start = min(
        (
            mv.start
            for dim in schema.dimensions.values()
            for mv in dim.members.values()
        ),
        default=None,
    )
    sources = {rel.source for rel in schema.mappings}
    targets = {rel.target for rel in schema.mappings}
    for did, dim in schema.dimensions.items():
        for mv in dim.members.values():
            if not dim._is_leaf_sometime(mv):
                continue
            if not mv.valid_time.open_ended and mv.mvid not in sources:
                report.add(
                    "warning",
                    "excluded-without-mapping",
                    mv.mvid,
                    f"{mv.mvid!r} ({did}) ends at {ym_str(mv.end)} with no "
                    f"outgoing mapping: its facts cannot be presented in "
                    f"later structure versions",
                )
            if (
                history_start is not None
                and mv.start > history_start
                and mv.mvid not in targets
            ):
                report.add(
                    "info",
                    "created-without-mapping",
                    mv.mvid,
                    f"{mv.mvid!r} ({did}) appears at {ym_str(mv.start)} with "
                    f"no incoming mapping: its facts cannot be presented in "
                    f"earlier structure versions",
                )


def _check_overlaps(schema: "TemporalMultidimensionalSchema", report: AuditReport) -> None:
    for did, dim in schema.dimensions.items():
        by_name: dict[str, list] = {}
        for mv in dim.members.values():
            by_name.setdefault(mv.name, []).append(mv)
        for name, versions in by_name.items():
            versions.sort(key=lambda m: m.start)
            for a, b in zip(versions, versions[1:]):
                if a.valid_time.overlaps(b.valid_time):
                    report.add(
                        "info",
                        "overlapping-member-versions",
                        name,
                        f"member {name!r} ({did}) has overlapping versions "
                        f"{a.mvid!r} and {b.mvid!r} (legal per Definition 1, "
                        f"but verify it is intentional)",
                    )


def _check_unknown_mappings(
    schema: "TemporalMultidimensionalSchema", report: AuditReport
) -> None:
    from .mapping import UnknownMapping

    for rel in schema.mappings:
        for measure in schema.measure_names:
            for direction in ("forward", "reverse"):
                mm = rel.measure_map(measure, direction=direction)
                if isinstance(mm.function, UnknownMapping):
                    report.add(
                        "info",
                        "unknown-mapping-function",
                        f"{rel.source}->{rel.target}",
                        f"{direction} mapping of {measure!r} from "
                        f"{rel.source!r} to {rel.target!r} is unknown: cells "
                        f"will surface as uk in the affected modes",
                    )
                    break  # one finding per relationship direction pair


def _check_stranded_facts(
    schema: "TemporalMultidimensionalSchema", report: AuditReport
) -> None:
    """Facts with no route into some mode (the red cross-points)."""
    try:
        mvft = schema.multiversion_facts()
    except Exception as exc:  # schema broken enough to block inference
        report.add(
            "error",
            "multiversion-inference-failed",
            "schema",
            f"MultiVersion inference failed: {exc}",
        )
        return
    stranded: dict[tuple[str, str], int] = {}
    for orphan in mvft.unmapped:
        stranded[(orphan.source, orphan.mode)] = (
            stranded.get((orphan.source, orphan.mode), 0) + 1
        )
    for (source, mode), count in sorted(stranded.items()):
        report.add(
            "error",
            "stranded-facts",
            source,
            f"{count} fact(s) on {source!r} cannot be presented in mode "
            f"{mode!r} (no mapping route)",
        )


def _check_empty_versions(
    schema: "TemporalMultidimensionalSchema", report: AuditReport
) -> None:
    for version in schema.structure_versions():
        for did in schema.dimension_ids:
            if not version.leaf_ids(did):
                report.add(
                    "error",
                    "empty-version-dimension",
                    version.vsid,
                    f"structure version {version.vsid} has no leaf member "
                    f"versions along {did!r}: no fact is presentable there",
                )


def audit_schema(schema: "TemporalMultidimensionalSchema") -> AuditReport:
    """Run every audit check over a schema and return the report."""
    report = AuditReport()
    _check_share_sums(schema, report)
    _check_transition_coverage(schema, report)
    _check_overlaps(schema, report)
    _check_unknown_mappings(schema, report)
    _check_empty_versions(schema, report)
    _check_stranded_facts(schema, report)
    return report
