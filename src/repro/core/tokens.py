"""Structure-version tokens — the mutation clock behind result caching.

MVCC snapshots already stamp *committed* states with WAL LSNs, but the
live schema mutates between commits and several schema clones coexist in
one process.  To key cached query results safely we need an identifier
with one property: **two observably different schema states never share
it**.  A process-global monotonic counter delivers exactly that:

* every mutator of a :class:`~repro.core.dimension.TemporalDimension`,
  :class:`~repro.core.facts.TemporallyConsistentFactTable` or
  :class:`~repro.core.mapping.MappingCatalog` stamps its container with a
  fresh :func:`next_token` — a value never issued before anywhere in the
  process;
* a schema's :meth:`~repro.core.schema.TemporalMultidimensionalSchema.version_token`
  is the maximum of its containers' stamps.  Any mutation replaces one
  stamp with a new global maximum, so the schema token strictly increases
  on every write and is unique across clones (copy-on-write clones
  restore state through mutators, so they get their own stamps).

Tokens are process-local bookkeeping, deliberately **excluded from
serialization**: a restored or cloned schema is byte-identical to its
source on disk while carrying distinct tokens in memory.  Conservative
over-invalidation (a rollback bumps the token even though the state is
byte-identical) costs one cache miss, never a wrong answer.
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["next_token"]

_counter = itertools.count(1)
_lock = threading.Lock()


def next_token() -> int:
    """A process-globally unique, strictly increasing token."""
    with _lock:
        return next(_counter)
