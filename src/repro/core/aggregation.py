"""Data aggregation in the cube (Definition 12).

Given per-measure aggregates ``⊕`` and the confidence aggregate ``⊗cf``,
the value of a non-leaf member version ``d`` is obtained by folding the
values of its children — found through the temporal relationships of the
relevant structure — and so on recursively down to the leaf cells of the
MultiVersion fact table.

The structure that defines "children" depends on the presentation mode:

* in ``tcm`` it is the snapshot ``D(t)`` at the fact time — consistent data
  rolls up along the hierarchy *as it was* at ``t``;
* in a version mode ``VMi`` it is the (time-invariant) restriction of the
  dimension to structure version ``Vi``.

:class:`DataAggregator` implements the recursion with memoization.  It is
faithful to the paper's formula — children are aggregated, not leaves
directly — which matters for non-distributive aggregates such as averages.
"""

from __future__ import annotations

from typing import Mapping

from .chronology import Instant
from .confidence import ConfidenceFactor
from .dimension import DimensionSnapshot
from .errors import QueryError
from .multiversion import MultiVersionFactTable
from .presentation import PresentationMode, TCM_LABEL

__all__ = ["DataAggregator"]


class DataAggregator:
    """Definition 12's recursive rollup over a MultiVersion fact table."""

    def __init__(self, mvft: MultiVersionFactTable) -> None:
        self._mvft = mvft
        self._schema = mvft.schema
        self._snapshot_cache: dict[tuple[str, str, Instant], DimensionSnapshot] = {}

    # -- structure access -------------------------------------------------------

    def _snapshot(
        self, mode: PresentationMode, did: str, t: Instant
    ) -> DimensionSnapshot:
        """The hierarchy along ``did`` as seen by ``mode`` at fact time ``t``."""
        if mode.is_tcm:
            key = (TCM_LABEL, did, t)
            if key not in self._snapshot_cache:
                self._snapshot_cache[key] = self._schema.dimension(did).at(t)
            return self._snapshot_cache[key]
        version = mode.version
        assert version is not None
        anchor = version.valid_time.start
        key = (mode.label, did, anchor)
        if key not in self._snapshot_cache:
            self._snapshot_cache[key] = version.dimension(did).at(anchor)
        return self._snapshot_cache[key]

    # -- aggregation --------------------------------------------------------------

    def value(
        self,
        mode_label: str,
        coordinates: Mapping[str, str],
        t: Instant,
        measure: str,
    ) -> tuple[float | None, ConfidenceFactor | None]:
        """The aggregated ``(value, confidence)`` of one cube cell.

        ``coordinates`` maps every dimension id to a member version id of
        *any* grain; non-leaf coordinates are expanded recursively through
        their children (Definition 12).  Returns ``(None, None)`` when no
        fact contributes to the cell at all.
        """
        mode = self._mvft.modes.mode(mode_label)
        self._schema.measure(measure)  # raise early on unknown measures
        missing = set(self._schema.dimension_ids) - set(coordinates)
        if missing:
            raise QueryError(f"coordinates miss dimensions {sorted(missing)}")
        coords = {did: coordinates[did] for did in self._schema.dimension_ids}
        return self._value(mode, coords, t, measure, {})

    def _value(
        self,
        mode: PresentationMode,
        coords: dict[str, str],
        t: Instant,
        measure: str,
        memo: dict,
    ) -> tuple[float | None, ConfidenceFactor | None]:
        key = (tuple(sorted(coords.items())), t, measure)
        if key in memo:
            return memo[key]

        # Find the first non-leaf coordinate to expand.
        expand_dim: str | None = None
        children: list[str] = []
        for did, mvid in coords.items():
            snap = self._snapshot(mode, did, t)
            if mvid not in snap:
                memo[key] = (None, None)
                return memo[key]
            kids = snap.children(mvid)
            if kids:
                expand_dim = did
                children = kids
                break

        if expand_dim is None:
            row = self._mvft.lookup(coords, t, mode.label)
            if row is None:
                result: tuple[float | None, ConfidenceFactor | None] = (None, None)
            else:
                result = (row.value(measure), row.confidence(measure))
            memo[key] = result
            return result

        values: list[float | None] = []
        confidences: list[ConfidenceFactor] = []
        for child in children:
            child_coords = dict(coords)
            child_coords[expand_dim] = child
            v, cf = self._value(mode, child_coords, t, measure, memo)
            if cf is None:
                continue  # empty subtree contributes nothing
            values.append(v)
            confidences.append(cf)
        if not confidences:
            memo[key] = (None, None)
            return memo[key]
        agg = self._schema.measure(measure).aggregate
        combined = (
            agg.combine_all(values),
            self._schema.cf_aggregator.combine_all(confidences),
        )
        memo[key] = combined
        return combined
