"""Mapping relationships between member versions (Definition 7, Example 6).

Mapping relationships store the *links across transitions* that Kimball's
Type-2 SCD loses: when a member evolves (split, merge, transformation, ...),
a mapping relationship records, per measure, *how* values of the old version
convert into values of the new one (``F``) and back (``F⁻¹``), each pair
tagged with a confidence factor.

The §5 prototype restricts mapping functions to linear functions
``f(x) = k·x`` (``k`` a percentage/weighting); the conceptual layer here is
open: identity, linear, unknown and arbitrary callables are supported, and
functions compose along mapping chains (a member split in 2002 and renamed
in 2003 yields a two-edge chain whose composition is still a single
function).

:class:`MappingCatalog` aggregates the schema's set ``MR`` of mapping
relationships and answers the *routing* question at the heart of the
MultiVersion fact table (Definition 11): given a leaf member version ``d``
and a set of leaf member versions valid in the target structure version,
which targets can ``d``'s facts be mapped to, through which composed
function, and with what confidence?
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from .confidence import (
    AM,
    EM,
    SD,
    UK,
    ConfidenceAggregator,
    ConfidenceFactor,
    DEFAULT_AGGREGATOR,
)
from .errors import MappingError
from .tokens import next_token

__all__ = [
    "MappingFunction",
    "LinearMapping",
    "IdentityMapping",
    "UnknownMapping",
    "CallableMapping",
    "ComposedMapping",
    "MeasureMap",
    "MappingRelationship",
    "identity_maps",
    "linear_maps",
    "unknown_maps",
    "Route",
    "MappingCatalog",
]


class MappingFunction:
    """Abstract mapping function ``fm`` from a measure domain into itself."""

    def apply(self, value: float | None) -> float | None:
        """Map a measure value; ``None`` propagates (unknown upstream)."""
        raise NotImplementedError

    def compose(self, outer: "MappingFunction") -> "MappingFunction":
        """The function ``x ↦ outer(self(x))`` (chain traversal order)."""
        if isinstance(self, UnknownMapping) or isinstance(outer, UnknownMapping):
            return UnknownMapping()
        if isinstance(self, LinearMapping) and isinstance(outer, LinearMapping):
            return LinearMapping(self.k * outer.k)
        return ComposedMapping(self, outer)

    def describe(self) -> str:
        """Short human-readable form, e.g. ``x -> 0.4*x``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class LinearMapping(MappingFunction):
    """The prototype's linear mapping ``f(x) = k·x`` (§5.2)."""

    k: float

    def apply(self, value: float | None) -> float | None:
        if value is None:
            return None
        return self.k * value

    def describe(self) -> str:
        if self.k == 1:
            return "x -> x"
        return f"x -> {self.k:g}*x"


class IdentityMapping(LinearMapping):
    """The identity function ``x ↦ x`` (used by equivalence transitions)."""

    def __init__(self) -> None:
        super().__init__(k=1.0)


@dataclass(frozen=True)
class UnknownMapping(MappingFunction):
    """An unknown mapping: values cannot be converted (confidence ``uk``).

    Applying it yields ``None``; the MultiVersion fact table surfaces such
    cells with the ``uk`` confidence so the front end can flag them (red
    background in the §5.2 prototype).
    """

    def apply(self, value: float | None) -> float | None:
        return None

    def describe(self) -> str:
        return "x -> ?"


@dataclass(frozen=True)
class CallableMapping(MappingFunction):
    """An arbitrary user-supplied mapping function with a description."""

    fn: Callable[[float], float]
    description: str = "x -> f(x)"

    def apply(self, value: float | None) -> float | None:
        if value is None:
            return None
        return self.fn(value)

    def describe(self) -> str:
        return self.description

    def __hash__(self) -> int:
        return hash((id(self.fn), self.description))


@dataclass(frozen=True)
class ComposedMapping(MappingFunction):
    """Sequential composition ``x ↦ outer(inner(x))`` of two functions."""

    inner: MappingFunction
    outer: MappingFunction

    def apply(self, value: float | None) -> float | None:
        return self.outer.apply(self.inner.apply(value))

    def describe(self) -> str:
        return f"({self.outer.describe()}) o ({self.inner.describe()})"


@dataclass(frozen=True)
class MeasureMap:
    """One ``<fm, cf>`` pair of Definition 7: a mapping function for a
    measure together with the confidence of that conversion."""

    function: MappingFunction
    confidence: ConfidenceFactor

    def apply(self, value: float | None) -> float | None:
        """Apply the mapping function."""
        return self.function.apply(value)

    def compose(
        self, outer: "MeasureMap", aggregator: ConfidenceAggregator
    ) -> "MeasureMap":
        """Compose two conversion steps along a mapping chain.

        The composed confidence is ``⊗cf`` of the two steps' confidences —
        an ``em`` step after an ``am`` step is still only approximated, and
        ``uk`` absorbs.
        """
        return MeasureMap(
            self.function.compose(outer.function),
            aggregator.combine(self.confidence, outer.confidence),
        )


def identity_maps(
    measures: Iterable[str], confidence: ConfidenceFactor = EM
) -> dict[str, MeasureMap]:
    """``{(x→x, cf)}`` for every measure — equivalence transitions."""
    return {m: MeasureMap(IdentityMapping(), confidence) for m in measures}


def linear_maps(
    factors: Mapping[str, float], confidence: ConfidenceFactor = AM
) -> dict[str, MeasureMap]:
    """Per-measure linear maps ``x → k·x`` with a shared confidence."""
    return {m: MeasureMap(LinearMapping(k), confidence) for m, k in factors.items()}


def unknown_maps(measures: Iterable[str]) -> dict[str, MeasureMap]:
    """``{(-, uk)}`` for every measure — unknown transitions."""
    return {m: MeasureMap(UnknownMapping(), UK) for m in measures}


@dataclass(frozen=True)
class MappingRelationship:
    """The tuple ``<Id_from, Id_to, F, F⁻¹>`` of Definition 7.

    ``source`` (``Id_from``) is the leaf member version *before* the change
    and ``target`` (``Id_to``) the one *after*.  ``forward`` (``F``) maps
    measures of the old version onto the new one; ``reverse`` (``F⁻¹``) maps
    back.  Both are dictionaries keyed by measure name; measures absent from
    a direction are treated as unknown mappings.
    """

    source: str
    target: str
    forward: Mapping[str, MeasureMap] = field(default_factory=dict)
    reverse: Mapping[str, MeasureMap] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise MappingError("mapping relationship needs source and target ids")
        if self.source == self.target:
            raise MappingError(
                f"mapping relationship cannot link {self.source!r} to itself"
            )
        object.__setattr__(self, "forward", dict(self.forward))
        object.__setattr__(self, "reverse", dict(self.reverse))

    def measure_map(self, measure: str, *, direction: str) -> MeasureMap:
        """The conversion of ``measure`` along ``direction``.

        ``direction`` is ``"forward"`` (old → new, apply ``F``) or
        ``"reverse"`` (new → old, apply ``F⁻¹``).  Missing measures yield an
        unknown mapping, per the prototype's Table 12 semantics where an
        unspecified conversion is coded ``uk``.
        """
        if direction == "forward":
            maps: Mapping[str, MeasureMap] = self.forward
        elif direction == "reverse":
            maps = self.reverse
        else:
            raise MappingError(f"unknown mapping direction {direction!r}")
        return maps.get(measure, MeasureMap(UnknownMapping(), UK))

    def __hash__(self) -> int:
        return hash((self.source, self.target))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fwd = {m: (mm.function.describe(), mm.confidence.symbol) for m, mm in self.forward.items()}
        rev = {m: (mm.function.describe(), mm.confidence.symbol) for m, mm in self.reverse.items()}
        return f"<{self.source} => {self.target}, F={fwd}, F-1={rev}>"


@dataclass(frozen=True)
class Route:
    """A resolved mapping path from a source to a target member version.

    ``maps`` carries, per measure, the composed conversion along the path;
    ``hops`` is the number of mapping relationships traversed (0 means the
    source is itself valid in the target structure and no conversion was
    needed — confidence ``sd``).
    """

    source: str
    target: str
    maps: Mapping[str, MeasureMap]
    hops: int

    def confidence(self, measure: str) -> ConfidenceFactor:
        """Confidence of the composed conversion for ``measure``."""
        mm = self.maps.get(measure)
        return mm.confidence if mm is not None else UK

    def convert(self, measure: str, value: float | None) -> float | None:
        """Convert a measure value along the route."""
        mm = self.maps.get(measure)
        if mm is None:
            return None
        return mm.apply(value)


class MappingCatalog:
    """The schema's set ``MR`` of mapping relationships, with routing.

    The catalog indexes relationships by endpoint and performs a breadth-
    first search over the *bidirectional* mapping graph: a forward edge
    applies ``F`` and a reverse edge applies ``F⁻¹``.  Searches return the
    shortest route to every reachable target, composing functions and
    confidences hop by hop.
    """

    def __init__(
        self,
        relationships: Iterable[MappingRelationship] = (),
        *,
        aggregator: ConfidenceAggregator = DEFAULT_AGGREGATOR,
        measures: Iterable[str] = (),
    ) -> None:
        self._aggregator = aggregator
        self._measures = list(measures)
        self._by_source: dict[str, list[MappingRelationship]] = {}
        self._by_target: dict[str, list[MappingRelationship]] = {}
        self._relationships: list[MappingRelationship] = []
        self._token = next_token()
        for rel in relationships:
            self.add(rel)

    @property
    def version_token(self) -> int:
        """The version stamp of the catalog's current contents (bumped by
        every mutator; see :mod:`repro.core.tokens`)."""
        return self._token

    # -- maintenance --------------------------------------------------------

    def add(self, rel: MappingRelationship) -> None:
        """Register a mapping relationship (the Associate operator, §3.2,
        calls this after its consistency check)."""
        if any(
            r.source == rel.source and r.target == rel.target
            for r in self._relationships
        ):
            raise MappingError(
                f"a mapping relationship {rel.source!r} => {rel.target!r} already exists"
            )
        self._relationships.append(rel)
        self._by_source.setdefault(rel.source, []).append(rel)
        self._by_target.setdefault(rel.target, []).append(rel)
        for direction in (rel.forward, rel.reverse):
            for measure in direction:
                if measure not in self._measures:
                    self._measures.append(measure)
        self._token = next_token()

    def remove(self, rel: MappingRelationship) -> None:
        """Unregister a mapping relationship.

        Mapping relationships are never removed by an evolution operator;
        this exists so a rolled-back ``Associate`` can be compensated.  The
        relationship is matched by endpoints; list order of the remaining
        relationships is preserved.
        """
        for i, existing in enumerate(self._relationships):
            if existing.source == rel.source and existing.target == rel.target:
                del self._relationships[i]
                break
        else:
            raise MappingError(
                f"no mapping relationship {rel.source!r} => {rel.target!r} to remove"
            )
        self._by_source[rel.source] = [
            r for r in self._by_source.get(rel.source, []) if r.target != rel.target
        ]
        self._by_target[rel.target] = [
            r for r in self._by_target.get(rel.target, []) if r.source != rel.source
        ]
        self._token = next_token()

    def __iter__(self) -> Iterator[MappingRelationship]:
        return iter(self._relationships)

    def __len__(self) -> int:
        return len(self._relationships)

    @property
    def measures(self) -> list[str]:
        """Every measure named by at least one relationship."""
        return list(self._measures)

    def relationships_from(self, mvid: str) -> list[MappingRelationship]:
        """Relationships whose ``Id_from`` is ``mvid``."""
        return list(self._by_source.get(mvid, ()))

    def relationships_to(self, mvid: str) -> list[MappingRelationship]:
        """Relationships whose ``Id_to`` is ``mvid``."""
        return list(self._by_target.get(mvid, ()))

    # -- routing ------------------------------------------------------------

    def _neighbours(
        self, mvid: str, measures: Iterable[str]
    ) -> Iterator[tuple[str, dict[str, MeasureMap], str]]:
        """Adjacent member versions with the per-measure one-hop conversion
        and the direction of the edge taken."""
        for rel in self._by_source.get(mvid, ()):  # forward edge: apply F
            yield rel.target, {
                m: rel.measure_map(m, direction="forward") for m in measures
            }, "forward"
        for rel in self._by_target.get(mvid, ()):  # reverse edge: apply F⁻¹
            yield rel.source, {
                m: rel.measure_map(m, direction="reverse") for m in measures
            }, "reverse"

    def routes(
        self,
        source: str,
        targets: frozenset[str] | set[str],
        *,
        measures: Iterable[str] | None = None,
        max_hops: int = 8,
    ) -> list[Route]:
        """Mapping routes from ``source`` into ``targets``.

        When ``source`` itself belongs to ``targets`` the fact needs no
        conversion: a single zero-hop identity route with confidence ``sd``
        is returned, and the fact must NOT additionally leak through
        mapping edges into sibling members (a 2003 fact on Dpt.Bill stays
        on Dpt.Bill in the 2003 structure — it does not also contribute to
        Dpt.Paul through Dpt.Jones).

        Otherwise the catalog enumerates every *simple path* (no repeated
        member version, length ≤ ``max_hops``) over the mapping graph —
        forward edges apply ``F``, reverse edges ``F⁻¹`` — stopping each
        path at the first target it reaches.  Returning *all* paths, not
        just the shortest per target, is what conserves flow through
        diamond lineages: a member split into B and C whose parts later
        re-merge into D must contribute via both the B- and C-legs, their
        contributions folding with the measure's ``⊕`` downstream.

        Paths are **direction-monotone**: once a path takes a forward edge
        it may only continue forward, and likewise for reverse.  Transition
        lineages are chronological, so a target structure version is always
        reached by walking consistently into the future (``F``) or the past
        (``F⁻¹``); a direction switch would overshoot into a sibling branch
        and manufacture spurious flow (e.g. a fact on a member leaking into
        its split-sibling through their common ancestor, or into an
        unrelated member through a later merge).

        Unreachable targets are simply absent from the result (the
        MultiVersion fact table reports those facts as unmapped).
        """
        ms = list(measures) if measures is not None else list(self._measures)
        if source in targets:
            return [
                Route(
                    source=source,
                    target=source,
                    maps={m: MeasureMap(IdentityMapping(), SD) for m in ms},
                    hops=0,
                )
            ]
        results: list[Route] = []
        identity = {m: MeasureMap(IdentityMapping(), SD) for m in ms}
        # Iterative DFS over direction-monotone simple paths: entries are
        # (node, accumulated maps, depth, visited nodes, path direction).
        stack: deque[
            tuple[str, dict[str, MeasureMap], int, frozenset[str], str | None]
        ] = deque()
        stack.append((source, identity, 0, frozenset((source,)), None))
        while stack:
            node, acc, depth, visited, direction = stack.pop()
            if depth >= max_hops:
                continue
            for neighbour, step, edge_direction in self._neighbours(node, ms):
                if neighbour in visited:
                    continue
                if direction is not None and edge_direction != direction:
                    continue  # keep the path monotone in time
                composed = {
                    m: (
                        acc[m].compose(step[m], self._aggregator)
                        if depth > 0
                        else step[m]
                    )
                    for m in ms
                }
                if neighbour in targets:
                    results.append(
                        Route(
                            source=source,
                            target=neighbour,
                            maps=composed,
                            hops=depth + 1,
                        )
                    )
                    continue  # a path ends at the first target it reaches
                stack.append(
                    (
                        neighbour,
                        composed,
                        depth + 1,
                        visited | {neighbour},
                        edge_direction,
                    )
                )
        return results
