"""The global quality factor of a presentation mode (§5.2).

Once a request is built, the prototype computes, for each temporal mode, a
global quality factor::

    Q = ( Σ_i Σ_j pds(fb(i, j)) ) / (Ni * Nj * 10)

where ``pds`` is a user-pondered weight (0 weakest .. 10 best) assigned to
each confidence factor, and ``Ni``/``Nj`` are the numbers of lines and
columns of the result.  The user then picks the best version among the
temporal modes of presentation according to their own quality criteria.

This module computes ``Q`` over :class:`~repro.core.query.ResultTable`
objects and ranks modes for a given query.
"""

from __future__ import annotations

from typing import Mapping, TYPE_CHECKING

from .confidence import AM, EM, SD, UK, ConfidenceFactor
from .errors import QualityError
from .query import Query, QueryEngine, ResultTable

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["DEFAULT_WEIGHTS", "quality_factor", "rank_modes"]

DEFAULT_WEIGHTS: dict[str, int] = {
    SD.symbol: 10,
    EM.symbol: 8,
    AM.symbol: 5,
    UK.symbol: 0,
}
"""A sensible default ``pds``: source data best, unknown mappings worthless.

The paper leaves the weights to the user; override per call.
"""


def _weight(
    confidence: ConfidenceFactor | None, weights: Mapping[str, int]
) -> int:
    if confidence is None:
        # An empty cell carries no information — treated like an unknown
        # mapping (the prototype paints these cross-points red).
        return weights.get(UK.symbol, 0)
    try:
        return weights[confidence.symbol]
    except KeyError:
        raise QualityError(
            f"no quality weight declared for confidence {confidence.symbol!r}"
        ) from None


def quality_factor(
    result: ResultTable, weights: Mapping[str, int] | None = None
) -> float:
    """The §5.2 quality factor ``Q`` of one result table, in ``[0, 1]``.

    ``weights`` maps confidence symbols to integers in ``0..10``; missing
    tables default to :data:`DEFAULT_WEIGHTS`.  An empty result has no
    cells to judge and scores 0.
    """
    pds = dict(DEFAULT_WEIGHTS if weights is None else weights)
    for symbol, w in pds.items():
        if not 0 <= w <= 10:
            raise QualityError(
                f"quality weight for {symbol!r} must be within 0..10, got {w}"
            )
    confidences = result.cell_confidences()
    if not confidences:
        return 0.0
    total = sum(_weight(cf, pds) for cf in confidences)
    return total / (len(confidences) * 10)


def rank_modes(
    engine: QueryEngine,
    query: Query,
    weights: Mapping[str, int] | None = None,
) -> list[tuple[str, float, ResultTable]]:
    """Run ``query`` in every presentation mode and rank modes by ``Q``.

    Returns ``(mode label, Q, result)`` triples, best mode first (ties keep
    mode-set order, so ``tcm`` wins ties — consistent data is never worse
    than a mapping of itself).
    """
    results = engine.execute_all_modes(query)
    ranked = [
        (label, quality_factor(table, weights), table)
        for label, table in results.items()
    ]
    ranked.sort(key=lambda item: -item[1])
    return ranked
