"""Measures, aggregate functions and the temporally consistent fact table.

Definition 5 models the fact table as a function from leaf member versions
(one per dimension) and a time instant to measure values; the data is
*temporally consistent* because every referenced member version must be
valid at the fact's time coordinate.

This module provides:

* :class:`AggregateFunction` and the standard ``⊕`` instances (sum, min,
  max, count, avg) used by Definition 12's data aggregation;
* :class:`Measure` — a named measure with its domain aggregate;
* :class:`FactRow` — one cell of the consistent fact table;
* :class:`TemporallyConsistentFactTable` — an append-only store with
  coordinate indexes, validated against the schema's dimensions by
  :meth:`~repro.core.schema.TemporalMultidimensionalSchema.validate`.

Unknown values (produced by ``uk`` mappings downstream) are represented as
``None``; aggregates skip them, and the confidence algebra — not the value
algebra — is what reports the resulting unreliability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .chronology import Instant
from .errors import FactError
from .tokens import next_token

__all__ = [
    "AggregateFunction",
    "SumAggregate",
    "MinAggregate",
    "MaxAggregate",
    "CountAggregate",
    "AvgAggregate",
    "SUM",
    "MIN",
    "MAX",
    "COUNT",
    "AVG",
    "Measure",
    "FactKey",
    "FactRow",
    "TemporallyConsistentFactTable",
]


class AggregateFunction:
    """An aggregate ``⊕`` over measure values.

    Subclasses implement :meth:`fold` over the non-``None`` values; the
    public :meth:`combine_all` handles unknowns: if every input is unknown
    the aggregate is unknown (``None``), otherwise unknowns are skipped and
    the confidence algebra carries the reliability downgrade.
    """

    name = "aggregate"

    def fold(self, values: Sequence[float]) -> float:
        """Combine a non-empty sequence of known values."""
        raise NotImplementedError

    def combine_all(self, values: Iterable[float | None]) -> float | None:
        """Aggregate a sequence that may contain unknown (``None``) values."""
        known = [v for v in values if v is not None]
        if not known:
            return None
        return self.fold(known)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class SumAggregate(AggregateFunction):
    """``⊕ = +`` — the default for additive measures such as amounts."""

    name = "sum"

    def fold(self, values: Sequence[float]) -> float:
        return sum(values)


class MinAggregate(AggregateFunction):
    """``⊕ = min``."""

    name = "min"

    def fold(self, values: Sequence[float]) -> float:
        return min(values)


class MaxAggregate(AggregateFunction):
    """``⊕ = max``."""

    name = "max"

    def fold(self, values: Sequence[float]) -> float:
        return max(values)


class CountAggregate(AggregateFunction):
    """Counts known values (useful for audit measures)."""

    name = "count"

    def fold(self, values: Sequence[float]) -> float:
        return float(len(values))


class AvgAggregate(AggregateFunction):
    """Arithmetic mean of the known values.

    Note that averages are not distributive; rolling up pre-aggregated
    averages is approximate, which is why the paper's examples stick to
    additive measures.  The cube layer materializes sums and counts when an
    average measure is requested.
    """

    name = "avg"

    def fold(self, values: Sequence[float]) -> float:
        return sum(values) / len(values)


SUM = SumAggregate()
MIN = MinAggregate()
MAX = MaxAggregate()
COUNT = CountAggregate()
AVG = AvgAggregate()


@dataclass(frozen=True)
class Measure:
    """A named measure with its domain aggregate ``⊕``.

    Parameters
    ----------
    name:
        Measure name, unique within a schema (e.g. ``"amount"``).
    aggregate:
        The ``⊕`` used by data aggregation (Definition 12).  Defaults to sum.
    description:
        Optional free-text documentation surfaced by the metadata layer.
    """

    name: str
    aggregate: AggregateFunction = SUM
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise FactError("measure needs a non-empty name")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Measure({self.name}, {self.aggregate.name})"


FactKey = tuple[tuple[str, ...], Instant]
"""Internal key of a fact row: leaf mvids in dimension order, plus time."""


@dataclass(frozen=True)
class FactRow:
    """One cell of the temporally consistent fact table.

    ``coordinates`` maps each dimension name to the *leaf* member version id
    the fact is recorded against; ``t`` is the time coordinate; ``values``
    maps measure names to values.  ``source`` optionally names the ETL
    origin of the row (``"<source>#<row-index>"``) so lineage can point
    back at the operational record that produced it.
    """

    coordinates: Mapping[str, str]
    t: Instant
    values: Mapping[str, float | None]
    source: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "coordinates", MappingProxyType(dict(self.coordinates)))
        object.__setattr__(self, "values", MappingProxyType(dict(self.values)))

    def coordinate(self, dimension: str) -> str:
        """The leaf member version id along ``dimension``."""
        try:
            return self.coordinates[dimension]
        except KeyError:
            raise FactError(
                f"fact row has no coordinate for dimension {dimension!r}"
            ) from None

    def value(self, measure: str) -> float | None:
        """The value recorded for ``measure`` (``None`` when unknown)."""
        return self.values.get(measure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        coords = ", ".join(f"{d}={m}" for d, m in sorted(self.coordinates.items()))
        vals = ", ".join(f"{m}={v}" for m, v in self.values.items())
        return f"Fact({coords}, t={self.t}, {vals})"


class TemporallyConsistentFactTable:
    """The fact table ``f`` of Definition 5.

    The table is append-only (data warehouses are non-volatile); rows carry
    one leaf member version id per dimension, a time coordinate and one
    value per measure.  Dimension names and measures are fixed at
    construction.

    The table itself checks *shape* (all coordinates and measures present);
    the *temporal consistency* constraint — every coordinate is a leaf
    member version valid at ``t`` — requires the dimensions and is enforced
    by the owning schema's ``validate`` / ``add_fact`` entry points.
    """

    def __init__(self, dimensions: Sequence[str], measures: Sequence[Measure]) -> None:
        if not dimensions:
            raise FactError("a fact table needs at least one dimension")
        if len(set(dimensions)) != len(dimensions):
            raise FactError(f"duplicate dimension names in {dimensions!r}")
        if not measures:
            raise FactError("a fact table needs at least one measure")
        names = [m.name for m in measures]
        if len(set(names)) != len(names):
            raise FactError(f"duplicate measure names in {names!r}")
        self._dimensions = tuple(dimensions)
        self._measures = tuple(measures)
        self._measure_index = {m.name: m for m in measures}
        self._rows: list[FactRow] = []
        self._token = next_token()

    @property
    def version_token(self) -> int:
        """The version stamp of the table's current contents (bumped by
        every mutator; see :mod:`repro.core.tokens`)."""
        return self._token

    # -- schema -------------------------------------------------------------

    @property
    def dimensions(self) -> tuple[str, ...]:
        """Dimension names, in coordinate order."""
        return self._dimensions

    @property
    def measures(self) -> tuple[Measure, ...]:
        """The declared measures."""
        return self._measures

    @property
    def measure_names(self) -> list[str]:
        """Measure names, in declaration order."""
        return [m.name for m in self._measures]

    def measure(self, name: str) -> Measure:
        """Look up a measure by name."""
        try:
            return self._measure_index[name]
        except KeyError:
            raise FactError(f"unknown measure {name!r}") from None

    # -- data ---------------------------------------------------------------

    def add(
        self,
        coordinates: Mapping[str, str],
        t: Instant,
        values: Mapping[str, float | None] | None = None,
        *,
        source: str | None = None,
        **value_kwargs: float | None,
    ) -> FactRow:
        """Append a fact row.

        ``values`` and keyword arguments are merged; every declared measure
        must be present and every coordinate must name a declared dimension.
        ``source`` tags the row with its ETL origin.  Returns the stored
        :class:`FactRow`.
        """
        merged: dict[str, float | None] = dict(values or {})
        merged.update(value_kwargs)
        missing_dims = set(self._dimensions) - set(coordinates)
        if missing_dims:
            raise FactError(f"fact row misses coordinates for {sorted(missing_dims)}")
        extra_dims = set(coordinates) - set(self._dimensions)
        if extra_dims:
            raise FactError(f"fact row names unknown dimensions {sorted(extra_dims)}")
        missing_measures = set(self._measure_index) - set(merged)
        if missing_measures:
            raise FactError(f"fact row misses measures {sorted(missing_measures)}")
        extra_measures = set(merged) - set(self._measure_index)
        if extra_measures:
            raise FactError(f"fact row names unknown measures {sorted(extra_measures)}")
        row = FactRow(coordinates=coordinates, t=t, values=merged, source=source)
        self._rows.append(row)
        self._token = next_token()
        return row

    def rows(self) -> Iterator[FactRow]:
        """Iterate all fact rows in insertion order."""
        return iter(self._rows)

    def adopt(self, rows: Iterable[FactRow]) -> int:
        """Append already-validated :class:`FactRow` objects, sharing them.

        Rows are immutable, so a snapshot/clone of a fact table can share
        the row objects of its source and only copy the container — the
        copy-on-write trick behind
        :mod:`repro.concurrency.snapshot`.  No shape re-validation happens;
        callers must hand over rows that came out of a compatible table.
        Returns the number of rows adopted.
        """
        count = len(self._rows)
        self._rows.extend(rows)
        self._token = next_token()
        return len(self._rows) - count

    def truncate(self, length: int) -> int:
        """Drop every row appended after position ``length``.

        The fact table is append-only for *committed* data; truncation
        exists solely so a transaction that loaded facts can roll them back
        to its begin mark.  Returns the number of rows dropped.
        """
        if length < 0 or length > len(self._rows):
            raise FactError(
                f"cannot truncate {len(self._rows)} fact rows to {length}"
            )
        dropped = len(self._rows) - length
        del self._rows[length:]
        self._token = next_token()
        return dropped

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[FactRow]:
        return self.rows()

    # -- lookups ------------------------------------------------------------

    def rows_at(self, t: Instant) -> list[FactRow]:
        """All rows whose time coordinate equals ``t``."""
        return [r for r in self._rows if r.t == t]

    def rows_for(self, dimension: str, mvid: str) -> list[FactRow]:
        """All rows recorded against ``mvid`` along ``dimension``."""
        if dimension not in self._dimensions:
            raise FactError(f"unknown dimension {dimension!r}")
        return [r for r in self._rows if r.coordinates.get(dimension) == mvid]

    def lookup(
        self, coordinates: Mapping[str, str], t: Instant
    ) -> FactRow | None:
        """The row at exactly these coordinates and time, if any.

        Definition 5 models ``f`` as a function, so at most one row matches;
        the store tolerates duplicates for robustness but ``lookup`` returns
        the most recently appended one (later loads win, mirroring ETL
        upserts).
        """
        for row in reversed(self._rows):
            if row.t == t and all(
                row.coordinates.get(d) == m for d, m in coordinates.items()
            ):
                return row
        return None

    def total(self, measure: str) -> float | None:
        """Aggregate ``measure`` over the whole table with its own ``⊕``."""
        agg = self.measure(measure).aggregate
        return agg.combine_all(r.value(measure) for r in self._rows)

    def to_records(self) -> list[dict[str, Any]]:
        """Flatten rows to plain dictionaries (ETL/export convenience)."""
        records: list[dict[str, Any]] = []
        for row in self._rows:
            rec: dict[str, Any] = {d: row.coordinates[d] for d in self._dimensions}
            rec["t"] = row.t
            rec.update({m: row.value(m) for m in self.measure_names})
            records.append(rec)
        return records
