"""JSON serialization of Temporal Multidimensional Schemas.

A TMD schema is a model artifact worth versioning next to the data it
describes; this module round-trips the whole conceptual state — member
versions (with attributes and valid times), temporal relationships,
measures, mapping relationships and the consistent fact table — through a
single JSON document.

Limits, stated loudly rather than discovered late:

* mapping functions must be **linear or unknown** (the §5.2 prototype's
  assumption); arbitrary :class:`CallableMapping` functions cannot be
  serialized and raise :class:`SerializationError`;
* the confidence aggregate must be the default Example-5 truth table;
* measure aggregates must be the built-ins (sum/min/max/count/avg).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .chronology import Interval, NOW, NowType
from .confidence import DEFAULT_AGGREGATOR, factor_from_code
from .errors import ReproError
from .facts import AVG, COUNT, MAX, MIN, SUM, Measure
from .mapping import (
    LinearMapping,
    MappingRelationship,
    MeasureMap,
    UnknownMapping,
)
from .member import MemberVersion
from .relationship import TemporalRelationship
from .schema import TemporalMultidimensionalSchema
from .dimension import TemporalDimension

__all__ = [
    "SerializationError",
    "schema_to_dict",
    "schema_from_dict",
    "save_schema",
    "load_schema",
    "interval_to_json",
    "interval_from_json",
    "measure_map_to_json",
    "measure_map_from_json",
]

FORMAT_VERSION = 1

_AGGREGATES = {"sum": SUM, "min": MIN, "max": MAX, "count": COUNT, "avg": AVG}


class SerializationError(ReproError):
    """Raised when a schema cannot be (de)serialized."""


def _interval_to_json(interval: Interval) -> dict[str, Any]:
    end = interval.end
    return {
        "start": interval.start,
        "end": None if isinstance(end, NowType) else end,
    }


def _interval_from_json(payload: dict[str, Any]) -> Interval:
    end = payload["end"]
    return Interval(payload["start"], NOW if end is None else end)


def _measure_map_to_json(mm: MeasureMap) -> dict[str, Any]:
    fn = mm.function
    if isinstance(fn, LinearMapping):
        spec: dict[str, Any] = {"kind": "linear", "k": fn.k}
    elif isinstance(fn, UnknownMapping):
        spec = {"kind": "unknown"}
    else:
        raise SerializationError(
            f"mapping function {fn.describe()!r} is not serializable; only "
            f"linear and unknown functions round-trip (the §5.2 prototype's "
            f"assumption)"
        )
    spec["confidence"] = mm.confidence.code
    return spec


def _measure_map_from_json(payload: dict[str, Any]) -> MeasureMap:
    confidence = factor_from_code(payload["confidence"])
    if payload["kind"] == "linear":
        return MeasureMap(LinearMapping(payload["k"]), confidence)
    if payload["kind"] == "unknown":
        return MeasureMap(UnknownMapping(), confidence)
    raise SerializationError(f"unknown mapping-function kind {payload['kind']!r}")


# Public aliases: the write-ahead journal (repro.robustness.wal) serializes
# the same value shapes as full-schema snapshots, record by record.
interval_to_json = _interval_to_json
interval_from_json = _interval_from_json
measure_map_to_json = _measure_map_to_json
measure_map_from_json = _measure_map_from_json


def schema_to_dict(schema: TemporalMultidimensionalSchema) -> dict[str, Any]:
    """Serialize a schema to a JSON-compatible dictionary."""
    if schema.cf_aggregator is not DEFAULT_AGGREGATOR:
        raise SerializationError(
            "only the default (Example 5) confidence aggregate serializes"
        )
    dimensions = []
    for did, dim in schema.dimensions.items():
        members = []
        for mv in dim.members.values():
            members.append(
                {
                    "mvid": mv.mvid,
                    "name": mv.name,
                    "level": mv.level,
                    "attributes": dict(mv.attributes),
                    "valid_time": _interval_to_json(mv.valid_time),
                }
            )
        relationships = [
            {
                "child": rel.child,
                "parent": rel.parent,
                "valid_time": _interval_to_json(rel.valid_time),
            }
            for rel in dim.relationships
        ]
        dimensions.append(
            {
                "did": did,
                "name": dim.name,
                "members": members,
                "relationships": relationships,
            }
        )

    measures = []
    for measure in schema.measures:
        if measure.aggregate.name not in _AGGREGATES:
            raise SerializationError(
                f"measure {measure.name!r} uses a custom aggregate "
                f"{measure.aggregate.name!r}; only built-ins serialize"
            )
        measures.append(
            {
                "name": measure.name,
                "aggregate": measure.aggregate.name,
                "description": measure.description,
            }
        )

    mappings = []
    for rel in schema.mappings:
        mappings.append(
            {
                "source": rel.source,
                "target": rel.target,
                "forward": {
                    m: _measure_map_to_json(mm) for m, mm in rel.forward.items()
                },
                "reverse": {
                    m: _measure_map_to_json(mm) for m, mm in rel.reverse.items()
                },
            }
        )

    facts = []
    for row in schema.facts:
        fact_payload = {
            "coordinates": dict(row.coordinates),
            "t": row.t,
            "values": dict(row.values),
        }
        # The key appears only on tagged rows, so pre-lineage dumps stay
        # byte-identical.
        if row.source is not None:
            fact_payload["source"] = row.source
        facts.append(fact_payload)

    return {
        "format": FORMAT_VERSION,
        "dimensions": dimensions,
        "measures": measures,
        "mappings": mappings,
        "facts": facts,
    }


def schema_from_dict(payload: dict[str, Any]) -> TemporalMultidimensionalSchema:
    """Rebuild a schema from :func:`schema_to_dict` output.

    The rebuilt schema is fully validated (dimension invariants, fact
    leaf/validity constraints, mapping endpoints) before being returned.
    """
    if payload.get("format") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported schema format {payload.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    dimensions = []
    for dim_payload in payload["dimensions"]:
        dim = TemporalDimension(dim_payload["did"], dim_payload["name"])
        for m in dim_payload["members"]:
            dim.add_member(
                MemberVersion(
                    mvid=m["mvid"],
                    name=m["name"],
                    valid_time=_interval_from_json(m["valid_time"]),
                    attributes=m["attributes"],
                    level=m["level"],
                )
            )
        for r in dim_payload["relationships"]:
            dim.add_relationship(
                TemporalRelationship(
                    child=r["child"],
                    parent=r["parent"],
                    valid_time=_interval_from_json(r["valid_time"]),
                ),
                check_acyclic=False,
            )
        dimensions.append(dim)

    measures = [
        Measure(
            name=m["name"],
            aggregate=_AGGREGATES[m["aggregate"]],
            description=m.get("description", ""),
        )
        for m in payload["measures"]
    ]
    schema = TemporalMultidimensionalSchema(dimensions, measures)

    for rel_payload in payload["mappings"]:
        schema.add_mapping(
            MappingRelationship(
                source=rel_payload["source"],
                target=rel_payload["target"],
                forward={
                    m: _measure_map_from_json(spec)
                    for m, spec in rel_payload["forward"].items()
                },
                reverse={
                    m: _measure_map_from_json(spec)
                    for m, spec in rel_payload["reverse"].items()
                },
            ),
            allow_non_leaf=True,  # §4.2 rewrites may have inner-node links
        )

    for fact in payload["facts"]:
        schema.add_fact(
            fact["coordinates"],
            fact["t"],
            fact["values"],
            source=fact.get("source"),
        )

    schema.validate()
    return schema


def save_schema(schema: TemporalMultidimensionalSchema, path: str | Path) -> None:
    """Write a schema to a JSON file."""
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2))


def load_schema(path: str | Path) -> TemporalMultidimensionalSchema:
    """Read a schema from a JSON file written by :func:`save_schema`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from None
    return schema_from_dict(payload)
