"""The Temporal Multidimensional Schema (Definition 8).

A TMD schema ``<{D1..Dn, T}, MR, f>`` bundles the temporal dimensions, the
set of mapping relationships and the temporally consistent fact table.  Time
is not materialized as a dimension object: fact rows carry an instant
coordinate and the query layer buckets it through
:class:`~repro.core.chronology.Granularity` — this mirrors the paper's
special-cased Time dimension ``T`` without forcing a member version per
instant.

The schema is the single entry point applications should hold: it owns
validation (Definition 5's leaf-and-valid constraint on facts, Definition 7's
leaf constraint on mappings), exposes structure-version inference
(Definition 9) and mode enumeration (Definition 10), and hands a coherent
view to the MultiVersion fact table builder (Definition 11).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .chronology import Instant, critical_instants
from .confidence import ConfidenceAggregator, DEFAULT_AGGREGATOR
from .dimension import TemporalDimension
from .errors import (
    FactValidityError,
    MappingError,
    ModelError,
    UnknownDimensionError,
    UnknownMemberVersionError,
)
from .facts import FactRow, Measure, TemporallyConsistentFactTable
from .mapping import MappingCatalog, MappingRelationship

__all__ = ["TemporalMultidimensionalSchema"]


class TemporalMultidimensionalSchema:
    """``TMD = <{D1, ..., Dn, T}, MR, f>`` — Definition 8.

    Parameters
    ----------
    dimensions:
        The temporal dimensions (analysis axes other than time).
    measures:
        The schema's measures with their ``⊕`` aggregates.
    cf_aggregator:
        The designer-supplied ``⊗cf`` (defaults to Example 5's truth table).
    """

    def __init__(
        self,
        dimensions: Sequence[TemporalDimension],
        measures: Sequence[Measure],
        *,
        cf_aggregator: ConfidenceAggregator = DEFAULT_AGGREGATOR,
    ) -> None:
        if not dimensions:
            raise ModelError("a schema needs at least one temporal dimension")
        self._dimensions: dict[str, TemporalDimension] = {}
        for dim in dimensions:
            if dim.did in self._dimensions:
                raise ModelError(f"duplicate dimension id {dim.did!r}")
            self._dimensions[dim.did] = dim
        self._measures = tuple(measures)
        self.cf_aggregator = cf_aggregator
        self.mappings = MappingCatalog(
            aggregator=cf_aggregator, measures=[m.name for m in measures]
        )
        self.facts = TemporallyConsistentFactTable(
            dimensions=list(self._dimensions), measures=list(measures)
        )

    # -- dimensions -----------------------------------------------------------

    @property
    def dimensions(self) -> dict[str, TemporalDimension]:
        """Temporal dimensions by id."""
        return dict(self._dimensions)

    @property
    def dimension_ids(self) -> list[str]:
        """Dimension ids in declaration (coordinate) order."""
        return list(self._dimensions)

    def dimension(self, did: str) -> TemporalDimension:
        """Look up a dimension by id."""
        try:
            return self._dimensions[did]
        except KeyError:
            raise UnknownDimensionError(f"schema has no dimension {did!r}") from None

    def find_member(self, mvid: str) -> tuple[TemporalDimension, str]:
        """Locate a member version id across dimensions.

        Returns ``(dimension, mvid)``; raises when absent everywhere.
        Member version ids are expected to be globally unique (the paper's
        MVid), which :meth:`validate` also checks.
        """
        for dim in self._dimensions.values():
            if mvid in dim:
                return dim, mvid
        raise UnknownMemberVersionError(f"no dimension contains member version {mvid!r}")

    # -- measures ---------------------------------------------------------------

    @property
    def measures(self) -> tuple[Measure, ...]:
        """Declared measures."""
        return self._measures

    @property
    def measure_names(self) -> list[str]:
        """Measure names in declaration order."""
        return [m.name for m in self._measures]

    def measure(self, name: str) -> Measure:
        """Look up a measure by name."""
        return self.facts.measure(name)

    # -- facts -----------------------------------------------------------------

    def add_fact(
        self,
        coordinates: Mapping[str, str],
        t: Instant,
        values: Mapping[str, float | None] | None = None,
        *,
        source: str | None = None,
        **value_kwargs: float | None,
    ) -> FactRow:
        """Record a temporally consistent fact (Definition 5).

        Every coordinate must reference a member version that is a *leaf at
        t* in its dimension and valid at ``t``; violations raise
        :class:`FactValidityError`.  ``source`` tags the row with its ETL
        origin (source name + row index) for lineage.
        """
        for did, mvid in coordinates.items():
            dim = self.dimension(did)
            mv = dim.member(mvid)  # raises UnknownMemberVersionError
            if not mv.valid_at(t):
                raise FactValidityError(
                    f"member version {mvid!r} of dimension {did!r} is not valid "
                    f"at t={t} (valid time {mv.valid_time!r})"
                )
            if not dim.is_leaf_at(mvid, t):
                raise FactValidityError(
                    f"member version {mvid!r} of dimension {did!r} is not a leaf "
                    f"at t={t}; facts are recorded at leaf grain (Definition 5)"
                )
        return self.facts.add(coordinates, t, values, source=source, **value_kwargs)

    # -- mappings ----------------------------------------------------------------

    def add_mapping(
        self, rel: MappingRelationship, *, allow_non_leaf: bool = False
    ) -> MappingRelationship:
        """Register a mapping relationship (Definition 7) after checking
        both endpoints are known leaf member versions.

        This is the consistency check behind the ``Associate`` operator.
        Definition 7's note makes mappings *relevant* only for leaf member
        versions (non-leaf values are aggregated from children), so the
        default rejects non-leaf endpoints; the §4.2 logical Reclassify
        rewrite — which re-versions inner members too — passes
        ``allow_non_leaf=True``.
        """
        src_dim, _ = self.find_member(rel.source)
        tgt_dim, _ = self.find_member(rel.target)
        if src_dim.did != tgt_dim.did:
            raise MappingError(
                f"mapping relationship {rel.source!r} => {rel.target!r} links "
                f"member versions of different dimensions "
                f"({src_dim.did!r} vs {tgt_dim.did!r})"
            )
        if not allow_non_leaf:
            for mvid, dim in ((rel.source, src_dim), (rel.target, tgt_dim)):
                if not dim._is_leaf_sometime(dim.member(mvid)):
                    raise MappingError(
                        f"mapping relationships are only relevant for leaf member "
                        f"versions; {mvid!r} is never a leaf in {dim.did!r}"
                    )
        unknown = set(rel.forward) | set(rel.reverse)
        unknown -= set(self.measure_names)
        if unknown:
            raise MappingError(
                f"mapping relationship references unknown measures {sorted(unknown)}"
            )
        self.mappings.add(rel)
        return rel

    # -- versioning ----------------------------------------------------------------

    def version_token(self) -> int:
        """A process-unique stamp of the schema's current observable state.

        The maximum of the component containers' mutation stamps (see
        :mod:`repro.core.tokens`): every mutation to any dimension, the
        fact table or the mapping catalog replaces one stamp with a fresh
        process-global maximum, so the schema token strictly increases on
        each write and two different states never share it.  This is the
        *structure version* component of versioned result-cache keys —
        an inferred :class:`~repro.core.multiversion.MultiVersionFactTable`
        records it at build time and can later tell whether it went stale.
        """
        token = self.facts.version_token
        mappings_token = self.mappings.version_token
        if mappings_token > token:
            token = mappings_token
        for dim in self._dimensions.values():
            if dim.version_token > token:
                token = dim.version_token
        return token

    # -- temporal extent -----------------------------------------------------------

    def critical_instants(self) -> list[Instant]:
        """Instants at which any dimension's structure can change."""
        intervals = []
        for dim in self._dimensions.values():
            intervals.extend(mv.valid_time for mv in dim.members.values())
            intervals.extend(rel.valid_time for rel in dim.relationships)
        return critical_instants(intervals)

    def horizon(self) -> Instant:
        """A concrete instant safely after everything the schema references.

        Used to clamp ``NOW`` when enumerating structure versions over a
        bounded history: the maximum of all critical instants and fact
        times, plus one chronon.
        """
        points = self.critical_instants()
        points.extend(row.t for row in self.facts)
        if not points:
            return 0
        return max(points) + 1

    # -- derived structures (lazy imports avoid cycles) ----------------------------

    def structure_versions(self, horizon: Instant | None = None):
        """Infer the structure versions (Definition 9).

        Delegates to :func:`repro.core.versions.infer_structure_versions`.
        """
        from .versions import infer_structure_versions

        return infer_structure_versions(self, horizon=horizon)

    def presentation_modes(self, horizon: Instant | None = None):
        """The set TMP of temporal modes (Definition 10): ``tcm`` plus one
        mode per structure version."""
        from .presentation import build_modes

        return build_modes(self.structure_versions(horizon=horizon))

    def multiversion_facts(self, horizon: Instant | None = None, max_hops: int = 8):
        """Infer the MultiVersion fact table (Definition 11)."""
        from .multiversion import MultiVersionFactTable

        return MultiVersionFactTable.build(self, horizon=horizon, max_hops=max_hops)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check every schema-level invariant.

        * each dimension is internally consistent (Definitions 2-3);
        * member version ids are globally unique across dimensions;
        * every fact row satisfies Definition 5 (leaf, valid at ``t``);
        * every mapping relationship links leaf member versions of the same
          dimension.
        """
        seen: dict[str, str] = {}
        for dim in self._dimensions.values():
            dim.validate()
            for mvid in dim.members:
                if mvid in seen and seen[mvid] != dim.did:
                    raise ModelError(
                        f"member version id {mvid!r} appears in dimensions "
                        f"{seen[mvid]!r} and {dim.did!r}; MVids must be unique"
                    )
                seen[mvid] = dim.did
        for row in self.facts:
            for did in self.dimension_ids:
                dim = self._dimensions[did]
                mvid = row.coordinate(did)
                mv = dim.member(mvid)
                if not mv.valid_at(row.t):
                    raise FactValidityError(
                        f"fact at t={row.t} references {mvid!r} outside its "
                        f"valid time {mv.valid_time!r}"
                    )
                if not dim.is_leaf_at(mvid, row.t):
                    raise FactValidityError(
                        f"fact at t={row.t} references non-leaf {mvid!r}"
                    )
        for rel in self.mappings:
            self.find_member(rel.source)
            self.find_member(rel.target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TMD(dimensions={list(self._dimensions)}, "
            f"measures={self.measure_names}, "
            f"facts={len(self.facts)}, mappings={len(self.mappings)})"
        )
