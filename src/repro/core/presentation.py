"""Temporal modes of presentation (Definition 10).

Given ``N`` structure versions, the set of temporal modes of presentation is
``TMP = {tcm, VM1, ..., VMN}``: the *temporally consistent mode* plus one
mode per structure version, in which all data is mapped into that version's
(static) structure.

At the logical level (§4.1) this set becomes a *flat dimension* of the
multiversion warehouse; here it is a small value-object catalog the query
engine and warehouse builders share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import QueryError
from .versions import StructureVersion

__all__ = ["TCM_LABEL", "PresentationMode", "ModeSet", "build_modes"]

TCM_LABEL = "tcm"
"""Canonical label of the temporally consistent mode of presentation."""


@dataclass(frozen=True)
class PresentationMode:
    """One temporal mode of presentation.

    ``label`` is ``"tcm"`` for the consistent mode and the structure
    version's ``vsid`` (e.g. ``"V2"``) for version modes; ``version`` is
    ``None`` exactly for the consistent mode.
    """

    label: str
    version: StructureVersion | None = None

    @property
    def is_tcm(self) -> bool:
        """Whether this is the temporally consistent mode."""
        return self.version is None

    def describe(self) -> str:
        """Human-readable description for front ends and metadata."""
        if self.is_tcm:
            return "temporally consistent mode (source data)"
        return f"data mapped into structure version {self.label} {self.version.valid_time!r}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mode({self.label})"


class ModeSet:
    """The set ``TMP`` of Definition 10, indexable by label."""

    def __init__(self, modes: Iterable[PresentationMode]) -> None:
        self._modes: dict[str, PresentationMode] = {}
        for mode in modes:
            if mode.label in self._modes:
                raise QueryError(f"duplicate presentation mode label {mode.label!r}")
            self._modes[mode.label] = mode
        if TCM_LABEL not in self._modes:
            raise QueryError("a mode set must include the temporally consistent mode")

    def __iter__(self) -> Iterator[PresentationMode]:
        return iter(self._modes.values())

    def __len__(self) -> int:
        return len(self._modes)

    def __contains__(self, label: str) -> bool:
        return label in self._modes

    @property
    def labels(self) -> list[str]:
        """Mode labels (``tcm`` first, then version modes in order)."""
        return list(self._modes)

    @property
    def tcm(self) -> PresentationMode:
        """The temporally consistent mode."""
        return self._modes[TCM_LABEL]

    @property
    def version_modes(self) -> list[PresentationMode]:
        """The structure-version modes, chronological."""
        return [m for m in self._modes.values() if not m.is_tcm]

    def mode(self, label: str) -> PresentationMode:
        """Look up a mode by label."""
        try:
            return self._modes[label]
        except KeyError:
            raise QueryError(
                f"unknown presentation mode {label!r} (available: {self.labels})"
            ) from None

    def mode_for_instant(self, t: int) -> PresentationMode:
        """The version mode whose structure version covers instant ``t``.

        Useful for "map onto the structure of year Y" requests: resolve the
        year to an instant, then to the covering version.
        """
        for m in self.version_modes:
            assert m.version is not None
            if m.version.contains_instant(t):
                return m
        raise QueryError(f"no structure version covers instant {t}")


def build_modes(versions: Iterable[StructureVersion]) -> ModeSet:
    """Assemble ``TMP = {tcm, VM1, ..., VMN}`` from structure versions."""
    modes: list[PresentationMode] = [PresentationMode(TCM_LABEL, None)]
    modes.extend(PresentationMode(v.vsid, v) for v in versions)
    return ModeSet(modes)
