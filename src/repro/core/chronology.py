"""Valid-time chronology: instants, the ``NOW`` sentinel and closed intervals.

The paper (Definitions 1-3, 9) attaches *valid times* ``[ti, tf]`` to member
versions, temporal relationships and structure versions.  Endpoints are drawn
from a discrete time axis and ``tf`` may be the special marker *Now*,
representing an interval that is still open at the current time.

This module models:

* **instants** as plain ``int`` chronons (the library is agnostic about what
  a chronon means — a month, a day, a tick);
* **NOW** as a singleton ordered strictly after every instant, so intervals
  ending at *Now* behave like right-unbounded intervals;
* **Interval** — a closed interval ``[start, end]`` with the full algebra the
  model needs: membership, overlap, intersection, cover, adjacency and the
  *critical instant* decomposition used to infer structure versions
  (Definition 9).

Because the paper's case study speaks in months ("01/2001") and years, the
module also provides :func:`ym` / :func:`ym_str` / :func:`year_of` /
:func:`month_of` helpers encoding a Gregorian month as a chronon, plus
granularity functions used by the query engine to group fact times.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Union

from .errors import InvalidIntervalError

__all__ = [
    "Instant",
    "Endpoint",
    "NowType",
    "NOW",
    "Interval",
    "ym",
    "ym_str",
    "year_of",
    "month_of",
    "year_interval",
    "month_interval",
    "endpoint_max",
    "endpoint_min",
    "critical_instants",
    "Granularity",
    "YEAR",
    "MONTH",
    "QUARTER",
    "INSTANT",
]

Instant = int
"""A discrete time instant (chronon index)."""


@functools.total_ordering
class NowType:
    """Singleton marker for the moving end of time.

    ``NOW`` compares strictly greater than every :class:`int` instant and
    equal only to itself, which lets interval arithmetic treat ``[t, NOW]``
    as right-unbounded without special cases at every call site.
    """

    _instance: "NowType | None" = None

    def __new__(cls) -> "NowType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NowType)

    def __lt__(self, other: object) -> bool:
        if isinstance(other, (int, NowType)):
            return False  # NOW is never strictly less than anything valid
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, NowType):
            return False
        if isinstance(other, int):
            return True
        return NotImplemented

    def __hash__(self) -> int:
        return hash("repro.NOW")

    def __repr__(self) -> str:
        return "NOW"

    def __reduce__(self):
        return (NowType, ())


NOW = NowType()
"""The unique :class:`NowType` instance."""

Endpoint = Union[int, NowType]
"""An interval endpoint: an instant or ``NOW``."""


def _is_endpoint(value: object) -> bool:
    return isinstance(value, (int, NowType)) and not isinstance(value, bool)


def endpoint_min(a: Endpoint, b: Endpoint) -> Endpoint:
    """Return the smaller of two endpoints under the ``int < NOW`` order."""
    if isinstance(a, NowType):
        return b
    if isinstance(b, NowType):
        return a
    return a if a <= b else b


def endpoint_max(a: Endpoint, b: Endpoint) -> Endpoint:
    """Return the larger of two endpoints under the ``int < NOW`` order."""
    if isinstance(a, NowType) or isinstance(b, NowType):
        return NOW
    return a if a >= b else b


@dataclass(frozen=True, order=False)
class Interval:
    """A closed valid-time interval ``[start, end]``.

    ``start`` is always a concrete instant; ``end`` is an instant or
    :data:`NOW`.  A single-instant interval is ``Interval(t, t)``.

    The class is immutable and hashable so intervals can key dictionaries
    and populate sets (useful when partitioning history into structure
    versions).
    """

    start: Instant
    end: Endpoint = NOW

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or isinstance(self.start, bool):
            raise InvalidIntervalError(f"interval start must be an instant, got {self.start!r}")
        if not _is_endpoint(self.end):
            raise InvalidIntervalError(f"interval end must be an instant or NOW, got {self.end!r}")
        if isinstance(self.end, int) and self.end < self.start:
            raise InvalidIntervalError(f"interval end {self.end} precedes start {self.start}")

    # -- predicates ---------------------------------------------------------

    @property
    def open_ended(self) -> bool:
        """``True`` when the interval ends at :data:`NOW`."""
        return isinstance(self.end, NowType)

    def contains(self, t: Instant) -> bool:
        """Whether instant ``t`` lies inside ``[start, end]``."""
        if t < self.start:
            return False
        return self.open_ended or t <= self.end  # type: ignore[operator]

    __contains__ = contains

    def covers(self, other: "Interval") -> bool:
        """Whether this interval fully covers ``other`` (Definition 9 uses
        this to restrict dimensions to a structure version's valid time)."""
        if other.start < self.start:
            return False
        if self.open_ended:
            return True
        if other.open_ended:
            return False
        return other.end <= self.end  # type: ignore[operator]

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one instant."""
        lo = endpoint_max(self.start, other.start)
        hi = endpoint_min(self.end, other.end)
        if isinstance(hi, NowType):
            return True
        return lo <= hi  # type: ignore[operator]

    def meets(self, other: "Interval") -> bool:
        """Whether ``other`` starts exactly one chronon after this ends."""
        return not self.open_ended and other.start == self.end + 1  # type: ignore[operator]

    # -- algebra ------------------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval | None":
        """The common sub-interval, or ``None`` when disjoint.

        Definition 2 requires a temporal relationship's valid time to be
        included in the intersection of the valid times of the two member
        versions it links; this is the primitive that check uses.
        """
        lo = endpoint_max(self.start, other.start)
        hi = endpoint_min(self.end, other.end)
        if isinstance(lo, NowType):  # both starts concrete => unreachable
            return None
        if not isinstance(hi, NowType) and hi < lo:
            return None
        return Interval(lo, hi)

    def union(self, other: "Interval") -> "Interval | None":
        """The merged interval when the two overlap or are adjacent,
        else ``None`` (closed intervals cannot union across a gap)."""
        if not (self.overlaps(other) or self.meets(other) or other.meets(self)):
            return None
        return Interval(
            min(self.start, other.start), endpoint_max(self.end, other.end)
        )

    def clamp(self, horizon: Instant) -> "Interval":
        """Replace a ``NOW`` end by a concrete ``horizon`` instant.

        Used when enumerating structure versions over a bounded history.
        ``horizon`` must not precede ``start``.
        """
        if not self.open_ended:
            return self
        if horizon < self.start:
            raise InvalidIntervalError(
                f"horizon {horizon} precedes interval start {self.start}"
            )
        return Interval(self.start, horizon)

    def truncate_end(self, new_end: Instant) -> "Interval":
        """Return a copy ending at ``new_end`` (the Exclude operator sets the
        end time of a member version and its relationships — §3.2)."""
        return Interval(self.start, new_end)

    def duration(self, horizon: Instant | None = None) -> int:
        """Number of chronons covered; open intervals need a ``horizon``."""
        if self.open_ended:
            if horizon is None:
                raise InvalidIntervalError("duration of an open interval needs a horizon")
            return self.clamp(horizon).duration()
        return self.end - self.start + 1  # type: ignore[operator]

    def instants(self, horizon: Instant | None = None) -> Iterator[Instant]:
        """Iterate every instant in the interval (clamped at ``horizon`` when
        open-ended).  Intended for tests and small demos, not hot paths."""
        end = self.clamp(horizon).end if self.open_ended else self.end
        if horizon is None and self.open_ended:
            raise InvalidIntervalError("iterating an open interval needs a horizon")
        return iter(range(self.start, end + 1))  # type: ignore[operator]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}; {self.end!r}]"


# -- calendar helpers --------------------------------------------------------


def ym(year: int, month: int) -> Instant:
    """Encode a Gregorian ``(year, month)`` as a chronon (months since 0)."""
    if not 1 <= month <= 12:
        raise InvalidIntervalError(f"month must be in 1..12, got {month}")
    return year * 12 + (month - 1)


def year_of(t: Instant) -> int:
    """The Gregorian year of a month-encoded chronon."""
    return t // 12


def month_of(t: Instant) -> int:
    """The Gregorian month (1..12) of a month-encoded chronon."""
    return t % 12 + 1


def ym_str(t: Endpoint) -> str:
    """Render a month-encoded chronon as ``MM/YYYY`` (or ``Now``)."""
    if isinstance(t, NowType):
        return "Now"
    return f"{month_of(t):02d}/{year_of(t)}"


def year_interval(year: int) -> Interval:
    """The closed interval covering every month of ``year``."""
    return Interval(ym(year, 1), ym(year, 12))


def month_interval(year: int, month: int) -> Interval:
    """The single-chronon interval for ``(year, month)``."""
    t = ym(year, month)
    return Interval(t, t)


# -- critical instants (structure-version inference) -------------------------


def critical_instants(intervals: Iterable[Interval]) -> list[Instant]:
    """Sorted instants at which the set of valid elements can change.

    For a collection of valid times, the structure can only change at an
    interval's ``start`` or just after its ``end`` (``end + 1``).  Partitioning
    history at these instants yields the maximal spans over which the valid
    element set is constant — exactly the structure versions of Definition 9.
    """
    points: set[Instant] = set()
    for iv in intervals:
        points.add(iv.start)
        if not iv.open_ended:
            points.add(iv.end + 1)  # type: ignore[operator]
    return sorted(points)


# -- granularities ------------------------------------------------------------


@dataclass(frozen=True)
class Granularity:
    """A named function grouping chronons into coarser time buckets.

    The query engine (§2.1's Q1/Q2 group facts *by year*) applies a
    granularity to each fact's time coordinate to obtain the bucket label.

    Beyond the built-ins (``year``, ``quarter``, ``month``, ``instant``)
    callers may define their own by supplying ``bucket_fn`` (chronon →
    bucket id) and optionally ``label_fn`` (bucket id → display label)::

        SEMESTER = Granularity(
            "semester",
            bucket_fn=lambda t: year_of(t) * 2 + (month_of(t) - 1) // 6,
            label_fn=lambda b: f"{b // 2}H{b % 2 + 1}",
        )
    """

    name: str
    bucket_fn: "Callable[[Instant], int] | None" = None
    label_fn: "Callable[[int], str] | None" = None

    def bucket(self, t: Instant) -> int:
        """Map a chronon to its bucket id under this granularity."""
        if self.bucket_fn is not None:
            return self.bucket_fn(t)
        if self.name == "year":
            return year_of(t)
        if self.name == "quarter":
            return year_of(t) * 4 + (month_of(t) - 1) // 3
        if self.name == "month":
            return t
        if self.name == "instant":
            return t
        raise InvalidIntervalError(
            f"unknown granularity {self.name!r} (custom granularities "
            f"need a bucket_fn)"
        )

    def label(self, bucket: int) -> str:
        """Human-readable label of a bucket id."""
        if self.label_fn is not None:
            return self.label_fn(bucket)
        if self.name == "year":
            return str(bucket)
        if self.name == "quarter":
            return f"{bucket // 4}Q{bucket % 4 + 1}"
        if self.name == "month":
            return ym_str(bucket)
        return str(bucket)


YEAR = Granularity("year")
QUARTER = Granularity("quarter")
MONTH = Granularity("month")
INSTANT = Granularity("instant")
