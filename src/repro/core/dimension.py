"""Temporal dimensions (Definitions 3 and 4).

A temporal dimension ``<Did, Dname, D, G>`` is a set of member versions
``D`` plus a set of temporal relationships ``G`` — a directed graph whose
restriction ``D(t)`` to any instant ``t`` must be a DAG representing the
dimension structure at that instant.

Crucially, the model imposes **no explicit schema**: hierarchical levels are
*deduced* from instances, either from the optional ``level`` field (when all
member versions carry one) or from DAG depth at each instant (Definition 4).
This is what lets the model absorb schema evolutions as instance evolutions
and support non-onto, non-covering and multiple hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from .chronology import Instant, Interval, critical_instants
from .errors import (
    CyclicHierarchyError,
    DuplicateMemberVersionError,
    InvalidRelationshipError,
    ModelError,
    UnknownMemberVersionError,
)
from .member import MemberVersion
from .relationship import TemporalRelationship, validate_relationship
from .tokens import next_token

__all__ = ["TemporalDimension", "DimensionSnapshot"]


@dataclass(frozen=True)
class DimensionSnapshot:
    """The restriction ``D(t)`` of a temporal dimension to one instant.

    Snapshots are immutable views: they hold the member versions and
    relationships valid at ``t`` plus precomputed adjacency, and they verify
    the Definition 3 constraint that ``D(t)`` is a DAG on construction.
    """

    dimension_id: str
    t: Instant
    members: Mapping[str, MemberVersion]
    relationships: tuple[TemporalRelationship, ...]

    def __post_init__(self) -> None:
        children: dict[str, list[str]] = {mvid: [] for mvid in self.members}
        parents: dict[str, list[str]] = {mvid: [] for mvid in self.members}
        for rel in self.relationships:
            children[rel.parent].append(rel.child)
            parents[rel.child].append(rel.parent)
        object.__setattr__(self, "_children", children)
        object.__setattr__(self, "_parents", parents)
        object.__setattr__(self, "_topo", self._toposort())

    # -- construction helpers -------------------------------------------------

    def _toposort(self) -> tuple[str, ...]:
        """Topological order (roots first); raises on cycles."""
        indegree = {mvid: len(self._parents[mvid]) for mvid in self.members}  # type: ignore[attr-defined]
        queue = sorted(mvid for mvid, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while queue:
            node = queue.pop(0)
            order.append(node)
            for child in sorted(self._children[node]):  # type: ignore[attr-defined]
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != len(self.members):
            cyclic = sorted(set(self.members) - set(order))
            raise CyclicHierarchyError(
                f"D(t={self.t}) of dimension {self.dimension_id!r} is not a DAG; "
                f"members on a cycle: {cyclic}"
            )
        return tuple(order)

    # -- navigation ------------------------------------------------------------

    def member(self, mvid: str) -> MemberVersion:
        """The member version ``mvid`` in this snapshot."""
        try:
            return self.members[mvid]
        except KeyError:
            raise UnknownMemberVersionError(
                f"{mvid!r} is not valid at t={self.t} in dimension {self.dimension_id!r}"
            ) from None

    def __contains__(self, mvid: str) -> bool:
        return mvid in self.members

    def children(self, mvid: str) -> list[str]:
        """Direct children of ``mvid`` at this instant."""
        self.member(mvid)
        return sorted(self._children[mvid])  # type: ignore[attr-defined]

    def parents(self, mvid: str) -> list[str]:
        """Direct parents of ``mvid`` at this instant (multiple hierarchies
        mean a member version may roll up into several parents)."""
        self.member(mvid)
        return sorted(self._parents[mvid])  # type: ignore[attr-defined]

    def roots(self) -> list[str]:
        """Member versions with no parent at this instant."""
        return sorted(m for m in self.members if not self._parents[m])  # type: ignore[attr-defined]

    def leaves(self) -> list[str]:
        """Member versions with no child at this instant."""
        return sorted(m for m in self.members if not self._children[m])  # type: ignore[attr-defined]

    def descendants(self, mvid: str) -> set[str]:
        """All (transitive) descendants of ``mvid``."""
        self.member(mvid)
        out: set[str] = set()
        stack = list(self._children[mvid])  # type: ignore[attr-defined]
        while stack:
            node = stack.pop()
            if node not in out:
                out.add(node)
                stack.extend(self._children[node])  # type: ignore[attr-defined]
        return out

    def ancestors(self, mvid: str) -> set[str]:
        """All (transitive) ancestors of ``mvid``."""
        self.member(mvid)
        out: set[str] = set()
        stack = list(self._parents[mvid])  # type: ignore[attr-defined]
        while stack:
            node = stack.pop()
            if node not in out:
                out.add(node)
                stack.extend(self._parents[node])  # type: ignore[attr-defined]
        return out

    def leaf_descendants(self, mvid: str) -> set[str]:
        """The leaves under ``mvid`` (``mvid`` itself when it is a leaf)."""
        if not self._children[mvid]:  # type: ignore[attr-defined]
            return {mvid}
        return {d for d in self.descendants(mvid) if not self._children[d]}  # type: ignore[attr-defined]

    def topological_order(self) -> tuple[str, ...]:
        """Member version ids, parents before children."""
        return self._topo  # type: ignore[attr-defined]

    # -- levels (Definition 4) ---------------------------------------------------

    def depth(self, mvid: str) -> int:
        """Longest root-to-``mvid`` path length (roots have depth 0)."""
        self.member(mvid)
        depths: dict[str, int] = {}
        for node in self._topo:  # type: ignore[attr-defined]
            ps = self._parents[node]  # type: ignore[attr-defined]
            depths[node] = 0 if not ps else 1 + max(depths[p] for p in ps)
        return depths[mvid]

    def levels(self) -> dict[str, list[str]]:
        """The levels of ``D(t)`` per Definition 4.

        When *every* member version in the snapshot has an explicit
        ``level`` field, levels are the equivalence classes of "has same
        level field"; otherwise member versions are grouped by DAG depth
        and levels are named ``"depth-<k>"``.
        """
        if self.members and all(mv.level is not None for mv in self.members.values()):
            by_level: dict[str, list[str]] = {}
            for mvid, mv in self.members.items():
                by_level.setdefault(mv.level, []).append(mvid)  # type: ignore[arg-type]
            return {lvl: sorted(ids) for lvl, ids in by_level.items()}
        depths: dict[str, int] = {}
        for node in self._topo:  # type: ignore[attr-defined]
            ps = self._parents[node]  # type: ignore[attr-defined]
            depths[node] = 0 if not ps else 1 + max(depths[p] for p in ps)
        by_depth: dict[str, list[str]] = {}
        for mvid, d in depths.items():
            by_depth.setdefault(f"depth-{d}", []).append(mvid)
        return {lvl: sorted(ids) for lvl, ids in by_depth.items()}

    def level_members(self, level: str) -> list[str]:
        """Member versions of one level (explicit name or ``depth-<k>``)."""
        levels = self.levels()
        try:
            return levels[level]
        except KeyError:
            raise ModelError(
                f"dimension {self.dimension_id!r} has no level {level!r} at t={self.t} "
                f"(available: {sorted(levels)})"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DimensionSnapshot({self.dimension_id!r}, t={self.t}, "
            f"{len(self.members)} members, {len(self.relationships)} edges)"
        )


class TemporalDimension:
    """A temporal dimension ``<Did, Dname, D, G>`` (Definition 3).

    The dimension accumulates member versions and temporal relationships;
    :meth:`at` materializes the ``D(t)`` snapshot (checked to be a DAG) and
    :meth:`restrict` produces the Definition 9 restriction to a structure
    version's valid time.  Mutation happens through :meth:`add_member`,
    :meth:`add_relationship` and the truncation helpers used by the §3.2
    evolution operators.
    """

    def __init__(self, did: str, name: str | None = None) -> None:
        if not did:
            raise ModelError("temporal dimension needs a non-empty id")
        self.did = did
        self.name = name if name is not None else did
        self._members: dict[str, MemberVersion] = {}
        self._relationships: list[TemporalRelationship] = []
        self._rels_by_child: dict[str, list[int]] = {}
        self._rels_by_parent: dict[str, list[int]] = {}
        self._token = next_token()

    @property
    def version_token(self) -> int:
        """The structure-version stamp of this dimension's current state.

        Bumped to a fresh process-global value by every mutator; see
        :mod:`repro.core.tokens`.  Not serialized.
        """
        return self._token

    # -- inspection ---------------------------------------------------------

    @property
    def members(self) -> dict[str, MemberVersion]:
        """Member versions by id (copy-safe mapping view)."""
        return dict(self._members)

    @property
    def relationships(self) -> list[TemporalRelationship]:
        """All temporal relationships (insertion order)."""
        return list(self._relationships)

    def member(self, mvid: str) -> MemberVersion:
        """The member version ``mvid``."""
        try:
            return self._members[mvid]
        except KeyError:
            raise UnknownMemberVersionError(
                f"dimension {self.did!r} has no member version {mvid!r}"
            ) from None

    def __contains__(self, mvid: str) -> bool:
        return mvid in self._members

    def __len__(self) -> int:
        return len(self._members)

    def versions_of(self, name: str) -> list[MemberVersion]:
        """Every version of the member called ``name``, by start time."""
        versions = [mv for mv in self._members.values() if mv.name == name]
        return sorted(versions, key=lambda mv: mv.start)

    def relationships_of(self, mvid: str) -> list[TemporalRelationship]:
        """Every relationship in which ``mvid`` participates."""
        idxs = set(self._rels_by_child.get(mvid, ())) | set(
            self._rels_by_parent.get(mvid, ())
        )
        return [self._relationships[i] for i in sorted(idxs)]

    # -- mutation -----------------------------------------------------------

    def add_member(self, mv: MemberVersion) -> MemberVersion:
        """Register a member version; ids are unique within the dimension."""
        if mv.mvid in self._members:
            raise DuplicateMemberVersionError(
                f"dimension {self.did!r} already has a member version {mv.mvid!r}"
            )
        self._members[mv.mvid] = mv
        self._token = next_token()
        return mv

    def add_relationship(
        self, rel: TemporalRelationship, *, check_acyclic: bool = True
    ) -> TemporalRelationship:
        """Register a rollup edge after Definition 2/3 consistency checks.

        The relationship's valid time must sit inside the intersection of
        its endpoints' valid times, and (unless ``check_acyclic`` is
        disabled for bulk loads followed by :meth:`validate`) inserting it
        must keep every ``D(t)`` acyclic.
        """
        child = self.member(rel.child)
        parent = self.member(rel.parent)
        validate_relationship(rel, child, parent)
        index = len(self._relationships)
        self._relationships.append(rel)
        self._rels_by_child.setdefault(rel.child, []).append(index)
        self._rels_by_parent.setdefault(rel.parent, []).append(index)
        self._token = next_token()
        if check_acyclic:
            try:
                for t in self._critical_instants_within(rel.valid_time):
                    self.at(t)
            except CyclicHierarchyError:
                # roll the insertion back so the dimension stays consistent
                self._relationships.pop()
                self._rels_by_child[rel.child].pop()
                self._rels_by_parent[rel.parent].pop()
                self._token = next_token()
                raise
        return rel

    def remove_member(self, mvid: str) -> MemberVersion:
        """Unregister a member version that no relationship references.

        This is *not* an evolution operator (the paper removes members by
        ``Exclude``); it exists so a failed ``Insert`` can be compensated
        without leaving a half-created member behind.
        """
        mv = self.member(mvid)
        if self._rels_by_child.get(mvid) or self._rels_by_parent.get(mvid):
            raise ModelError(
                f"cannot remove {mvid!r} from {self.did!r}: temporal "
                f"relationships still reference it"
            )
        del self._members[mvid]
        self._token = next_token()
        return mv

    def replace_member(self, mv: MemberVersion) -> None:
        """Overwrite a member version in place (Exclude truncations)."""
        if mv.mvid not in self._members:
            raise UnknownMemberVersionError(
                f"dimension {self.did!r} has no member version {mv.mvid!r}"
            )
        self._members[mv.mvid] = mv
        self._token = next_token()

    def replace_relationship(
        self, old: TemporalRelationship, new: TemporalRelationship
    ) -> None:
        """Swap a relationship for a truncated copy (Exclude/Reclassify)."""
        if old.child != new.child or old.parent != new.parent:
            raise InvalidRelationshipError(
                "replace_relationship must keep the same endpoints"
            )
        for i, rel in enumerate(self._relationships):
            if rel == old:
                self._relationships[i] = new
                self._token = next_token()
                return
        raise InvalidRelationshipError(f"relationship {old!r} not found")

    def remove_relationship(self, rel: TemporalRelationship) -> None:
        """Remove a relationship entirely (zero-length truncations)."""
        for i, existing in enumerate(self._relationships):
            if existing == rel:
                del self._relationships[i]
                self._reindex()
                self._token = next_token()
                return
        raise InvalidRelationshipError(f"relationship {rel!r} not found")

    def _reindex(self) -> None:
        self._rels_by_child = {}
        self._rels_by_parent = {}
        for i, rel in enumerate(self._relationships):
            self._rels_by_child.setdefault(rel.child, []).append(i)
            self._rels_by_parent.setdefault(rel.parent, []).append(i)

    # -- state capture (transactional undo) -----------------------------------

    def capture_state(self) -> tuple[Any, ...]:
        """An opaque, cheap copy of the dimension's mutable state.

        Member versions and relationships are immutable, so shallow
        container copies fully describe the dimension.  Pair with
        :meth:`restore_state` to implement exact rollback — restoration
        preserves insertion order, so a restored dimension serializes
        byte-identically to the captured one.
        """
        return (dict(self._members), list(self._relationships))

    def restore_state(self, state: tuple[Any, ...]) -> None:
        """Restore a state captured by :meth:`capture_state`."""
        members, relationships = state
        self._members = dict(members)
        self._relationships = list(relationships)
        self._reindex()
        # Conservative: the restored state may be byte-identical to the
        # captured one, but a stale token risks serving wrong cached
        # results while a fresh one only costs a cache miss.
        self._token = next_token()

    # -- time slicing ---------------------------------------------------------

    def at(self, t: Instant) -> DimensionSnapshot:
        """The restriction ``D(t)`` (Definition 3) as an immutable snapshot."""
        members = {
            mvid: mv for mvid, mv in self._members.items() if mv.valid_at(t)
        }
        rels = tuple(
            rel
            for rel in self._relationships
            if rel.valid_at(t) and rel.child in members and rel.parent in members
        )
        return DimensionSnapshot(
            dimension_id=self.did, t=t, members=members, relationships=rels
        )

    def restrict(self, interval: Interval) -> "TemporalDimension":
        """The Definition 9 restriction: keep only elements valid over the
        *whole* ``interval``.  Returns a new dimension ``D_i,VSid``."""
        restricted = TemporalDimension(self.did, self.name)
        for mv in self._members.values():
            if mv.valid_throughout(interval):
                restricted.add_member(mv)
        for rel in self._relationships:
            if (
                rel.valid_throughout(interval)
                and rel.child in restricted
                and rel.parent in restricted
            ):
                restricted.add_relationship(rel, check_acyclic=False)
        return restricted

    def critical_instants(self) -> list[Instant]:
        """Instants at which this dimension's structure can change."""
        intervals = [mv.valid_time for mv in self._members.values()]
        intervals.extend(rel.valid_time for rel in self._relationships)
        return critical_instants(intervals)

    def _critical_instants_within(self, interval: Interval) -> list[Instant]:
        points = [t for t in self.critical_instants() if interval.contains(t)]
        if not points:
            points = [interval.start]
        return points

    # -- leaves (the fact table's grain) ----------------------------------------

    def leaf_member_versions(self) -> list[MemberVersion]:
        """Member versions with no children at *at least one* instant of
        their validity (the paper's Leaf Member Versions).

        A member version that acquires children halfway through its life is
        still a leaf member version (it was childless for a while), which
        matters for non-covering hierarchies.
        """
        leaves: list[MemberVersion] = []
        for mv in self._members.values():
            if self._is_leaf_sometime(mv):
                leaves.append(mv)
        return sorted(leaves, key=lambda m: (m.start, m.mvid))

    def _is_leaf_sometime(self, mv: MemberVersion) -> bool:
        incoming = [
            self._relationships[i].valid_time
            for i in self._rels_by_parent.get(mv.mvid, ())
        ]
        if not incoming:
            return True
        # Check the candidate instants where child coverage could break:
        # the member's own start, and the instant after each child edge ends.
        candidates = [mv.valid_time.start]
        for iv in incoming:
            if not iv.open_ended:
                after = iv.end + 1  # type: ignore[operator]
                if mv.valid_at(after):
                    candidates.append(after)
            if iv.start > mv.valid_time.start:
                candidates.append(iv.start - 1)
        for t in candidates:
            if mv.valid_at(t) and not any(iv.contains(t) for iv in incoming):
                return True
        return False

    def is_leaf_at(self, mvid: str, t: Instant) -> bool:
        """Whether ``mvid`` has no children at instant ``t``."""
        mv = self.member(mvid)
        if not mv.valid_at(t):
            return False
        for i in self._rels_by_parent.get(mvid, ()):
            if self._relationships[i].valid_at(t):
                return False
        return True

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant of Definitions 2-3.

        Verifies relationship inclusion constraints and that ``D(t)`` is a
        DAG at every critical instant (between two critical instants the
        graph cannot change, so checking the critical instants is
        exhaustive).
        """
        for rel in self._relationships:
            validate_relationship(rel, self.member(rel.child), self.member(rel.parent))
        for t in self.critical_instants():
            self.at(t)  # raises CyclicHierarchyError on a cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalDimension({self.did!r}, {len(self._members)} member versions, "
            f"{len(self._relationships)} relationships)"
        )
