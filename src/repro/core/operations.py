"""Simple and complex evolution operations (§2.3, Table 11).

The paper lists six *simple* operations on dimension instances — creation,
deletion, transformation, merging, splitting, reclassification — and shows
that complex operations (increasing, decreasing, partial annexation) are
combinations of them.  Every operation compiles down to a sequence of the
four basic operators of §3.2, exactly as Table 11 illustrates.

:class:`EvolutionManager` is the administrator-facing API: each method
applies one operation to the schema through a :class:`SchemaEditor` and
returns an :class:`OperationResult` carrying the executed basic-operator
sequence — the Table 11 reproduction prints these verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .chronology import NOW, Endpoint, Instant
from .confidence import AM, EM, ConfidenceFactor, UK
from .errors import OperatorError
from .mapping import (
    LinearMapping,
    MappingRelationship,
    MeasureMap,
    UnknownMapping,
    identity_maps,
)
from .operators import OperatorRecord, SchemaEditor
from .schema import TemporalMultidimensionalSchema

__all__ = ["OperationResult", "EvolutionManager"]


@dataclass(frozen=True)
class OperationResult:
    """Outcome of one simple/complex operation.

    ``operation`` names the operation (``"merge"``, ``"split"``, ...),
    ``records`` is the sequence of basic operators it compiled to (Table
    11) and ``created`` lists the member versions brought into existence.
    """

    operation: str
    description: str
    records: tuple[OperatorRecord, ...]
    created: tuple[str, ...] = ()

    def renderings(self) -> list[str]:
        """Paper-style operator call syntax, one line per basic operator."""
        return [record.rendering for record in self.records]


class EvolutionManager:
    """High-level evolution operations compiled to basic operators."""

    def __init__(
        self,
        schema: TemporalMultidimensionalSchema,
        editor: SchemaEditor | None = None,
    ) -> None:
        """``editor`` defaults to a plain :class:`SchemaEditor`; pass a
        subclass (e.g. the transactional editor of
        :mod:`repro.robustness.transactions`) to intercept every basic
        operator the operations compile to."""
        if editor is not None and editor.schema is not schema:
            raise OperatorError("the injected editor must edit the same schema")
        self.schema = schema
        self.editor = editor if editor is not None else SchemaEditor(schema)

    # -- internals ---------------------------------------------------------------

    def _measures(self) -> list[str]:
        return self.schema.measure_names

    def _shares_to_maps(
        self,
        shares: Mapping[str, float] | float | None,
        confidence: ConfidenceFactor,
    ) -> dict[str, MeasureMap]:
        """Normalize a user share spec into per-measure measure maps.

        ``shares`` may be a single factor (applied to every measure), a
        per-measure mapping, or ``None`` for an unknown conversion.
        """
        if shares is None:
            return {m: MeasureMap(UnknownMapping(), UK) for m in self._measures()}
        if isinstance(shares, (int, float)):
            return {
                m: MeasureMap(LinearMapping(float(shares)), confidence)
                for m in self._measures()
            }
        out: dict[str, MeasureMap] = {}
        for m in self._measures():
            if m in shares:
                out[m] = MeasureMap(LinearMapping(float(shares[m])), confidence)
            else:
                out[m] = MeasureMap(UnknownMapping(), UK)
        return out

    def _surviving_parents(self, did: str, mvid: str, t: Instant) -> list[str]:
        """Parents of ``mvid`` just before ``t`` that are still valid at ``t``.

        Used as the default position for the member versions an operation
        creates: a merged department stays under the division its sources
        reported to, unless the administrator overrides the parents.
        """
        dim = self.schema.dimension(did)
        snap = dim.at(t - 1)
        if mvid not in snap:
            return []
        return [p for p in snap.parents(mvid) if dim.member(p).valid_at(t)]

    def _wrap(
        self,
        operation: str,
        description: str,
        mark: int,
        created: Sequence[str] = (),
    ) -> OperationResult:
        return OperationResult(
            operation=operation,
            description=description,
            records=tuple(self.editor.records_since(mark)),
            created=tuple(created),
        )

    # -- simple operations (§2.3) ---------------------------------------------------

    def create_member(
        self,
        did: str,
        mvid: str,
        name: str,
        t: Instant,
        *,
        tf: Endpoint = NOW,
        parents: Sequence[str] = (),
        children: Sequence[str] = (),
        attributes: Mapping[str, Any] | None = None,
        level: str | None = None,
    ) -> OperationResult:
        """Creation of a dimension member: a single ``Insert``."""
        mark = self.editor.mark()
        self.editor.insert(
            did,
            mvid,
            name,
            t,
            tf,
            parents=parents,
            children=children,
            attributes=attributes,
            level=level,
        )
        return self._wrap(
            "create", f"creation of {name!r} at {t} in {did!r}", mark, [mvid]
        )

    def delete_member(self, did: str, mvid: str, t: Instant) -> OperationResult:
        """Deletion of a dimension member: a single ``Exclude``.

        No mapping relationship is created, so facts recorded on the member
        cannot be presented in later structure versions (they surface in
        the MultiVersion fact table's ``unmapped`` set).
        """
        mark = self.editor.mark()
        self.editor.exclude(did, mvid, t)
        return self._wrap("delete", f"deletion of {mvid!r} at {t} in {did!r}", mark)

    def transform_member(
        self,
        did: str,
        mvid: str,
        new_mvid: str,
        new_name: str,
        t: Instant,
        *,
        attributes: Mapping[str, Any] | None = None,
        level: str | None = None,
        confidence: ConfidenceFactor = EM,
    ) -> OperationResult:
        """Transformation (change of name/attribute/meaning): an equivalence
        transition — ``Exclude`` + ``Insert`` + identity ``Associate``."""
        mark = self.editor.mark()
        parents = self._surviving_parents(did, mvid, t)
        old = self.schema.dimension(did).member(mvid)
        self.editor.exclude(did, mvid, t)
        self.editor.insert(
            did,
            new_mvid,
            new_name,
            t,
            attributes=attributes if attributes is not None else dict(old.attributes),
            level=level if level is not None else old.level,
            parents=parents,
        )
        self.editor.associate(
            MappingRelationship(
                source=mvid,
                target=new_mvid,
                forward=identity_maps(self._measures(), confidence),
                reverse=identity_maps(self._measures(), confidence),
            )
        )
        return self._wrap(
            "transform",
            f"change from {mvid!r} to {new_mvid!r} at {t}",
            mark,
            [new_mvid],
        )

    def merge_members(
        self,
        did: str,
        sources: Sequence[str],
        new_mvid: str,
        new_name: str,
        t: Instant,
        *,
        reverse_shares: Mapping[str, Mapping[str, float] | float | None] | None = None,
        parents: Sequence[str] | None = None,
        confidence: ConfidenceFactor = AM,
        level: str | None = None,
    ) -> OperationResult:
        """Merging of ``n`` members into one (Table 11's *Merge*).

        Each source is excluded, the merged member inserted, and one
        ``Associate`` added per source: forward identity (``em`` — each old
        value contributes as-is to the merged member), reverse given by
        ``reverse_shares[source]`` (a factor, per-measure factors, or
        ``None`` for an unknown back-mapping).

        When ``parents`` is omitted the merged member inherits the *union*
        of the sources' parents; merging members of different parents thus
        creates a multiple hierarchy (the merged member rolls up into both)
        — pass ``parents`` explicitly to pick a single home instead.
        """
        if len(sources) < 2:
            raise OperatorError("merging needs at least two source members")
        mark = self.editor.mark()
        if parents is None:
            inferred: list[str] = []
            for src in sources:
                for p in self._surviving_parents(did, src, t):
                    if p not in inferred:
                        inferred.append(p)
            parents = inferred
        old_levels = {
            self.schema.dimension(did).member(src).level for src in sources
        }
        if level is None and len(old_levels) == 1:
            level = next(iter(old_levels))
        for src in sources:
            self.editor.exclude(did, src, t)
        self.editor.insert(did, new_mvid, new_name, t, parents=parents, level=level)
        shares = reverse_shares or {}
        for src in sources:
            self.editor.associate(
                MappingRelationship(
                    source=src,
                    target=new_mvid,
                    forward=identity_maps(self._measures(), EM),
                    reverse=self._shares_to_maps(shares.get(src), confidence),
                )
            )
        return self._wrap(
            "merge",
            f"merge of {list(sources)} into {new_mvid!r} at {t}",
            mark,
            [new_mvid],
        )

    def split_member(
        self,
        did: str,
        source: str,
        parts: Mapping[str, tuple[str, Mapping[str, float] | float | None]],
        t: Instant,
        *,
        parents: Sequence[str] | None = None,
        confidence: ConfidenceFactor = AM,
        level: str | None = None,
    ) -> OperationResult:
        """Splitting of one member into ``n`` (the paper's Dpt.Jones case).

        ``parts`` maps each new member version id to ``(name, shares)``:
        the forward conversion is ``x → share·x`` with ``confidence``
        (approximated by default), the reverse is identity/``em`` — values
        of a part report exactly into the old whole, as in Example 6.
        """
        if len(parts) < 2:
            raise OperatorError("splitting needs at least two parts")
        mark = self.editor.mark()
        if parents is None:
            parents = self._surviving_parents(did, source, t)
        if level is None:
            level = self.schema.dimension(did).member(source).level
        self.editor.exclude(did, source, t)
        for new_mvid, (name, _) in parts.items():
            self.editor.insert(did, new_mvid, name, t, parents=parents, level=level)
        for new_mvid, (_, shares) in parts.items():
            self.editor.associate(
                MappingRelationship(
                    source=source,
                    target=new_mvid,
                    forward=self._shares_to_maps(shares, confidence),
                    reverse=identity_maps(self._measures(), EM),
                )
            )
        return self._wrap(
            "split",
            f"split of {source!r} into {list(parts)} at {t}",
            mark,
            list(parts),
        )

    def reclassify_member(
        self,
        did: str,
        mvid: str,
        t: Instant,
        *,
        old_parents: Sequence[str] = (),
        new_parents: Sequence[str] = (),
        tf: Endpoint = NOW,
    ) -> OperationResult:
        """Reclassification in the dimension structure — the conceptual
        ``Reclassify`` operator (the member version is untouched; only its
        relationships change)."""
        mark = self.editor.mark()
        self.editor.reclassify(
            did, mvid, t, tf, old_parents=old_parents, new_parents=new_parents
        )
        return self._wrap(
            "reclassify",
            f"reclassification of {mvid!r} at {t}: "
            f"{list(old_parents)} -> {list(new_parents)}",
            mark,
        )

    # -- complex operations (§2.3, Table 11) -------------------------------------------

    def increase_member(
        self,
        did: str,
        mvid: str,
        new_mvid: str,
        new_name: str,
        t: Instant,
        factor: float,
        *,
        confidence: ConfidenceFactor = AM,
    ) -> OperationResult:
        """Increasing (creation followed by merging, collapsed as in Table
        11): values scale by ``factor`` forward and ``1/factor`` backward,
        both approximated."""
        if factor <= 0:
            raise OperatorError("increase factor must be positive")
        mark = self.editor.mark()
        parents = self._surviving_parents(did, mvid, t)
        old = self.schema.dimension(did).member(mvid)
        self.editor.exclude(did, mvid, t)
        self.editor.insert(did, new_mvid, new_name, t, parents=parents, level=old.level)
        self.editor.associate(
            MappingRelationship(
                source=mvid,
                target=new_mvid,
                forward=self._shares_to_maps(factor, confidence),
                reverse=self._shares_to_maps(1.0 / factor, confidence),
            )
        )
        return self._wrap(
            "increase",
            f"increase of {mvid!r} into {new_mvid!r} by {factor:g} at {t}",
            mark,
            [new_mvid],
        )

    def decrease_member(
        self,
        did: str,
        mvid: str,
        new_mvid: str,
        new_name: str,
        t: Instant,
        kept_share: float,
        *,
        confidence: ConfidenceFactor = AM,
    ) -> OperationResult:
        """Decreasing (splitting followed by a deletion, collapsed): only a
        ``kept_share`` of the old member survives into the new version; the
        rest disappears."""
        if not 0 < kept_share < 1:
            raise OperatorError("kept_share must lie strictly between 0 and 1")
        mark = self.editor.mark()
        parents = self._surviving_parents(did, mvid, t)
        old = self.schema.dimension(did).member(mvid)
        self.editor.exclude(did, mvid, t)
        self.editor.insert(did, new_mvid, new_name, t, parents=parents, level=old.level)
        self.editor.associate(
            MappingRelationship(
                source=mvid,
                target=new_mvid,
                forward=self._shares_to_maps(kept_share, confidence),
                reverse=identity_maps(self._measures(), EM),
            )
        )
        return self._wrap(
            "decrease",
            f"decrease of {mvid!r} into {new_mvid!r} (kept {kept_share:g}) at {t}",
            mark,
            [new_mvid],
        )

    def partial_annexation(
        self,
        did: str,
        donor: str,
        acceptor: str,
        new_donor: tuple[str, str],
        new_acceptor: tuple[str, str],
        t: Instant,
        *,
        donated_fraction: float,
        acceptor_reverse_factor: float,
        donated_share_of_acceptor: float,
        confidence: ConfidenceFactor = AM,
    ) -> OperationResult:
        """Partial annexation (Table 11): a ``donated_fraction`` of the
        donor moves to the acceptor.

        Six basic operators: both members excluded, their successors
        inserted, and three ``Associate`` calls — donor→donor⁻ (keeps
        ``1 - donated_fraction``), acceptor→acceptor⁺ (identity forward,
        ``acceptor_reverse_factor`` backward) and donor→acceptor⁺
        (``donated_fraction`` forward, ``donated_share_of_acceptor``
        backward), exactly the paper's 10 % / 20 % example.
        """
        if not 0 < donated_fraction < 1:
            raise OperatorError("donated_fraction must lie strictly between 0 and 1")
        mark = self.editor.mark()
        donor_parents = self._surviving_parents(did, donor, t)
        acceptor_parents = self._surviving_parents(did, acceptor, t)
        donor_level = self.schema.dimension(did).member(donor).level
        acceptor_level = self.schema.dimension(did).member(acceptor).level
        self.editor.exclude(did, donor, t)
        self.editor.exclude(did, acceptor, t)
        d_mvid, d_name = new_donor
        a_mvid, a_name = new_acceptor
        self.editor.insert(
            did, d_mvid, d_name, t, parents=donor_parents, level=donor_level
        )
        self.editor.insert(
            did, a_mvid, a_name, t, parents=acceptor_parents, level=acceptor_level
        )
        self.editor.associate(
            MappingRelationship(
                source=donor,
                target=d_mvid,
                forward=self._shares_to_maps(1.0 - donated_fraction, confidence),
                reverse=identity_maps(self._measures(), EM),
            )
        )
        self.editor.associate(
            MappingRelationship(
                source=acceptor,
                target=a_mvid,
                forward=identity_maps(self._measures(), EM),
                reverse=self._shares_to_maps(acceptor_reverse_factor, confidence),
            )
        )
        self.editor.associate(
            MappingRelationship(
                source=donor,
                target=a_mvid,
                forward=self._shares_to_maps(donated_fraction, confidence),
                reverse=self._shares_to_maps(donated_share_of_acceptor, confidence),
            )
        )
        return self._wrap(
            "partial_annexation",
            f"partial annexation of {donated_fraction:.0%} of {donor!r} by "
            f"{acceptor!r} at {t}",
            mark,
            [d_mvid, a_mvid],
        )

    # -- schema-level evolutions (§2.3: treated through instances) ----------------------

    def create_level(
        self,
        did: str,
        members: Mapping[str, str],
        t: Instant,
        *,
        level: str,
        parents_of: Mapping[str, Sequence[str]] | None = None,
        children_of: Mapping[str, Sequence[str]] | None = None,
    ) -> OperationResult:
        """Introducing a level == creating the members of that level.

        ``members`` maps new member version ids to names; ``parents_of`` and
        ``children_of`` wire each new member into the hierarchy.
        """
        mark = self.editor.mark()
        for mvid, name in members.items():
            self.editor.insert(
                did,
                mvid,
                name,
                t,
                level=level,
                parents=(parents_of or {}).get(mvid, ()),
                children=(children_of or {}).get(mvid, ()),
            )
        return self._wrap(
            "create_level",
            f"creation of level {level!r} in {did!r} at {t}",
            mark,
            list(members),
        )

    def delete_level(self, did: str, level: str, t: Instant) -> OperationResult:
        """Deleting a level == excluding the members of that level at ``t``."""
        dim = self.schema.dimension(did)
        snap = dim.at(t - 1)
        victims = snap.levels().get(level, [])
        if not victims:
            raise OperatorError(
                f"dimension {did!r} has no level {level!r} at {t - 1}"
            )
        mark = self.editor.mark()
        for mvid in victims:
            self.editor.exclude(did, mvid, t)
        return self._wrap(
            "delete_level", f"deletion of level {level!r} in {did!r} at {t}", mark
        )

    @property
    def journal(self) -> list[OperatorRecord]:
        """The full basic-operator journal, across all operations."""
        return list(self.editor.journal)
