"""Member versions (Definition 1).

A *member* is an object of interest to the analyst ("Dpt.Jones", "Sales").
Because members change, the model stores *member versions*: states of a
member that are unchanged and coherent over a valid-time slice.  A member
version is the tuple ``<MVid, Name, [A], [Level], ti, tf>`` of the paper.

Several versions of the same member may have overlapping valid times
(Definition 1's note) — the model never requires an exact history partition,
unlike Kimball's Type-2 slowly changing dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Mapping

from .chronology import NOW, Endpoint, Instant, Interval
from .errors import ModelError

__all__ = ["MemberVersion"]


@dataclass(frozen=True)
class MemberVersion:
    """One state of a member over a valid-time slice.

    Parameters
    ----------
    mvid:
        Unique identifier of this member version within its dimension.
    name:
        Name of the *member* this version belongs to.  Two versions with the
        same ``name`` are versions of the same member.
    valid_time:
        The ``[ti, tf]`` slice over which this version holds.
    attributes:
        Optional user-defined attributes ``[A]`` (frozen on construction).
    level:
        Optional explicit level name.  When *every* member version of a
        dimension carries a level, levels are the equivalence classes of the
        "has same level field" relation; otherwise they are inferred from
        DAG depth (Definition 4).
    """

    mvid: str
    name: str
    valid_time: Interval
    attributes: Mapping[str, Any] = field(default_factory=dict)
    level: str | None = None

    def __post_init__(self) -> None:
        if not self.mvid:
            raise ModelError("member version id must be a non-empty string")
        if not self.name:
            raise ModelError(f"member version {self.mvid!r} needs a member name")
        # Freeze the attribute mapping so the dataclass is deeply immutable.
        object.__setattr__(
            self, "attributes", MappingProxyType(dict(self.attributes))
        )

    # -- convenience --------------------------------------------------------

    @property
    def start(self) -> Instant:
        """Start of the valid time (``ti``)."""
        return self.valid_time.start

    @property
    def end(self) -> Endpoint:
        """End of the valid time (``tf``, possibly ``NOW``)."""
        return self.valid_time.end

    def valid_at(self, t: Instant) -> bool:
        """Whether this version is valid at instant ``t``."""
        return self.valid_time.contains(t)

    def valid_throughout(self, interval: Interval) -> bool:
        """Whether this version is valid over the whole ``interval`` —
        the membership test of a structure version (Definition 9)."""
        return self.valid_time.covers(interval)

    def excluded_at(self, tf: Instant) -> "MemberVersion":
        """A copy whose validity ends at ``tf - 1`` (the Exclude operator of
        §3.2 sets the end time of a member version to ``tf - 1``)."""
        if tf <= self.start:
            raise ModelError(
                f"cannot exclude {self.mvid!r} at {tf}: version starts at {self.start}"
            )
        return replace(self, valid_time=self.valid_time.truncate_end(tf - 1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemberVersion):
            return NotImplemented
        return (
            self.mvid == other.mvid
            and self.name == other.name
            and self.valid_time == other.valid_time
            and dict(self.attributes) == dict(other.attributes)
            and self.level == other.level
        )

    def __hash__(self) -> int:
        return hash((self.mvid, self.name, self.valid_time, self.level))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        level = f", level={self.level!r}" if self.level else ""
        return f"<{self.mvid}, {self.name!r}{level}, {self.valid_time!r}>"
