"""The four basic structural evolution operators (§3.2).

The administrator integrates changes into a Temporal Multidimensional
Schema through exactly four operators:

* ``Insert(Did, mvID, mName, [A], [level], ti, [tf], P, C)`` — add a member
  version and the temporal relationships placing it under its parents ``P``
  and over its children ``C``;
* ``Exclude(Did, mvID, tf)`` — end the member version (and every temporal
  relationship involving it) at ``tf - 1``;
* ``Associate(Rmap)`` — check a mapping relationship for consistency and
  add it to ``MR``;
* ``Reclassify(Did, mvID, ti, [tf], OldParents, NewParents)`` — move a
  member version in the hierarchy by ending the relationships towards
  ``OldParents`` and creating ones towards ``NewParents``.

:class:`SchemaEditor` applies these to a schema and journals every call —
the journal is what the Table 11 reproduction prints, and what the §5.2
metadata layer turns into textual evolution descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .chronology import NOW, Endpoint, Instant, Interval
from .errors import OperatorError, ReproError
from .mapping import MappingRelationship
from .member import MemberVersion
from .relationship import TemporalRelationship
from .schema import TemporalMultidimensionalSchema

__all__ = ["OperatorRecord", "SchemaEditor"]


@dataclass(frozen=True)
class OperatorRecord:
    """A journal entry: one basic operator application.

    ``rendering`` is the paper-style call syntax (as in Table 11), e.g.
    ``Insert(Org, idV12, V12, T, {idP1}, {})``.
    """

    operator: str
    arguments: Mapping[str, Any]
    rendering: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendering


def _fmt_set(ids: Iterable[str]) -> str:
    ids = sorted(ids)
    return "{" + ", ".join(ids) + "}" if ids else "∅"


@dataclass
class SchemaEditor:
    """Applies the §3.2 basic operators to a schema, with journaling."""

    schema: TemporalMultidimensionalSchema
    journal: list[OperatorRecord] = field(default_factory=list)

    # -- Insert -----------------------------------------------------------------

    def insert(
        self,
        did: str,
        mvid: str,
        name: str,
        ti: Instant,
        tf: Endpoint = NOW,
        *,
        attributes: Mapping[str, Any] | None = None,
        level: str | None = None,
        parents: Sequence[str] = (),
        children: Sequence[str] = (),
    ) -> MemberVersion:
        """``Insert(Did, mvID, mName, [A], [level], ti, [tf], P, C)``.

        Creates the member version ``<mvID, mName, [A], [level], ti, tf>``
        and the temporal relationships placing it under each parent in
        ``P`` and above each child in ``C``.  Relationship valid times are
        clipped to the intersection with the other endpoint's validity
        (Definition 2); an empty intersection is an error.
        """
        dim = self.schema.dimension(did)
        mv = MemberVersion(
            mvid=mvid,
            name=name,
            valid_time=Interval(ti, tf),
            attributes=attributes or {},
            level=level,
        )
        dim.add_member(mv)
        added: list[TemporalRelationship] = []
        try:
            for parent in parents:
                added.append(
                    dim.add_relationship(self._clipped_edge(did, mvid, parent, ti, tf))
                )
            for child in children:
                added.append(
                    dim.add_relationship(self._clipped_edge(did, child, mvid, ti, tf))
                )
        except ReproError:
            # Compensate so a rejected Insert leaves the schema unchanged:
            # drop the edges added so far, then the half-created member.
            for rel in reversed(added):
                dim.remove_relationship(rel)
            dim.remove_member(mvid)
            raise
        self.journal.append(
            OperatorRecord(
                operator="Insert",
                arguments={
                    "did": did,
                    "mvid": mvid,
                    "name": name,
                    "ti": ti,
                    "tf": tf,
                    "parents": tuple(parents),
                    "children": tuple(children),
                    "level": level,
                },
                rendering=(
                    f"Insert({did}, {mvid}, {name}, {ti}, "
                    f"{_fmt_set(parents)}, {_fmt_set(children)})"
                ),
            )
        )
        return mv

    def _clipped_edge(
        self, did: str, child: str, parent: str, ti: Instant, tf: Endpoint
    ) -> TemporalRelationship:
        dim = self.schema.dimension(did)
        span = Interval(ti, tf)
        clipped = span.intersect(dim.member(child).valid_time)
        if clipped is not None:
            clipped = clipped.intersect(dim.member(parent).valid_time)
        if clipped is None:
            raise OperatorError(
                f"cannot relate {child!r} to {parent!r} over {span!r}: the "
                f"member versions' valid times do not intersect it"
            )
        return TemporalRelationship(child=child, parent=parent, valid_time=clipped)

    # -- Exclude ----------------------------------------------------------------

    def exclude(self, did: str, mvid: str, tf: Instant) -> MemberVersion:
        """``Exclude(Did, mvID, tf)``.

        Sets the end time of ``mvID`` and of every temporal relationship
        involving it to ``tf - 1``.  Relationships that would become empty
        (starting at or after ``tf``) are removed outright.
        """
        dim = self.schema.dimension(did)
        mv = dim.member(mvid)
        if tf <= mv.start:
            raise OperatorError(
                f"Exclude({did}, {mvid}, {tf}): the member version starts at "
                f"{mv.start}; excluding it before it exists is inconsistent"
            )
        if not mv.valid_time.contains(tf - 1):
            # Already ends before tf-1: Exclude is a no-op on the member,
            # but the paper still treats it as setting the end time.
            pass
        else:
            dim.replace_member(mv.excluded_at(tf))
        for rel in dim.relationships_of(mvid):
            if rel.start >= tf:
                dim.remove_relationship(rel)
            elif rel.valid_time.contains(tf - 1) and (
                rel.valid_time.open_ended or rel.valid_time.end > tf - 1  # type: ignore[operator]
            ):
                dim.replace_relationship(rel, rel.excluded_at(tf))
        self.journal.append(
            OperatorRecord(
                operator="Exclude",
                arguments={"did": did, "mvid": mvid, "tf": tf},
                rendering=f"Exclude({did}, {mvid}, {tf})",
            )
        )
        return dim.member(mvid)

    # -- Associate --------------------------------------------------------------

    def associate(
        self, rel: MappingRelationship, *, allow_non_leaf: bool = False
    ) -> MappingRelationship:
        """``Associate(Rmap)`` — consistency-check and register a mapping
        relationship (Definition 7) in the schema's ``MR`` set.

        ``allow_non_leaf`` relaxes the leaf-endpoint check for the §4.2
        logical Reclassify rewrite.
        """
        self.schema.add_mapping(rel, allow_non_leaf=allow_non_leaf)
        fwd = {
            m: f"({mm.function.describe()},{mm.confidence.symbol})"
            for m, mm in rel.forward.items()
        }
        rev = {
            m: f"({mm.function.describe()},{mm.confidence.symbol})"
            for m, mm in rel.reverse.items()
        }
        self.journal.append(
            OperatorRecord(
                operator="Associate",
                arguments={"source": rel.source, "target": rel.target},
                rendering=f"Associate({rel.source}, {rel.target}, {fwd}, {rev})",
            )
        )
        return rel

    # -- Reclassify ---------------------------------------------------------------

    def reclassify(
        self,
        did: str,
        mvid: str,
        ti: Instant,
        tf: Endpoint = NOW,
        *,
        old_parents: Sequence[str] = (),
        new_parents: Sequence[str] = (),
    ) -> None:
        """``Reclassify(Did, mvID, ti, [tf], OldParents, NewParents)``.

        Ends (at ``ti - 1``) the relationships from ``mvID`` to each member
        of ``OldParents`` and inserts relationships to each member of
        ``NewParents`` valid over ``[ti, tf]`` (clipped per Definition 2).
        Either set may be empty: a pure detachment or a pure attachment.

        This is the *conceptual* operator; commercial-tool constraints
        require the §4.2 rewrite implemented in
        :mod:`repro.logical.reclassify`.
        """
        dim = self.schema.dimension(did)
        dim.member(mvid)  # existence check
        old_set = set(old_parents)
        truncated = 0
        for rel in dim.relationships_of(mvid):
            if rel.child != mvid or rel.parent not in old_set:
                continue
            if not rel.valid_at(ti) and rel.start < ti:
                continue  # already ended before the reclassification
            if rel.start >= ti:
                dim.remove_relationship(rel)
            else:
                dim.replace_relationship(rel, rel.excluded_at(ti))
            truncated += 1
        if old_set and truncated == 0:
            raise OperatorError(
                f"Reclassify({did}, {mvid}, {ti}): none of {sorted(old_set)} "
                f"is a parent of {mvid!r} at {ti}"
            )
        for parent in new_parents:
            dim.add_relationship(self._clipped_edge(did, mvid, parent, ti, tf))
        self.journal.append(
            OperatorRecord(
                operator="Reclassify",
                arguments={
                    "did": did,
                    "mvid": mvid,
                    "ti": ti,
                    "tf": tf,
                    "old_parents": tuple(old_parents),
                    "new_parents": tuple(new_parents),
                },
                rendering=(
                    f"Reclassify({did}, {mvid}, {ti}, "
                    f"{_fmt_set(old_parents)}, {_fmt_set(new_parents)})"
                ),
            )
        )

    # -- journal helpers -----------------------------------------------------------

    def records_since(self, mark: int) -> list[OperatorRecord]:
        """Journal entries appended after position ``mark`` (used by the
        high-level operations to report their basic-operator translation)."""
        return list(self.journal[mark:])

    def mark(self) -> int:
        """Current journal position (pair with :meth:`records_since`)."""
        return len(self.journal)
