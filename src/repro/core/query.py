"""The multiversion query engine.

This is the layer that answers the paper's motivating queries Q1 and Q2
(§2.1) under every interpretation: *temporally consistent*, or *mapped into
a chosen structure version* — the Temporal Modes of Presentation of
Definition 10.

A :class:`Query` declares:

* a presentation ``mode`` (``"tcm"`` or a structure-version id),
* ``group_by`` terms — a time bucket (:class:`TimeGroup`) and/or dimension
  levels (:class:`LevelGroup`),
* an optional time window and coordinate filter,
* the measures to report.

Execution groups MultiVersion fact rows of the requested mode, resolving
each leaf coordinate to its ancestor(s) at the requested level **in the
structure the mode prescribes**: the snapshot ``D(t)`` at the fact's own
time for ``tcm``, the static restricted dimension for version modes.
Measures fold with their ``⊕`` and confidences with ``⊗cf``, so every
result cell carries the reliability tag the §5.2 front end colours by.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.observability import runtime as _obs
from repro.observability.lineage import NULL_LINEAGE

from .chronology import Granularity, Instant, Interval, YEAR
from .confidence import ConfidenceFactor
from .dimension import DimensionSnapshot
from .errors import QueryError
from .multiversion import MVFactRow, MultiVersionFactTable
from .presentation import PresentationMode, TCM_LABEL

__all__ = [
    "TimeGroup",
    "LevelGroup",
    "AttributeGroup",
    "LevelFilter",
    "Query",
    "ResultCell",
    "ResultRow",
    "ResultTable",
    "QueryEngine",
    "merge_contributions",
]


@dataclass(frozen=True)
class TimeGroup:
    """Group facts by a time bucket (e.g. year, as in Q1/Q2)."""

    granularity: Granularity = YEAR

    @property
    def column(self) -> str:
        """Column header in the result table."""
        return self.granularity.name


@dataclass(frozen=True)
class LevelGroup:
    """Group facts by the member at a hierarchy level of one dimension.

    ``level`` is an explicit level name (``"Division"``) or a ``depth-<k>``
    label when the dimension infers levels from DAG depth (Definition 4).
    Labels in the result are member *names* (several member versions of the
    same member share a name, exactly like the paper's tables).

    With multiple hierarchies a leaf may have several ancestors at the
    level: the fact then contributes to each (standard multi-rollup
    semantics).  With a non-covering hierarchy a leaf may have none: it is
    grouped under ``None``, rendered ``"(no <level>)"``.
    """

    dimension: str
    level: str

    @property
    def column(self) -> str:
        """Column header in the result table."""
        return self.level


@dataclass(frozen=True)
class AttributeGroup:
    """Group facts by a user-defined attribute of the leaf member version.

    Member versions carry the optional attribute set ``[A]`` (Definition
    1), and a *transformation* may change an attribute — creating a new
    version.  Grouping by an attribute therefore honours the presentation
    mode exactly like level grouping does: in ``tcm`` the attribute value
    of the version valid at the fact's time applies; in a version mode the
    attribute of the version living in that structure does.

    Leaves without the attribute group under ``None``.
    """

    dimension: str
    attribute: str

    @property
    def column(self) -> str:
        """Column header in the result table."""
        return self.attribute


GroupTerm = TimeGroup | LevelGroup | AttributeGroup


@dataclass(frozen=True)
class LevelFilter:
    """Keep only facts rolling up into given members of a level.

    The filter is resolved *in the query's presentation mode*: slicing on
    ``Division = Sales`` keeps the facts whose leaf coordinate rolls into
    Sales in the structure the mode prescribes — D(t) for ``tcm``, the
    static version structure otherwise.  With multiple hierarchies a fact
    passes if *any* of its ancestors at the level matches.
    """

    dimension: str
    level: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise QueryError("a level filter needs at least one value")


@dataclass(frozen=True)
class Query:
    """A declarative multiversion query.

    Parameters
    ----------
    mode:
        Presentation mode label: ``"tcm"`` or a structure version id.
    group_by:
        Group terms, in output column order.
    measures:
        Measure names to report (defaults to every schema measure).
    time_range:
        Optional closed interval filtering fact times.
    level_filters:
        Optional slice/dice restrictions resolved through the mode's
        hierarchy (:class:`LevelFilter`).
    coordinate_filter:
        Optional predicate over the raw MV row, for restrictions the
        declarative filters cannot express.
    """

    mode: str = TCM_LABEL
    group_by: tuple[GroupTerm, ...] = ()
    measures: tuple[str, ...] = ()
    time_range: Interval | None = None
    level_filters: tuple[LevelFilter, ...] = ()
    coordinate_filter: Callable[[MVFactRow], bool] | None = None

    def with_mode(self, mode: str) -> "Query":
        """The same query presented in another mode — the user 'switching
        between temporal modes' that §4.1 calls out."""
        return Query(
            mode=mode,
            group_by=self.group_by,
            measures=self.measures,
            time_range=self.time_range,
            level_filters=self.level_filters,
            coordinate_filter=self.coordinate_filter,
        )


@dataclass(frozen=True)
class ResultCell:
    """One measure value of a result row, with its confidence."""

    measure: str
    value: float | None
    confidence: ConfidenceFactor | None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cf = self.confidence.symbol if self.confidence else "-"
        return f"{self.measure}={self.value}({cf})"


@dataclass(frozen=True)
class ResultRow:
    """One grouped row: the group key labels plus one cell per measure."""

    group: tuple[object, ...]
    cells: tuple[ResultCell, ...]

    def value(self, measure: str) -> float | None:
        """Value of ``measure`` in this row."""
        for cell in self.cells:
            if cell.measure == measure:
                return cell.value
        raise QueryError(f"result row has no measure {measure!r}")

    def confidence(self, measure: str) -> ConfidenceFactor | None:
        """Confidence of ``measure`` in this row."""
        for cell in self.cells:
            if cell.measure == measure:
                return cell.confidence
        raise QueryError(f"result row has no measure {measure!r}")


class ResultTable:
    """An ordered collection of result rows with named group columns."""

    def __init__(
        self,
        columns: Sequence[str],
        measures: Sequence[str],
        rows: Iterable[ResultRow],
        mode: str,
    ) -> None:
        self.columns = list(columns)
        self.measures = list(measures)
        self.mode = mode
        self.rows = sorted(rows, key=lambda r: tuple(_sort_key(g) for g in r.group))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dict(self) -> dict[tuple[object, ...], dict[str, float | None]]:
        """``{group key: {measure: value}}`` — handy for assertions."""
        return {
            row.group: {cell.measure: cell.value for cell in row.cells}
            for row in self.rows
        }

    def confidences(self) -> dict[tuple[object, ...], dict[str, str | None]]:
        """``{group key: {measure: confidence symbol}}``."""
        return {
            row.group: {
                cell.measure: cell.confidence.symbol if cell.confidence else None
                for cell in row.cells
            }
            for row in self.rows
        }

    def cell_confidences(self) -> list[ConfidenceFactor | None]:
        """Every cell's confidence, row-major — input to the §5.2 quality
        factor ``Q``."""
        return [cell.confidence for row in self.rows for cell in row.cells]

    def to_text(self, *, show_confidence: bool = True) -> str:
        """Render the table in the style of the paper's result tables."""
        headers = [*self.columns, *self.measures]
        body: list[list[str]] = []
        for row in self.rows:
            labels = [_render_label(g) for g in row.group]
            for cell in row.cells:
                if cell.value is None:
                    text = "?"
                else:
                    text = f"{cell.value:g}"
                if show_confidence and cell.confidence is not None:
                    text += f" ({cell.confidence.symbol})"
                labels.append(text)
            body.append(labels)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)


def _sort_key(value: object) -> tuple[int, str]:
    if value is None:
        return (1, "")
    return (0, str(value))


def _render_label(value: object) -> str:
    return "(none)" if value is None else str(value)


class QueryEngine:
    """Executes :class:`Query` objects against a MultiVersion fact table.

    ``tracer`` / ``metrics`` inject observability instruments for tests
    and profiling; left as ``None`` they resolve to the process-wide
    defaults of :mod:`repro.observability` at call time, which are
    no-op-cheap until explicitly enabled.

    ``lineage`` attaches a
    :class:`~repro.observability.lineage.LineageRecorder`: the collect
    phase then remembers which MultiVersion rows fed each group and the
    finalize phase records every cell's ``⊗cf`` fold — the
    ``explain_cell`` surface.  Lineage is explicit-injection only (no
    process-wide default): provenance capture retains row references, so
    opting in is a per-engine decision.  ``slow_log`` attaches a
    :class:`~repro.observability.health.SlowQueryLog`; over-threshold
    queries land in it with their phase breakdown.

    ``cache`` attaches a :class:`~repro.cache.VersionedResultCache`;
    :meth:`execute` then memoizes results under version-stable keys (see
    :mod:`repro.cache`).  ``cache_policy_digest`` scopes this engine's
    entries to an RLS policy so secured sessions never share entries
    across tenants.
    """

    def __init__(
        self,
        mvft: MultiVersionFactTable,
        *,
        tracer=None,
        metrics=None,
        lineage=None,
        slow_log=None,
        cache=None,
        cache_policy_digest=None,
    ) -> None:
        self._mvft = mvft
        self._schema = mvft.schema
        self._tracer = tracer
        self._metrics = metrics
        self._lineage = lineage if lineage is not None else NULL_LINEAGE
        self._slow_log = slow_log
        self._cache = cache
        self._cache_policy_digest = cache_policy_digest
        self._snapshot_cache: dict[tuple[str, str, Instant], DimensionSnapshot] = {}
        self._level_cache: dict[tuple[str, str, Instant, str, str], tuple[object, ...]] = {}

    @property
    def lineage(self):
        """The attached lineage recorder (``NULL_LINEAGE`` when none)."""
        return self._lineage

    def set_lineage(self, lineage) -> None:
        """Attach (or with ``None`` detach) a lineage recorder."""
        self._lineage = lineage if lineage is not None else NULL_LINEAGE

    @property
    def slow_log(self):
        """The attached slow-query log, if any."""
        return self._slow_log

    def _observability(self):
        """The effective ``(tracer, metrics)`` pair (injected or default)."""
        tracer = self._tracer if self._tracer is not None else _obs.current_tracer()
        metrics = (
            self._metrics if self._metrics is not None else _obs.current_metrics()
        )
        return tracer, metrics

    # -- structure resolution ---------------------------------------------------

    def _snapshot(
        self, mode: PresentationMode, did: str, t: Instant
    ) -> DimensionSnapshot:
        if mode.is_tcm:
            key = (TCM_LABEL, did, t)
            if key not in self._snapshot_cache:
                self._snapshot_cache[key] = self._schema.dimension(did).at(t)
            return self._snapshot_cache[key]
        version = mode.version
        assert version is not None
        anchor = version.valid_time.start
        key = (mode.label, did, anchor)
        if key not in self._snapshot_cache:
            self._snapshot_cache[key] = version.dimension(did).at(anchor)
        return self._snapshot_cache[key]

    def _labels_at_level(
        self, mode: PresentationMode, term: LevelGroup, leaf: str, t: Instant
    ) -> tuple[object, ...]:
        """Member name(s) of the ancestors-or-self of ``leaf`` that sit at
        the requested level in the mode's structure."""
        anchor = t if mode.is_tcm else mode.version.valid_time.start  # type: ignore[union-attr]
        cache_key = (mode.label, term.dimension, anchor, term.level, leaf)
        if cache_key in self._level_cache:
            return self._level_cache[cache_key]
        snap = self._snapshot(mode, term.dimension, t)
        if leaf not in snap:
            self._level_cache[cache_key] = (None,)
            return (None,)
        level_ids = set(snap.levels().get(term.level, ()))
        if not level_ids:
            raise QueryError(
                f"dimension {term.dimension!r} has no level {term.level!r} in "
                f"mode {mode.label!r} (available: {sorted(snap.levels())})"
            )
        candidates = {leaf} | snap.ancestors(leaf)
        hits = sorted(candidates & level_ids)
        labels: tuple[object, ...]
        if hits:
            labels = tuple(snap.member(mvid).name for mvid in hits)
        else:
            labels = (None,)
        self._level_cache[cache_key] = labels
        return labels

    def _passes_filters(
        self,
        mode: PresentationMode,
        filters: tuple[LevelFilter, ...],
        row: MVFactRow,
    ) -> bool:
        """Whether a row survives every level filter of the query."""
        for flt in filters:
            leaf = row.coordinates.get(flt.dimension)
            if leaf is None:
                raise QueryError(
                    f"rows carry no coordinate for dimension {flt.dimension!r}"
                )
            labels = self._labels_at_level(
                mode, LevelGroup(flt.dimension, flt.level), leaf, row.t
            )
            if not any(label in flt.values for label in labels):
                return False
        return True

    # -- execution -----------------------------------------------------------------

    def resolve(self, query: Query) -> tuple[PresentationMode, list[str]]:
        """Validate a query's mode and measures, raising early on unknowns."""
        mode = self._mvft.modes.mode(query.mode)
        measures = list(query.measures) or self._schema.measure_names
        for m in measures:
            self._schema.measure(m)
        if not query.group_by:
            raise QueryError("a query needs at least one group_by term")
        return mode, measures

    def collect_contributions(
        self,
        query: Query,
        rows: Iterable[MVFactRow] | None = None,
    ) -> dict[tuple[object, ...], dict[str, list]]:
        """Phase one of execution: group raw ``(value, confidence)`` pairs.

        ``rows`` defaults to the whole slice of the query's mode; passing an
        explicit subset is how :class:`~repro.concurrency.sharding.ShardedExecutor`
        runs this phase shard-parallel — partial group maps from disjoint
        row ranges merge by list concatenation (:func:`merge_contributions`)
        and finalize exactly like the serial path.
        """
        mode, measures = self.resolve(query)
        if rows is None:
            rows = self._mvft.slice(mode.label)
        groups: dict[tuple[object, ...], dict[str, list]] = {}
        # Hoisted once per phase: the disabled path pays one bool test per
        # matched row, never an attribute chain.
        lineage = self._lineage
        record_lineage = lineage.enabled
        scanned = 0
        matched = 0
        for row in rows:
            scanned += 1
            if query.time_range is not None and not query.time_range.contains(row.t):
                continue
            if query.coordinate_filter is not None and not query.coordinate_filter(row):
                continue
            if query.level_filters and not self._passes_filters(
                mode, query.level_filters, row
            ):
                continue
            label_sets: list[tuple[object, ...]] = []
            for term in query.group_by:
                if isinstance(term, TimeGroup):
                    label_sets.append(
                        (term.granularity.label(term.granularity.bucket(row.t)),)
                    )
                    continue
                leaf = row.coordinates.get(term.dimension)
                if leaf is None:
                    raise QueryError(
                        f"rows carry no coordinate for dimension "
                        f"{term.dimension!r}"
                    )
                if isinstance(term, AttributeGroup):
                    snap = self._snapshot(mode, term.dimension, row.t)
                    value = (
                        snap.member(leaf).attributes.get(term.attribute)
                        if leaf in snap
                        else None
                    )
                    label_sets.append((value,))
                else:
                    label_sets.append(self._labels_at_level(mode, term, leaf, row.t))
            matched += 1
            for combo in _product(label_sets):
                acc = groups.setdefault(combo, {m: [] for m in measures})
                for m in measures:
                    acc[m].append((row.value(m), row.confidence(m)))
                if record_lineage:
                    lineage.add_contribution(mode.label, combo, row)
        _, metrics = self._observability()
        if metrics.enabled:
            # Row totals accumulate locally above; the registry is touched
            # once per phase, keyed by mode so per-structure-version scan
            # cost stays visible.
            labels = {"mode": mode.label}
            metrics.counter("query.rows_scanned", labels).inc(scanned)
            metrics.counter("query.rows_matched", labels).inc(matched)
        return groups

    def finalize(
        self,
        query: Query,
        groups: dict[tuple[object, ...], dict[str, list]],
    ) -> ResultTable:
        """Phase two of execution: fold each group with ``⊕`` and ``⊗cf``."""
        mode, measures = self.resolve(query)
        lineage = self._lineage
        record_lineage = lineage.enabled
        result_rows: list[ResultRow] = []
        for group, acc in groups.items():
            cells: list[ResultCell] = []
            for m in measures:
                contribs = acc[m]
                agg = self._schema.measure(m).aggregate
                value = agg.combine_all(v for v, _ in contribs)
                confidence = (
                    self._schema.cf_aggregator.combine_all(cf for _, cf in contribs)
                    if contribs
                    else None
                )
                cells.append(ResultCell(m, value, confidence))
                if record_lineage:
                    lineage.record_cell(
                        mode.label,
                        group,
                        m,
                        value,
                        confidence,
                        contribs,
                        self._schema.cf_aggregator,
                    )
            result_rows.append(ResultRow(group=group, cells=tuple(cells)))
        columns = [term.column for term in query.group_by]
        _, metrics = self._observability()
        if metrics.enabled:
            metrics.counter("query.cells_emitted", {"mode": mode.label}).inc(
                len(result_rows) * len(measures)
            )
        return ResultTable(columns, measures, result_rows, mode.label)

    def execute(self, query: Query) -> ResultTable:
        """Run a query and return its grouped, confidence-tagged result.

        With an attached :class:`~repro.cache.VersionedResultCache` the
        engine consults it first: the key binds the table's snapshot
        version and build-time structure token, so a hit is exactly the
        table this engine would recompute.  Lineage-recording engines
        bypass the cache — a hit would skip provenance capture and
        silently leave ``explain_cell`` empty.  Cached
        :class:`ResultTable` objects are shared across callers and
        treated as immutable.
        """
        cache = self._cache
        key = None
        if cache is not None and not self._lineage.enabled:
            key = cache.key_for(self._mvft, query, self._cache_policy_digest)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    _, metrics = self._observability()
                    if metrics.enabled:
                        metrics.counter(
                            "query.cache_hits", {"mode": query.mode}
                        ).inc()
                    return hit
        table = self._execute_uncached(query)
        if key is not None:
            _, metrics = self._observability()
            if metrics.enabled:
                metrics.counter(
                    "query.cache_misses", {"mode": query.mode}
                ).inc()
            cache.put(key, table)
        return table

    @property
    def cache(self):
        """The attached result cache, if any."""
        return self._cache

    def _execute_uncached(self, query: Query) -> ResultTable:
        tracer, metrics = self._observability()
        if self._lineage.enabled:
            self._lineage.begin(query.mode)
        slow = self._slow_log
        slow_on = slow is not None and slow.enabled
        if not (tracer.enabled or metrics.enabled or slow_on):
            return self.finalize(query, self.collect_contributions(query))
        with tracer.span("query.execute", attributes={"mode": query.mode}):
            started = time.perf_counter()
            with tracer.span("query.resolve"):
                self.resolve(query)
            resolved = time.perf_counter()
            with tracer.span("query.collect_contributions") as collect_span:
                groups = self.collect_contributions(query)
                collect_span.set("groups", len(groups))
            collected = time.perf_counter()
            with tracer.span("query.finalize") as finalize_span:
                table = self.finalize(query, groups)
                finalize_span.set("rows", len(table))
            finished = time.perf_counter()
        metrics.counter("query.executed", {"mode": query.mode}).inc()
        if slow_on:
            slow.record(
                mode=query.mode,
                seconds=finished - started,
                phases={
                    "resolve": resolved - started,
                    "collect_contributions": collected - resolved,
                    "finalize": finished - collected,
                },
                query=query,
            )
        return table

    def execute_all_modes(self, query: Query) -> dict[str, ResultTable]:
        """Run the same query in every presentation mode — the §2.1 drill
        across interpretations."""
        return {
            label: self.execute(query.with_mode(label))
            for label in self._mvft.modes.labels
        }


def _product(label_sets: Sequence[tuple[object, ...]]) -> Iterable[tuple[object, ...]]:
    if not label_sets:
        return [()]
    return itertools.product(*label_sets)


def merge_contributions(
    partials: Sequence[dict[tuple[object, ...], dict[str, list]]],
) -> dict[tuple[object, ...], dict[str, list]]:
    """Merge partial group maps from disjoint row ranges.

    Contribution lists concatenate in partial order, so merging shard
    partials produced from contiguous row ranges (in shard index order)
    reproduces the exact fold order of a serial
    :meth:`QueryEngine.collect_contributions` over the whole slice — the
    invariant that makes sharded execution byte-deterministic.
    """
    merged: dict[tuple[object, ...], dict[str, list]] = {}
    for partial in partials:
        for group, acc in partial.items():
            target = merged.get(group)
            if target is None:
                merged[group] = {m: list(contribs) for m, contribs in acc.items()}
                continue
            for m, contribs in acc.items():
                target.setdefault(m, []).extend(contribs)
    return merged
