"""Exception hierarchy for the :mod:`repro` conceptual model.

Every error raised by :mod:`repro.core` derives from :class:`ReproError`, so
callers can catch a single base class.  Subpackages that model distinct
substrates (e.g. :mod:`repro.storage`) define their own hierarchies but also
derive from :class:`ReproError` for uniform handling at application level.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ChronologyError",
    "InvalidIntervalError",
    "ModelError",
    "DuplicateMemberVersionError",
    "UnknownMemberVersionError",
    "UnknownDimensionError",
    "InvalidRelationshipError",
    "CyclicHierarchyError",
    "ConfidenceError",
    "MappingError",
    "FactError",
    "FactValidityError",
    "OperatorError",
    "QueryError",
    "QualityError",
]


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ChronologyError(ReproError):
    """Base class for valid-time related errors."""


class InvalidIntervalError(ChronologyError):
    """Raised when an interval's end precedes its start, or an endpoint is
    not a valid instant."""


class ModelError(ReproError):
    """Base class for errors in the temporal multidimensional model."""


class DuplicateMemberVersionError(ModelError):
    """Raised when a member-version identifier is registered twice in the
    same temporal dimension."""


class UnknownMemberVersionError(ModelError):
    """Raised when an operation references a member-version id that does not
    exist in the dimension (or schema) it is applied to."""


class UnknownDimensionError(ModelError):
    """Raised when a schema-level operation names a dimension that the
    temporal multidimensional schema does not contain."""


class InvalidRelationshipError(ModelError):
    """Raised when a temporal relationship violates Definition 2 — e.g. its
    valid time is not included in the intersection of the valid times of the
    two member versions it links, or it links a member version to itself."""


class CyclicHierarchyError(ModelError):
    """Raised when the restriction ``D(t)`` of a temporal dimension to some
    instant ``t`` is not a directed *acyclic* graph (Definition 3)."""


class ConfidenceError(ModelError):
    """Raised on ill-formed confidence factors or aggregate truth tables
    (Definition 6) — e.g. a truth table missing a pair of factors."""


class MappingError(ModelError):
    """Raised on ill-formed mapping relationships (Definition 7) or when a
    mapping function cannot be applied/composed."""


class FactError(ModelError):
    """Base class for errors of the temporally consistent fact table."""


class FactValidityError(FactError):
    """Raised when a fact row references a member version that is not a leaf
    member version valid at the fact's time coordinate (Definition 5)."""


class OperatorError(ModelError):
    """Raised when a structural evolution operator (Insert, Exclude,
    Associate, Reclassify — §3.2) receives inconsistent arguments."""


class QueryError(ReproError):
    """Raised by the multiversion query engine on unsatisfiable requests
    (unknown mode, unknown level, empty grouping, ...)."""


class QualityError(ReproError):
    """Raised by the quality-factor machinery (§5.2) on invalid weights."""
