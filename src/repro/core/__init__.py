"""The temporal multidimensional model — the paper's primary contribution.

This package implements §3 (conceptual model), the §3.2 evolution operators
and the query/quality machinery of §5.2 on top of them:

* :mod:`~repro.core.chronology` — instants, ``NOW``, valid-time intervals;
* :mod:`~repro.core.member`, :mod:`~repro.core.relationship`,
  :mod:`~repro.core.dimension` — member versions, temporal relationships and
  temporal dimensions (Definitions 1-4);
* :mod:`~repro.core.confidence`, :mod:`~repro.core.mapping` — confidence
  factors and mapping relationships (Definitions 6-7);
* :mod:`~repro.core.facts`, :mod:`~repro.core.schema` — the temporally
  consistent fact table and the TMD schema (Definitions 5, 8);
* :mod:`~repro.core.versions`, :mod:`~repro.core.presentation`,
  :mod:`~repro.core.multiversion`, :mod:`~repro.core.aggregation` —
  structure versions, temporal modes of presentation, the MultiVersion fact
  table and cube aggregation (Definitions 9-12);
* :mod:`~repro.core.operators`, :mod:`~repro.core.operations` — the four
  basic operators and the simple/complex evolution operations (Table 11);
* :mod:`~repro.core.query`, :mod:`~repro.core.quality` — the multiversion
  query engine and the §5.2 quality factor.
"""

from .chronology import (
    INSTANT,
    MONTH,
    NOW,
    QUARTER,
    YEAR,
    Granularity,
    Instant,
    Interval,
    NowType,
    month_interval,
    ym,
    ym_str,
    year_interval,
    year_of,
)
from .confidence import (
    AM,
    CANONICAL_FACTORS,
    DEFAULT_AGGREGATOR,
    EM,
    SD,
    UK,
    ConfidenceAggregator,
    ConfidenceFactor,
    QuantitativeAggregator,
    TruthTableAggregator,
    factor_from_code,
)
from .dimension import DimensionSnapshot, TemporalDimension
from .errors import (
    ChronologyError,
    ConfidenceError,
    CyclicHierarchyError,
    DuplicateMemberVersionError,
    FactError,
    FactValidityError,
    InvalidIntervalError,
    InvalidRelationshipError,
    MappingError,
    ModelError,
    OperatorError,
    QualityError,
    QueryError,
    ReproError,
    UnknownDimensionError,
    UnknownMemberVersionError,
)
from .facts import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    AggregateFunction,
    FactRow,
    Measure,
    TemporallyConsistentFactTable,
)
from .mapping import (
    CallableMapping,
    ComposedMapping,
    IdentityMapping,
    LinearMapping,
    MappingCatalog,
    MappingFunction,
    MappingRelationship,
    MeasureMap,
    Route,
    UnknownMapping,
    identity_maps,
    linear_maps,
    unknown_maps,
)
from .member import MemberVersion
from .multiversion import MVFactRow, MultiVersionFactTable, UnmappedFact
from .operations import EvolutionManager, OperationResult
from .operators import OperatorRecord, SchemaEditor
from .aggregation import DataAggregator
from .audit import AuditReport, Finding, audit_schema
from .presentation import TCM_LABEL, ModeSet, PresentationMode, build_modes
from .quality import DEFAULT_WEIGHTS, quality_factor, rank_modes
from .query import (
    AttributeGroup,
    LevelFilter,
    LevelGroup,
    Query,
    QueryEngine,
    ResultCell,
    ResultRow,
    ResultTable,
    TimeGroup,
)
from .relationship import TemporalRelationship, validate_relationship
from .serialization import (
    SerializationError,
    load_schema,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)
from .schema import TemporalMultidimensionalSchema
from .versions import StructureVersion, infer_structure_versions

__all__ = [
    # chronology
    "Instant",
    "Interval",
    "NOW",
    "NowType",
    "Granularity",
    "YEAR",
    "QUARTER",
    "MONTH",
    "INSTANT",
    "ym",
    "ym_str",
    "year_of",
    "year_interval",
    "month_interval",
    # confidence
    "ConfidenceFactor",
    "ConfidenceAggregator",
    "TruthTableAggregator",
    "QuantitativeAggregator",
    "SD",
    "EM",
    "AM",
    "UK",
    "CANONICAL_FACTORS",
    "DEFAULT_AGGREGATOR",
    "factor_from_code",
    # entities
    "MemberVersion",
    "TemporalRelationship",
    "validate_relationship",
    "TemporalDimension",
    "DimensionSnapshot",
    # mapping
    "MappingFunction",
    "LinearMapping",
    "IdentityMapping",
    "UnknownMapping",
    "CallableMapping",
    "ComposedMapping",
    "MeasureMap",
    "MappingRelationship",
    "MappingCatalog",
    "Route",
    "identity_maps",
    "linear_maps",
    "unknown_maps",
    # facts & schema
    "AggregateFunction",
    "SUM",
    "MIN",
    "MAX",
    "COUNT",
    "AVG",
    "Measure",
    "FactRow",
    "TemporallyConsistentFactTable",
    "TemporalMultidimensionalSchema",
    # derived structures
    "StructureVersion",
    "infer_structure_versions",
    "PresentationMode",
    "ModeSet",
    "TCM_LABEL",
    "build_modes",
    "MVFactRow",
    "UnmappedFact",
    "MultiVersionFactTable",
    "DataAggregator",
    # evolution
    "SchemaEditor",
    "OperatorRecord",
    "EvolutionManager",
    "OperationResult",
    # querying
    "Query",
    "QueryEngine",
    "TimeGroup",
    "LevelGroup",
    "AttributeGroup",
    "LevelFilter",
    "ResultCell",
    "ResultRow",
    "ResultTable",
    # quality
    "DEFAULT_WEIGHTS",
    "quality_factor",
    "rank_modes",
    # auditing
    "audit_schema",
    "AuditReport",
    "Finding",
    # serialization
    "schema_to_dict",
    "schema_from_dict",
    "save_schema",
    "load_schema",
    "SerializationError",
    # errors
    "ReproError",
    "ChronologyError",
    "InvalidIntervalError",
    "ModelError",
    "DuplicateMemberVersionError",
    "UnknownMemberVersionError",
    "UnknownDimensionError",
    "InvalidRelationshipError",
    "CyclicHierarchyError",
    "ConfidenceError",
    "MappingError",
    "FactError",
    "FactValidityError",
    "OperatorError",
    "QueryError",
    "QualityError",
]
