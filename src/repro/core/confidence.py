"""Confidence factors and their aggregate algebra (Definition 6, §5.2).

A *confidence factor* describes the reliability of a value: whether it is
source data or the product of an exact, approximated or unknown mapping.  The
designer supplies an aggregate function ``⊗cf`` that combines confidences
when values are aggregated in the cube; for qualitative factors the paper
expresses it as a truth table (Example 5), for quantitative factors as a
numeric function.

This module ships:

* :class:`ConfidenceFactor` — the four canonical factors ``sd`` (source
  data), ``em`` (exact mapping), ``am`` (approximated mapping), ``uk``
  (unknown mapping), plus support for custom qualitative factors;
* :class:`TruthTableAggregator` — the paper's Example 5 table, extensible;
* :class:`QuantitativeAggregator` — ``⊗cf`` for numeric confidences;
* the §5.2 prototype integer codes (3=sd, 2=em, 1=am, 4=uk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from .errors import ConfidenceError

__all__ = [
    "ConfidenceFactor",
    "SD",
    "EM",
    "AM",
    "UK",
    "CANONICAL_FACTORS",
    "PROTOTYPE_CODES",
    "factor_from_code",
    "ConfidenceAggregator",
    "TruthTableAggregator",
    "QuantitativeAggregator",
    "default_truth_table",
    "DEFAULT_AGGREGATOR",
]


@dataclass(frozen=True)
class ConfidenceFactor:
    """A qualitative confidence factor.

    ``rank`` orders factors from most to least reliable and drives the
    default truth table (which behaves as a *min* over reliability, with
    ``uk`` absorbing).  ``code`` is the §5.2 prototype integer code.
    """

    symbol: str
    rank: int
    code: int
    description: str = ""

    def __post_init__(self) -> None:
        if not self.symbol:
            raise ConfidenceError("confidence factor needs a symbol")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol


SD = ConfidenceFactor("sd", 0, 3, "source data (temporally consistent)")
EM = ConfidenceFactor("em", 1, 2, "exact mapped data")
AM = ConfidenceFactor("am", 2, 1, "approximated mapped data")
UK = ConfidenceFactor("uk", 3, 4, "unknown mapping")

CANONICAL_FACTORS: tuple[ConfidenceFactor, ...] = (SD, EM, AM, UK)
"""The paper's Example 5 range ``CF = {sd, em, am, uk}``."""

PROTOTYPE_CODES: Mapping[int, ConfidenceFactor] = {f.code: f for f in CANONICAL_FACTORS}
"""§5.2 prototype coding: 3 → sd, 2 → em, 1 → am, 4 → uk."""


def factor_from_code(code: int) -> ConfidenceFactor:
    """Resolve a §5.2 prototype integer code to its confidence factor."""
    try:
        return PROTOTYPE_CODES[code]
    except KeyError:
        raise ConfidenceError(f"unknown prototype confidence code {code!r}") from None


class ConfidenceAggregator:
    """Abstract ``⊗cf``: combines two confidences into one.

    Subclasses implement :meth:`combine`; :meth:`combine_all` folds a
    sequence (aggregating a cube cell from many children — Definition 12).
    """

    def combine(self, a: ConfidenceFactor, b: ConfidenceFactor) -> ConfidenceFactor:
        """Combine two confidence factors."""
        raise NotImplementedError

    def combine_all(self, factors: Iterable[ConfidenceFactor]) -> ConfidenceFactor:
        """Fold ``⊗cf`` over a non-empty sequence of factors."""
        iterator = iter(factors)
        try:
            acc = next(iterator)
        except StopIteration:
            raise ConfidenceError("cannot combine an empty sequence of confidences") from None
        for f in iterator:
            acc = self.combine(acc, f)
        return acc


def default_truth_table() -> dict[tuple[str, str], ConfidenceFactor]:
    """The truth table of Example 5.

    ======  ====  ====  ====  ====
    ``⊗cf``  sd    em    am    uk
    ======  ====  ====  ====  ====
    sd      sd    em    am    uk
    em      em    em    am    uk
    am      am    am    am    uk
    uk      uk    uk    uk    uk
    ======  ====  ====  ====  ====
    """
    order = {0: SD, 1: EM, 2: AM, 3: UK}
    table: dict[tuple[str, str], ConfidenceFactor] = {}
    for a in CANONICAL_FACTORS:
        for b in CANONICAL_FACTORS:
            table[(a.symbol, b.symbol)] = order[max(a.rank, b.rank)]
    return table


class TruthTableAggregator(ConfidenceAggregator):
    """Qualitative ``⊗cf`` driven by an explicit truth table.

    The default table is Example 5's; designers may pass their own table
    covering a custom factor range.  The table must be total over the
    factors it will see — a missing pair raises :class:`ConfidenceError`.
    """

    def __init__(
        self, table: Mapping[tuple[str, str], ConfidenceFactor] | None = None
    ) -> None:
        self._table = dict(table) if table is not None else default_truth_table()
        self._factors: dict[str, ConfidenceFactor] = {}
        for (a, b), out in self._table.items():
            self._factors[out.symbol] = out
        for f in CANONICAL_FACTORS:
            self._factors.setdefault(f.symbol, f)

    def combine(self, a: ConfidenceFactor, b: ConfidenceFactor) -> ConfidenceFactor:
        try:
            return self._table[(a.symbol, b.symbol)]
        except KeyError:
            raise ConfidenceError(
                f"truth table has no entry for ({a.symbol}, {b.symbol})"
            ) from None

    def factor(self, symbol: str) -> ConfidenceFactor:
        """Look up a factor known to this aggregator by symbol."""
        try:
            return self._factors[symbol]
        except KeyError:
            raise ConfidenceError(f"unknown confidence symbol {symbol!r}") from None


class QuantitativeAggregator(ConfidenceAggregator):
    """``⊗cf`` for quantitative confidences.

    Quantitative confidences are modelled as factors whose ``rank`` encodes
    a reliability percentage; the aggregator combines the underlying numeric
    values with a callable (default: ``min``) and re-wraps the result.
    Designers with fully numeric pipelines can instead use
    :meth:`combine_values` directly on floats.
    """

    def __init__(self, fn: Callable[[float, float], float] = min) -> None:
        self._fn = fn

    def combine(self, a: ConfidenceFactor, b: ConfidenceFactor) -> ConfidenceFactor:
        value = self._fn(float(a.rank), float(b.rank))
        source = a if float(a.rank) == value else b
        return source

    def combine_values(self, a: float, b: float) -> float:
        """Combine two raw numeric confidence values."""
        return self._fn(a, b)


DEFAULT_AGGREGATOR = TruthTableAggregator()
"""Module-level aggregator implementing Example 5's truth table."""
