"""The MultiVersion Fact Table (Definition 11).

``f' : D1 × ... × Dn × T × TMP → dom(m1) × ... × dom(mm) × CF^m`` associates
measure values *and confidence factors* to leaf member versions valid for a
given presentation mode (not necessarily for the fact's own time ``t``), a
time and a mode.

The table is **inferred** from the Temporal Multidimensional Schema:

* the ``tcm`` slice is the temporally consistent fact table with every
  confidence set to ``sd`` (the paper's identity
  ``f'|tcm = f × {sd}^m``);
* for each structure-version mode ``VMi``, every consistent fact is routed
  along mapping relationships to the leaf member versions valid in ``Vi``:
  a fact already valid there keeps its value with ``sd``, others traverse
  the mapping graph (``F`` forward, ``F⁻¹`` backward), composing functions
  and confidences hop by hop;
* several contributions landing on the same ``(coordinates, t, mode)`` cell
  (merges) are folded with each measure's ``⊕`` and the confidence
  aggregate ``⊗cf`` (Definition 12);
* facts with *no route at all* into a mode are collected in
  :attr:`MultiVersionFactTable.unmapped` — the impossible cross-points the
  §5.2 front end paints red.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from .chronology import Instant
from .confidence import ConfidenceFactor, SD, UK
from .errors import QueryError
from .facts import FactRow
from .mapping import Route
from .presentation import ModeSet, PresentationMode, TCM_LABEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .schema import TemporalMultidimensionalSchema

__all__ = ["MVFactRow", "UnmappedFact", "MultiVersionFactTable"]


@dataclass(frozen=True)
class MVFactRow:
    """One cell of the MultiVersion fact table.

    ``coordinates`` are leaf member version ids valid in the row's mode;
    ``values`` may hold ``None`` for unknown-mapped measures, whose
    ``confidences`` entry is then ``uk``.  ``provenance`` records how each
    contribution was computed (source coordinates and applied conversions) —
    the §5.2 metadata giving the user "direct access to very precise
    information on the way the data were calculated".
    """

    coordinates: Mapping[str, str]
    t: Instant
    mode: str
    values: Mapping[str, float | None]
    confidences: Mapping[str, ConfidenceFactor]
    provenance: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "coordinates", MappingProxyType(dict(self.coordinates)))
        object.__setattr__(self, "values", MappingProxyType(dict(self.values)))
        object.__setattr__(self, "confidences", MappingProxyType(dict(self.confidences)))

    def value(self, measure: str) -> float | None:
        """The (possibly unknown) value of ``measure``."""
        return self.values.get(measure)

    def confidence(self, measure: str) -> ConfidenceFactor:
        """The confidence factor attached to ``measure``."""
        return self.confidences.get(measure, UK)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        coords = ", ".join(f"{d}={m}" for d, m in sorted(self.coordinates.items()))
        vals = ", ".join(
            f"{m}={v}({self.confidences[m].symbol})" for m, v in self.values.items()
        )
        return f"MVFact[{self.mode}]({coords}, t={self.t}, {vals})"


@dataclass(frozen=True)
class UnmappedFact:
    """A consistent fact that cannot be presented in a mode at all.

    ``dimension`` names the axis along which no mapping route exists from
    the fact's member version into the mode's structure version.
    """

    fact: FactRow
    mode: str
    dimension: str
    source: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Unmapped(mode={self.mode}, dim={self.dimension}, "
            f"source={self.source}, t={self.fact.t})"
        )


class _CellAccumulator:
    """Collects contributions to one MV cell and folds them (Definition 12)."""

    __slots__ = ("contributions", "provenance")

    def __init__(self) -> None:
        self.contributions: dict[str, list[tuple[float | None, ConfidenceFactor]]] = {}
        self.provenance: list[str] = []

    def add(
        self,
        measure: str,
        value: float | None,
        confidence: ConfidenceFactor,
    ) -> None:
        self.contributions.setdefault(measure, []).append((value, confidence))


class MultiVersionFactTable:
    """The inferred multiversion store behind every presentation mode.

    Build with :meth:`build`; query with :meth:`slice`, :meth:`lookup` and
    :meth:`rows`.  The builder memoizes mapping routes per (member version,
    structure version) so repeated facts on the same member are cheap.
    """

    def __init__(
        self,
        schema: "TemporalMultidimensionalSchema",
        modes: ModeSet,
        rows_by_mode: dict[str, list[MVFactRow]],
        unmapped: list[UnmappedFact],
    ) -> None:
        self._schema = schema
        self._modes = modes
        self._rows_by_mode = rows_by_mode
        self._unmapped = unmapped
        # The schema state this table was inferred from — the *structure
        # version* component of versioned result-cache keys.  The table is
        # frozen after build, so the stamp describes its contents forever;
        # ``is_stale`` compares it against the live schema's current token.
        self.schema_token: int = schema.version_token()
        # The MVCC commit version this table was pinned from, when it was
        # derived through a snapshot cursor (0 for ad-hoc live builds).
        self.snapshot_version: int = 0
        self._index: dict[tuple[tuple[tuple[str, str], ...], Instant, str], MVFactRow] = {}
        for mode_rows in rows_by_mode.values():
            for row in mode_rows:
                key = (tuple(sorted(row.coordinates.items())), row.t, row.mode)
                self._index[key] = row

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        schema: "TemporalMultidimensionalSchema",
        *,
        horizon: Instant | None = None,
        max_hops: int = 8,
        mode_labels: Sequence[str] | None = None,
    ) -> "MultiVersionFactTable":
        """Infer ``f'`` from the schema (Definition 11).

        ``mode_labels`` restricts inference to a subset of modes (always
        including any requested version modes; ``tcm`` is cheap and always
        materialized unless explicitly excluded).
        """
        modes = schema.presentation_modes(horizon=horizon)
        wanted = list(modes.labels) if mode_labels is None else list(mode_labels)
        for label in wanted:
            modes.mode(label)  # raise early on unknown labels
        measures = schema.measure_names
        aggregator = schema.cf_aggregator
        rows_by_mode: dict[str, list[MVFactRow]] = {}
        unmapped: list[UnmappedFact] = []

        if TCM_LABEL in wanted:
            rows_by_mode[TCM_LABEL] = [
                MVFactRow(
                    coordinates=row.coordinates,
                    t=row.t,
                    mode=TCM_LABEL,
                    values={m: row.value(m) for m in measures},
                    confidences={m: SD for m in measures},
                    provenance=(
                        ("source data",)
                        if row.source is None
                        else (f"source data [from {row.source}]",)
                    ),
                )
                for row in schema.facts
            ]

        route_cache: dict[tuple[str, str, str], list[Route]] = {}
        for mode in modes:
            if mode.is_tcm or mode.label not in wanted:
                continue
            rows_by_mode[mode.label] = cls._build_mode(
                schema,
                mode,
                measures,
                aggregator,
                route_cache,
                unmapped,
                max_hops,
            )
        return cls(schema, modes, rows_by_mode, unmapped)

    @staticmethod
    def _build_mode(
        schema: "TemporalMultidimensionalSchema",
        mode: PresentationMode,
        measures: list[str],
        aggregator,
        route_cache: dict[tuple[str, str, str], list[Route]],
        unmapped: list[UnmappedFact],
        max_hops: int,
    ) -> list[MVFactRow]:
        version = mode.version
        assert version is not None
        targets = {did: version.leaf_ids(did) for did in schema.dimension_ids}
        cells: dict[tuple[tuple[tuple[str, str], ...], Instant], _CellAccumulator] = {}

        for fact in schema.facts:
            routes_per_dim: list[list[Route]] = []
            blocked_dim: str | None = None
            blocked_src = ""
            for did in schema.dimension_ids:
                source = fact.coordinate(did)
                cache_key = (source, version.vsid, did)
                if cache_key not in route_cache:
                    route_cache[cache_key] = schema.mappings.routes(
                        source,
                        targets[did],
                        measures=measures,
                        max_hops=max_hops,
                    )
                routes = route_cache[cache_key]
                if not routes:
                    blocked_dim, blocked_src = did, source
                    break
                routes_per_dim.append(routes)
            if blocked_dim is not None:
                unmapped.append(
                    UnmappedFact(
                        fact=fact,
                        mode=mode.label,
                        dimension=blocked_dim,
                        source=blocked_src,
                    )
                )
                continue

            for combo in itertools.product(*routes_per_dim):
                coords = {
                    did: route.target
                    for did, route in zip(schema.dimension_ids, combo)
                }
                key = (tuple(sorted(coords.items())), fact.t)
                acc = cells.setdefault(key, _CellAccumulator())
                steps: list[str] = []
                for m in measures:
                    value = fact.value(m)
                    confidence = SD
                    for route in combo:
                        value = route.convert(m, value)
                        confidence = aggregator.combine(
                            confidence, route.confidence(m)
                        )
                    acc.add(m, value, confidence)
                for route in combo:
                    if route.hops:
                        described = {
                            m: route.maps[m].function.describe() for m in measures
                        }
                        steps.append(
                            f"{route.source} -> {route.target} via {described}"
                        )
                entry = (
                    "; ".join(steps) if steps else "valid in version (source data)"
                )
                if fact.source is not None:
                    entry += f" [from {fact.source}]"
                acc.provenance.append(entry)

        rows: list[MVFactRow] = []
        for (coord_items, t), acc in cells.items():
            values: dict[str, float | None] = {}
            confidences: dict[str, ConfidenceFactor] = {}
            for m in measures:
                contribs = acc.contributions.get(m, [])
                agg = schema.measure(m).aggregate
                values[m] = agg.combine_all(v for v, _ in contribs)
                confidences[m] = aggregator.combine_all(cf for _, cf in contribs)
            rows.append(
                MVFactRow(
                    coordinates=dict(coord_items),
                    t=t,
                    mode=mode.label,
                    values=values,
                    confidences=confidences,
                    provenance=tuple(acc.provenance),
                )
            )
        rows.sort(key=lambda r: (r.t, tuple(sorted(r.coordinates.items()))))
        return rows

    # -- access ------------------------------------------------------------------

    @property
    def schema(self) -> "TemporalMultidimensionalSchema":
        """The schema this table was inferred from."""
        return self._schema

    @property
    def modes(self) -> ModeSet:
        """The presentation modes (Definition 10)."""
        return self._modes

    def is_stale(self) -> bool:
        """Whether the source schema mutated after this table was built.

        Inference is eager and the table is frozen afterwards, so any
        later ``add_fact`` / evolution on the live schema leaves this
        table describing an older state.  Version-aware readers
        (:class:`~repro.olap.cube.Cube`, the lazy aggregate lattice) call
        this before serving and re-infer when it answers ``True``;
        snapshot-pinned tables are built from immutable clones and are
        never stale.
        """
        return self._schema.version_token() != self.schema_token

    @property
    def unmapped(self) -> list[UnmappedFact]:
        """Facts with no route into some mode (red cells in the §5.2 UI)."""
        return list(self._unmapped)

    def slice(self, mode_label: str) -> list[MVFactRow]:
        """All rows of one presentation mode."""
        if mode_label not in self._rows_by_mode:
            if mode_label in self._modes:
                return []
            raise QueryError(f"unknown presentation mode {mode_label!r}")
        return list(self._rows_by_mode[mode_label])

    def rows(self) -> Iterator[MVFactRow]:
        """Iterate every materialized row across modes."""
        for mode_rows in self._rows_by_mode.values():
            yield from mode_rows

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows_by_mode.values())

    def lookup(
        self, coordinates: Mapping[str, str], t: Instant, mode_label: str
    ) -> MVFactRow | None:
        """The cell at exactly these coordinates/time/mode, if materialized."""
        key = (tuple(sorted(coordinates.items())), t, mode_label)
        return self._index.get(key)

    def cell_count(self) -> dict[str, int]:
        """Number of materialized cells per mode (storage-redundancy bench)."""
        return {label: len(rows) for label, rows in self._rows_by_mode.items()}
