"""Workloads: the paper's case study and synthetic evolution generators."""

from .case_study import (
    CaseStudy,
    build_case_study,
    build_two_measure_case_study,
    organization_table,
    fact_snapshot_table,
)
from .generator import (
    EvolvingWorkload,
    TwoDimWorkloadConfig,
    WorkloadConfig,
    generate_two_dim_workload,
    generate_workload,
)

__all__ = [
    "CaseStudy",
    "build_case_study",
    "build_two_measure_case_study",
    "organization_table",
    "fact_snapshot_table",
    "WorkloadConfig",
    "EvolvingWorkload",
    "generate_workload",
    "TwoDimWorkloadConfig",
    "generate_two_dim_workload",
]
