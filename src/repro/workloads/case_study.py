"""The paper's running case study (§2.1): an institution restructuring.

The multidimensional schema has a fact table with the measure *Amount*, a
Time dimension with hierarchy ``{year}``, and an *Organization* dimension
with hierarchy ``{division > department}``.  Two evolutions happen:

* in 2002, **Dpt.Smith is reclassified** from the Sales division to R&D
  (Tables 1-2) — the conceptual model keeps one member version and changes
  its temporal relationships;
* in 2003, **Dpt.Jones is split** into Dpt.Bill (40 %) and Dpt.Paul (60 %)
  (Table 7, Example 6) — the split excludes Jones, inserts Bill/Paul and
  associates mapping relationships (forward ``x → 0.4x`` / ``x → 0.6x``
  approximated, reverse identity exact).

Fact data follows Table 3 exactly.  The resulting schema yields three
structure versions (2001 / 2002 / 2003-Now) and four presentation modes
(tcm + three), against which the paper's Q1/Q2 result tables (Tables 4-6
and 8-10) are reproduced by the integration tests and the benchmark
harness.

:func:`build_two_measure_case_study` is the §5.2 variant with *Turnover*
and *Profit* measures and per-measure split factors (60/40 and 80/20) —
the source of the Table 12 mapping-relations extract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    EvolutionManager,
    Instant,
    Measure,
    MemberVersion,
    Interval,
    NOW,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    ym,
)

__all__ = [
    "CaseStudy",
    "build_case_study",
    "build_two_measure_case_study",
    "organization_table",
    "fact_snapshot_table",
    "fact_instant",
]

ORG = "org"
"""Dimension id of the Organization dimension."""

DIVISION = "Division"
DEPARTMENT = "Department"


def fact_instant(year: int) -> Instant:
    """The chronon a yearly fact is recorded at (mid-year, month 6).

    The paper records facts per year while member validity is monthly
    ("01/2001"); anchoring yearly facts mid-year keeps every Table 3 row
    inside its member versions' valid times.
    """
    return ym(year, 6)


@dataclass
class CaseStudy:
    """A built case study: the schema plus the evolution manager that
    applied the §2.1 changes (its journal holds the operator trace)."""

    schema: TemporalMultidimensionalSchema
    manager: EvolutionManager

    @property
    def org(self) -> TemporalDimension:
        """The Organization dimension."""
        return self.schema.dimension(ORG)


def _base_schema(measures: list[Measure]) -> tuple[TemporalMultidimensionalSchema, EvolutionManager]:
    org = TemporalDimension(ORG, "Organization")
    schema = TemporalMultidimensionalSchema([org], measures)
    start = ym(2001, 1)

    org.add_member(
        MemberVersion("sales", "Sales", Interval(start, NOW), level=DIVISION)
    )
    org.add_member(MemberVersion("rd", "R&D", Interval(start, NOW), level=DIVISION))
    org.add_member(
        MemberVersion("jones", "Dpt.Jones", Interval(start, NOW), level=DEPARTMENT)
    )
    org.add_member(
        MemberVersion("smith", "Dpt.Smith", Interval(start, NOW), level=DEPARTMENT)
    )
    org.add_member(
        MemberVersion("brian", "Dpt.Brian", Interval(start, NOW), level=DEPARTMENT)
    )
    org.add_relationship(
        TemporalRelationship("jones", "sales", Interval(start, NOW))
    )
    org.add_relationship(
        TemporalRelationship("smith", "sales", Interval(start, NOW))
    )
    org.add_relationship(TemporalRelationship("brian", "rd", Interval(start, NOW)))

    manager = EvolutionManager(schema)
    return schema, manager


def _apply_evolutions(
    manager: EvolutionManager,
    *,
    split_shares_bill,
    split_shares_paul,
) -> None:
    # 2002: Smith's department is reorganized and moved into R&D (Table 2).
    manager.reclassify_member(
        ORG,
        "smith",
        ym(2002, 1),
        old_parents=["sales"],
        new_parents=["rd"],
    )
    # 2003: Jones's department is split into Bill's and Paul's (Table 7).
    manager.split_member(
        ORG,
        "jones",
        {
            "bill": ("Dpt.Bill", split_shares_bill),
            "paul": ("Dpt.Paul", split_shares_paul),
        },
        ym(2003, 1),
    )


def build_case_study(*, with_facts: bool = True) -> CaseStudy:
    """Build the §2.1 case study with the single *amount* measure.

    Returns a schema whose consistent fact table is exactly Table 3 and
    whose evolutions (Smith reclassified in 2002, Jones split 40/60 in
    2003) were applied through the evolution operators.  With
    ``with_facts=False`` only the evolving structure is built — the
    warehouse-pipeline example loads Table 3 through the ETL tier instead.
    """
    schema, manager = _base_schema([Measure("amount", SUM)])
    _apply_evolutions(
        manager, split_shares_bill=0.4, split_shares_paul=0.6
    )
    if not with_facts:
        schema.validate()
        return CaseStudy(schema=schema, manager=manager)

    # Table 3: the snapshot of data for years 2001-2003.
    table3 = [
        (2001, "jones", 100.0),
        (2001, "smith", 50.0),
        (2001, "brian", 100.0),
        (2002, "jones", 100.0),
        (2002, "smith", 100.0),
        (2002, "brian", 50.0),
        (2003, "bill", 150.0),
        (2003, "paul", 50.0),
        (2003, "smith", 110.0),
        (2003, "brian", 40.0),
    ]
    for year, dept, amount in table3:
        schema.add_fact({ORG: dept}, fact_instant(year), amount=amount)
    schema.validate()
    return CaseStudy(schema=schema, manager=manager)


def build_two_measure_case_study() -> CaseStudy:
    """The §5.2 prototype variant: *turnover* (m1) and *profit* (m2).

    The Jones split uses per-measure factors — 60 % of turnover and 80 %
    of profit to Paul, 40 % and 20 % to Bill — which is exactly the
    mapping-relations extract of Table 12.
    """
    schema, manager = _base_schema(
        [Measure("turnover", SUM), Measure("profit", SUM)]
    )
    _apply_evolutions(
        manager,
        split_shares_bill={"turnover": 0.4, "profit": 0.2},
        split_shares_paul={"turnover": 0.6, "profit": 0.8},
    )
    facts = [
        (2001, "jones", 100.0, 20.0),
        (2001, "smith", 50.0, 10.0),
        (2001, "brian", 100.0, 30.0),
        (2002, "jones", 100.0, 25.0),
        (2002, "smith", 100.0, 20.0),
        (2002, "brian", 50.0, 15.0),
        (2003, "bill", 150.0, 30.0),
        (2003, "paul", 50.0, 10.0),
        (2003, "smith", 110.0, 22.0),
        (2003, "brian", 40.0, 12.0),
    ]
    for year, dept, turnover, profit in facts:
        schema.add_fact(
            {ORG: dept}, fact_instant(year), turnover=turnover, profit=profit
        )
    schema.validate()
    return CaseStudy(schema=schema, manager=manager)


def organization_table(study: CaseStudy, year: int) -> set[tuple[str, str]]:
    """The Organization dimension as the paper prints it (Tables 1, 2, 7):
    a set of ``(division name, department name)`` pairs valid in ``year``."""
    snap = study.org.at(fact_instant(year))
    rows: set[tuple[str, str]] = set()
    for dept_id in snap.levels().get(DEPARTMENT, []):
        for parent_id in snap.parents(dept_id):
            rows.add((snap.member(parent_id).name, snap.member(dept_id).name))
    return rows


def fact_snapshot_table(study: CaseStudy) -> list[tuple[int, str, str, float]]:
    """Table 3 regenerated from the consistent fact table: rows of
    ``(year, division, department, amount)`` in insertion order."""
    rows: list[tuple[int, str, str, float]] = []
    for fact in study.schema.facts:
        snap = study.org.at(fact.t)
        dept = fact.coordinate(ORG)
        division = snap.member(snap.parents(dept)[0]).name
        measure = study.schema.measure_names[0]
        rows.append(
            (fact.t // 12, division, snap.member(dept).name, fact.value(measure))
        )
    return rows
