"""Seeded synthetic workloads: evolving dimensions plus fact streams.

The paper's evaluation is a worked case study; its prose claims (storage
redundancy of full replication, the cost of mapped presentations, the
limits of SCD baselines) need *parameterized* workloads to be measured.
:func:`generate_workload` builds an organization-like schema of configurable
size, applies a configurable number of evolution operations (splits, merges,
reclassifications, transformations, creations, deletions) through the
public :class:`~repro.core.EvolutionManager`, and loads a yearly fact
stream — all driven by a seeded :class:`random.Random`, so every benchmark
run is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    NOW,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    ym,
)

__all__ = [
    "WorkloadConfig",
    "EvolvingWorkload",
    "generate_workload",
    "TwoDimWorkloadConfig",
    "generate_two_dim_workload",
]

ORG = "org"
DIVISION = "Division"
DEPARTMENT = "Department"


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic evolving workload.

    ``*_per_year`` counts apply from the second year on (the first year is
    the initial structure).  All randomness flows from ``seed``.
    """

    seed: int = 7
    n_divisions: int = 3
    n_departments: int = 12
    start_year: int = 2000
    n_years: int = 4
    splits_per_year: int = 1
    merges_per_year: int = 1
    reclassifications_per_year: int = 1
    transforms_per_year: int = 0
    creations_per_year: int = 0
    deletions_per_year: int = 0
    facts_per_department_per_year: int = 1
    amount_low: float = 10.0
    amount_high: float = 200.0


@dataclass
class EvolvingWorkload:
    """A generated workload: schema, manager and the applied event log."""

    config: "WorkloadConfig | TwoDimWorkloadConfig"
    schema: TemporalMultidimensionalSchema
    manager: EvolutionManager
    events: list[tuple[int, str, str]] = field(default_factory=list)

    @property
    def org(self) -> TemporalDimension:
        """The organization-like dimension (single-dimension workloads)."""
        return self.schema.dimension(ORG)

    def fact_instant(self, year: int) -> int:
        """The chronon yearly facts are recorded at (mid-year)."""
        return ym(year, 6)


def generate_workload(config: WorkloadConfig = WorkloadConfig()) -> EvolvingWorkload:
    """Build a seeded evolving workload per ``config``.

    The first year establishes ``n_divisions`` divisions and
    ``n_departments`` departments; each following year applies the
    configured evolution mix at January, then facts are loaded mid-year
    for every department alive at that point.
    """
    rng = random.Random(config.seed)
    org = TemporalDimension(ORG, "Organization")
    schema = TemporalMultidimensionalSchema([org], [Measure("amount", SUM)])
    start = ym(config.start_year, 1)

    divisions = [f"div{i}" for i in range(config.n_divisions)]
    for div in divisions:
        org.add_member(
            MemberVersion(div, div.upper(), Interval(start, NOW), level=DIVISION)
        )
    live: list[str] = []
    counter = 0
    for i in range(config.n_departments):
        dept = f"dept{i}"
        counter = i + 1
        org.add_member(
            MemberVersion(dept, f"Dept-{i}", Interval(start, NOW), level=DEPARTMENT)
        )
        org.add_relationship(
            TemporalRelationship(dept, rng.choice(divisions), Interval(start, NOW))
        )
        live.append(dept)

    manager = EvolutionManager(schema)
    workload = EvolvingWorkload(config=config, schema=schema, manager=manager)
    born: dict[str, int] = {dept: start for dept in live}

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def eligible(t: int) -> list[str]:
        """Members that existed before ``t`` (a member created at ``t`` by
        an earlier operation this year cannot be excluded again at ``t``)."""
        return [dept for dept in live if born[dept] < t]

    for year in range(config.start_year + 1, config.start_year + config.n_years):
        t = ym(year, 1)
        for _ in range(config.splits_per_year):
            candidates = eligible(t)
            if not candidates:
                break
            source = rng.choice(candidates)
            share = round(rng.uniform(0.2, 0.8), 2)
            a, b = fresh("dept"), fresh("dept")
            manager.split_member(
                ORG,
                source,
                {
                    a: (f"Dept-{a}", share),
                    b: (f"Dept-{b}", round(1.0 - share, 2)),
                },
                t,
            )
            live.remove(source)
            live.extend([a, b])
            born[a] = born[b] = t
            workload.events.append((year, "split", source))
        for _ in range(config.merges_per_year):
            candidates = eligible(t)
            if len(candidates) < 2:
                break
            src_a, src_b = rng.sample(candidates, 2)
            merged = fresh("dept")
            manager.merge_members(
                ORG,
                [src_a, src_b],
                merged,
                f"Dept-{merged}",
                t,
                reverse_shares={src_a: 0.5, src_b: 0.5},
            )
            live.remove(src_a)
            live.remove(src_b)
            live.append(merged)
            born[merged] = t
            workload.events.append((year, "merge", f"{src_a}+{src_b}"))
        reclassified_this_year: set[str] = set()
        for _ in range(config.reclassifications_per_year):
            # A member reclassified at t already lost its t-1 parent edge;
            # reclassifying it again at the same instant is inconsistent.
            candidates = [
                d for d in eligible(t) if d not in reclassified_this_year
            ]
            if not candidates:
                break
            dept = rng.choice(candidates)
            snap = org.at(t - 1)
            parents = snap.parents(dept) if dept in snap else []
            if not parents:
                continue
            new_parent = rng.choice(divisions)
            if new_parent in parents:
                continue
            manager.reclassify_member(
                ORG, dept, t, old_parents=parents, new_parents=[new_parent]
            )
            reclassified_this_year.add(dept)
            workload.events.append((year, "reclassify", dept))
        for _ in range(config.transforms_per_year):
            candidates = eligible(t)
            if not candidates:
                break
            dept = rng.choice(candidates)
            renamed = fresh("dept")
            manager.transform_member(ORG, dept, renamed, f"Dept-{renamed}", t)
            live.remove(dept)
            live.append(renamed)
            born[renamed] = t
            workload.events.append((year, "transform", dept))
        for _ in range(config.creations_per_year):
            created = fresh("dept")
            manager.create_member(
                ORG,
                created,
                f"Dept-{created}",
                t,
                parents=[rng.choice(divisions)],
                level=DEPARTMENT,
            )
            live.append(created)
            born[created] = t
            workload.events.append((year, "create", created))
        for _ in range(config.deletions_per_year):
            candidates = eligible(t)
            if len(candidates) < 2 or len(live) < 2:
                break
            victim = rng.choice(candidates)
            manager.delete_member(ORG, victim, t)
            live.remove(victim)
            workload.events.append((year, "delete", victim))

    for year in range(config.start_year, config.start_year + config.n_years):
        # Spread the per-department facts over distinct months so the fact
        # table stays a function of (coordinates, t) — Definition 5.
        count = config.facts_per_department_per_year
        for k in range(count):
            if count == 1:
                month = 6  # matches fact_instant's mid-year anchor
            else:
                month = 1 + round(k * 11 / (count - 1))
            t = ym(year, month)
            snap = org.at(t)
            departments = [
                mvid
                for mvid in snap.leaves()
                if snap.member(mvid).level == DEPARTMENT
            ]
            for dept in departments:
                schema.add_fact(
                    {ORG: dept},
                    t,
                    amount=round(rng.uniform(config.amount_low, config.amount_high), 2),
                )
    return workload


@dataclass(frozen=True)
class TwoDimWorkloadConfig:
    """Parameters for a two-dimensional (product × store) workload.

    Both dimensions evolve independently: products split/merge per year,
    stores get reclassified between regions.  Facts are sampled on the
    cross product of live leaves with ``fact_density`` probability.
    """

    seed: int = 7
    n_categories: int = 3
    n_products: int = 9
    n_regions: int = 2
    n_stores: int = 6
    start_year: int = 2020
    n_years: int = 3
    product_splits_per_year: int = 1
    product_merges_per_year: int = 1
    store_reclassifications_per_year: int = 1
    fact_density: float = 0.6
    amount_low: float = 10.0
    amount_high: float = 500.0


def generate_two_dim_workload(
    config: TwoDimWorkloadConfig = TwoDimWorkloadConfig(),
) -> EvolvingWorkload:
    """Build a seeded two-dimensional evolving workload.

    Exercises the cross-dimension paths of the MultiVersion inference:
    each fact carries a coordinate per dimension, and mapped modes route
    (and compose confidences) along *both* axes.
    """
    rng = random.Random(config.seed)
    start = ym(config.start_year, 1)

    product = TemporalDimension("product", "Product")
    categories = [f"cat{i}" for i in range(config.n_categories)]
    for cat in categories:
        product.add_member(
            MemberVersion(cat, cat.upper(), Interval(start, NOW), level="Category")
        )
    live_products: list[str] = []
    for i in range(config.n_products):
        pid = f"prod{i}"
        product.add_member(
            MemberVersion(pid, f"Product-{i}", Interval(start, NOW), level="Product")
        )
        product.add_relationship(
            TemporalRelationship(pid, rng.choice(categories), Interval(start, NOW))
        )
        live_products.append(pid)

    store = TemporalDimension("store", "Store")
    regions = [f"reg{i}" for i in range(config.n_regions)]
    for reg in regions:
        store.add_member(
            MemberVersion(reg, reg.upper(), Interval(start, NOW), level="Region")
        )
    stores: list[str] = []
    for i in range(config.n_stores):
        sid = f"store{i}"
        store.add_member(
            MemberVersion(sid, f"Store-{i}", Interval(start, NOW), level="Store")
        )
        store.add_relationship(
            TemporalRelationship(sid, rng.choice(regions), Interval(start, NOW))
        )
        stores.append(sid)

    schema = TemporalMultidimensionalSchema(
        [product, store], [Measure("amount", SUM)]
    )
    manager = EvolutionManager(schema)
    workload = EvolvingWorkload(config=config, schema=schema, manager=manager)
    born: dict[str, int] = {pid: start for pid in live_products}
    counter = config.n_products

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"prod{counter}"

    for year in range(config.start_year + 1, config.start_year + config.n_years):
        t = ym(year, 1)
        eligible_products = [p for p in live_products if born[p] < t]
        for _ in range(config.product_splits_per_year):
            if not eligible_products:
                break
            source = rng.choice(eligible_products)
            eligible_products.remove(source)
            share = round(rng.uniform(0.3, 0.7), 2)
            a, b = fresh(), fresh()
            manager.split_member(
                "product",
                source,
                {a: (f"Product-{a}", share), b: (f"Product-{b}", round(1 - share, 2))},
                t,
            )
            live_products.remove(source)
            live_products.extend([a, b])
            born[a] = born[b] = t
            workload.events.append((year, "product-split", source))
        for _ in range(config.product_merges_per_year):
            if len(eligible_products) < 2:
                break
            pa, pb = rng.sample(eligible_products, 2)
            eligible_products.remove(pa)
            eligible_products.remove(pb)
            merged = fresh()
            manager.merge_members(
                "product", [pa, pb], merged, f"Product-{merged}", t,
                reverse_shares={pa: 0.5, pb: 0.5},
            )
            live_products.remove(pa)
            live_products.remove(pb)
            live_products.append(merged)
            born[merged] = t
            workload.events.append((year, "product-merge", f"{pa}+{pb}"))
        for _ in range(config.store_reclassifications_per_year):
            sid = rng.choice(stores)
            snap = store.at(t - 1)
            parents = snap.parents(sid) if sid in snap else []
            if not parents:
                continue
            new_region = rng.choice(regions)
            if new_region in parents:
                continue
            already_moved = any(
                rel.child == sid and rel.start == t
                for rel in store.relationships_of(sid)
            )
            if already_moved:
                continue
            manager.reclassify_member(
                "store", sid, t, old_parents=parents, new_parents=[new_region]
            )
            workload.events.append((year, "store-reclassify", sid))

    for year in range(config.start_year, config.start_year + config.n_years):
        t = ym(year, 6)
        product_snap = product.at(t)
        live_now = [
            p for p in product_snap.leaves()
            if product_snap.member(p).level == "Product"
        ]
        for pid in live_now:
            for sid in stores:
                if rng.random() > config.fact_density:
                    continue
                schema.add_fact(
                    {"product": pid, "store": sid},
                    t,
                    amount=round(
                        rng.uniform(config.amount_low, config.amount_high), 2
                    ),
                )
    return workload
