"""MVQL — a small multiversion query language.

The paper's related work (Mendelzon & Vaisman's TOLAP) shows why a
*textual* interface matters: the analyst must be able to say, per query,
which temporal interpretation they want.  MVQL is that interface for this
library — a tiny declarative language compiled onto the
:class:`~repro.core.query.QueryEngine`:

.. code-block:: sql

    SELECT amount BY year, org.Division                 -- consistent time
    SELECT amount BY year, org.Department IN MODE V2    -- mapped on 2002
    SELECT amount BY year, org.Division DURING 2001..2002
    RANK MODES FOR SELECT amount BY year, org.Department DURING 2002..2003
    SHOW MODES
    SHOW VERSIONS
    SHOW LEVELS org

Statements are case-insensitive on keywords; dimension and level names are
case-sensitive identifiers.  ``SELECT *`` selects every measure.  The
result of a ``SELECT`` is a :class:`~repro.core.query.ResultTable` (values
*and* confidence factors); ``RANK MODES FOR`` returns the §5.2 quality
ranking.
"""

from .errors import MVQLCompileError, MVQLError, MVQLSyntaxError
from .parser import parse
from .session import MVQLSession

__all__ = [
    "parse",
    "MVQLSession",
    "MVQLError",
    "MVQLSyntaxError",
    "MVQLCompileError",
]
