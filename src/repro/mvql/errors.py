"""MVQL error types."""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["MVQLError", "MVQLSyntaxError", "MVQLCompileError"]


class MVQLError(ReproError):
    """Base class of every MVQL error."""


class MVQLSyntaxError(MVQLError):
    """Raised by the lexer/parser on malformed statements."""


class MVQLCompileError(MVQLError):
    """Raised when a well-formed statement references unknown schema
    elements (measures, dimensions, levels, modes)."""
