"""MVQL compilation and execution.

:class:`MVQLSession` holds a MultiVersion fact table and executes MVQL
statements against it: ``SELECT`` statements compile onto
:class:`~repro.core.query.Query`, ``RANK MODES`` onto
:func:`~repro.core.quality.rank_modes`, ``SHOW`` statements onto schema
introspection.  Compilation validates every referenced measure, mode,
dimension and level against the schema with precise error messages.
"""

from __future__ import annotations

from repro.core.chronology import Interval, MONTH, QUARTER, YEAR, ym
from repro.core.multiversion import MultiVersionFactTable
from repro.core.quality import rank_modes
from repro.observability import runtime as _obs
from repro.core.query import (
    AttributeGroup,
    LevelFilter,
    LevelGroup,
    Query,
    QueryEngine,
    ResultTable,
    TimeGroup,
)

from .ast import (
    AttributeTerm,
    LevelTerm,
    RankModesStatement,
    SelectStatement,
    ShowLevelsStatement,
    ShowModesStatement,
    ShowVersionsStatement,
    TimeTerm,
)
from .errors import MVQLCompileError
from .parser import parse

__all__ = ["MVQLSession"]

_GRANULARITY = {"year": YEAR, "quarter": QUARTER, "month": MONTH}


class MVQLSession:
    """An interactive-style MVQL session over one MultiVersion fact table.

    ``explain=True`` attaches a
    :class:`~repro.observability.lineage.LineageRecorder` so every
    executed SELECT records per-cell provenance, readable afterwards via
    :meth:`explain_cell`.  ``slow_log`` attaches a
    :class:`~repro.observability.health.SlowQueryLog`; the session
    publishes each statement's text to it so engine-level slow records
    carry the MVQL that caused them.  ``cache`` attaches a
    :class:`~repro.cache.VersionedResultCache` (shared per warehouse when
    the session comes from a cursor) so repeated SELECTs over the same
    versions are served memoized; ``cache_policy_digest`` scopes entries
    to an RLS policy.
    """

    def __init__(
        self,
        mvft: MultiVersionFactTable,
        *,
        tracer=None,
        metrics=None,
        explain: bool = False,
        lineage=None,
        slow_log=None,
        cache=None,
        cache_policy_digest=None,
    ) -> None:
        self.mvft = mvft
        self.schema = mvft.schema
        self._tracer = tracer
        self._metrics = metrics
        if lineage is None and explain:
            from repro.observability.lineage import LineageRecorder

            lineage = LineageRecorder()
        self.lineage = lineage
        self.slow_log = slow_log
        self.engine = QueryEngine(
            mvft, tracer=tracer, metrics=metrics, lineage=lineage,
            slow_log=slow_log, cache=cache,
            cache_policy_digest=cache_policy_digest,
        )

    @classmethod
    def from_cursor(cls, cursor) -> "MVQLSession":
        """A session over a pinned snapshot version.

        ``cursor`` is a :class:`~repro.concurrency.cursor.SnapshotCursor`;
        the session reads the cursor's (cached) MultiVersion fact table,
        so its results are immune to concurrent evolution transactions —
        and shares the owning manager's versioned result cache with every
        other session on the same warehouse.
        """
        return cls(cursor.mvft, cache=getattr(cursor, "result_cache", None))

    @classmethod
    def as_of(cls, wal, target=None, **kwargs) -> "MVQLSession":
        """A session over a point-in-time snapshot of a journaled schema.

        ``wal`` is a write-ahead journal (or its path) and ``target`` an
        LSN, a restore-point name, or ``None`` for the journal head; the
        snapshot is materialized once via
        :func:`repro.robustness.pitr.open_as_of` and the session queries
        it — "what did this cube look like before Tuesday's reorg?".
        Remaining keyword arguments go to the constructor.
        """
        from repro.robustness.pitr import open_as_of

        return cls(open_as_of(wal, target).mvft, **kwargs)

    # -- compilation -----------------------------------------------------------

    def compile_select(self, statement: SelectStatement) -> Query:
        """Compile a SELECT AST into a core query, validating names."""
        measures = statement.measures
        for measure in measures:
            if measure not in self.schema.measure_names:
                raise MVQLCompileError(
                    f"unknown measure {measure!r} "
                    f"(available: {self.schema.measure_names})"
                )
        mode = statement.mode if statement.mode is not None else "tcm"
        if mode not in self.mvft.modes:
            raise MVQLCompileError(
                f"unknown mode {mode!r} (available: {self.mvft.modes.labels})"
            )
        group_by = []
        for term in statement.group_by:
            if isinstance(term, TimeTerm):
                group_by.append(TimeGroup(_GRANULARITY[term.granularity]))
                continue
            if isinstance(term, AttributeTerm):
                if term.dimension not in self.schema.dimensions:
                    raise MVQLCompileError(
                        f"unknown dimension {term.dimension!r} "
                        f"(available: {self.schema.dimension_ids})"
                    )
                group_by.append(AttributeGroup(term.dimension, term.attribute))
                continue
            assert isinstance(term, LevelTerm)
            if term.dimension not in self.schema.dimensions:
                raise MVQLCompileError(
                    f"unknown dimension {term.dimension!r} "
                    f"(available: {self.schema.dimension_ids})"
                )
            if term.level not in self._levels_of(term.dimension):
                raise MVQLCompileError(
                    f"dimension {term.dimension!r} has no level {term.level!r} "
                    f"(available: {self._levels_of(term.dimension)})"
                )
            group_by.append(LevelGroup(term.dimension, term.level))
        time_range = None
        if statement.during is not None:
            first, last = statement.during
            time_range = Interval(ym(first, 1), ym(last, 12))
        filters = []
        for term in statement.filters:
            if term.dimension not in self.schema.dimensions:
                raise MVQLCompileError(
                    f"unknown dimension {term.dimension!r} in WHERE "
                    f"(available: {self.schema.dimension_ids})"
                )
            if term.level not in self._levels_of(term.dimension):
                raise MVQLCompileError(
                    f"dimension {term.dimension!r} has no level {term.level!r} "
                    f"in WHERE (available: {self._levels_of(term.dimension)})"
                )
            filters.append(
                LevelFilter(term.dimension, term.level, term.values)
            )
        return Query(
            mode=mode,
            group_by=tuple(group_by),
            measures=measures,
            time_range=time_range,
            level_filters=tuple(filters),
        )

    def _levels_of(self, did: str) -> list[str]:
        levels: list[str] = []
        for mode in self.mvft.modes.version_modes:
            version = mode.version
            assert version is not None
            snap = version.dimension(did).at(version.valid_time.start)
            for level in snap.levels():
                if level not in levels:
                    levels.append(level)
        return levels

    # -- execution ----------------------------------------------------------------

    def execute(self, text: str):
        """Parse and execute one MVQL statement.

        Returns a :class:`ResultTable` for ``SELECT``, a list of
        ``(mode, quality, table)`` triples for ``RANK MODES``, and a list
        of descriptive strings for ``SHOW`` statements.  With tracing
        enabled every statement gets a ``mvql.statement`` span wrapping
        its compilation and execution.
        """
        tracer = self._tracer if self._tracer is not None else _obs.current_tracer()
        metrics = (
            self._metrics if self._metrics is not None else _obs.current_metrics()
        )
        slow = self.slow_log
        if slow is not None and slow.enabled:
            # Publish the statement text thread-locally so the engine's
            # slow-query record names the MVQL that caused it.
            with slow.statement(text):
                return self._execute_instrumented(text, tracer, metrics)
        return self._execute_instrumented(text, tracer, metrics)

    def _execute_instrumented(self, text: str, tracer, metrics):
        if not (tracer.enabled or metrics.enabled):
            return self._dispatch(parse(text))
        with tracer.span(
            "mvql.statement", attributes={"statement": " ".join(text.split())}
        ) as span:
            statement = parse(text)
            kind = type(statement).__name__
            span.set("kind", kind)
            result = self._dispatch(statement)
        metrics.counter("mvql.statements", {"kind": kind}).inc()
        return result

    def explain_cell(self, group, measure: str | None = None, *, mode=None):
        """The lineage of a cell from the last explained SELECT.

        ``group`` is the result row's group tuple (e.g. ``("2002",
        "Sales")``); see
        :meth:`~repro.observability.lineage.LineageRecorder.explain_cell`.
        """
        if self.lineage is None:
            raise MVQLCompileError(
                "this session records no lineage — build it with "
                "explain=True (or pass lineage=LineageRecorder())"
            )
        return self.lineage.explain_cell(group, measure, mode=mode)

    def _dispatch(self, statement):
        """Execute one parsed statement (the uninstrumented core)."""
        if isinstance(statement, SelectStatement):
            return self.engine.execute(self.compile_select(statement))
        if isinstance(statement, RankModesStatement):
            query = self.compile_select(statement.select)
            return rank_modes(self.engine, query)
        if isinstance(statement, ShowModesStatement):
            return [
                f"{mode.label}: {mode.describe()}" for mode in self.mvft.modes
            ]
        if isinstance(statement, ShowVersionsStatement):
            return [
                f"{mode.label}: {mode.version.valid_time!r} "
                f"(members per dimension: "
                + ", ".join(
                    f"{did}={len(mode.version.dimension(did).members)}"
                    for did in self.schema.dimension_ids
                )
                + ")"
                for mode in self.mvft.modes.version_modes
            ]
        if isinstance(statement, ShowLevelsStatement):
            did = statement.dimension
            if did not in self.schema.dimensions:
                raise MVQLCompileError(
                    f"unknown dimension {did!r} "
                    f"(available: {self.schema.dimension_ids})"
                )
            return self._levels_of(did)
        raise MVQLCompileError(f"unsupported statement {statement!r}")

    def execute_to_text(self, text: str) -> str:
        """Execute and render any statement's result as plain text."""
        result = self.execute(text)
        if isinstance(result, ResultTable):
            return result.to_text()
        if result and isinstance(result, list) and isinstance(result[0], tuple):
            lines = [
                f"{label:<6} Q = {quality:.3f}" for label, quality, _t in result
            ]
            return "\n".join(lines)
        return "\n".join(str(item) for item in result)
