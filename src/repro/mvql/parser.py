"""The MVQL recursive-descent parser.

Grammar (keywords case-insensitive)::

    statement   := select | rank | show
    select      := SELECT measures BY terms
                   [IN MODE name] [during] [WHERE filters]
    rank        := RANK MODES FOR select
    show        := SHOW MODES | SHOW VERSIONS | SHOW LEVELS ident
    measures    := '*' | ident (',' ident)*
    terms       := term (',' term)*
    term        := 'year' | 'quarter' | 'month' | ident '.' ident
                   | ident '@' ident
    during      := DURING NUMBER [ '..' NUMBER ]
    filters     := filter (AND filter)*
    filter      := ident '.' ident ('=' value | IN '(' value (',' value)* ')')
    value       := STRING | IDENT | NUMBER
"""

from __future__ import annotations

from .ast import (
    AttributeTerm,
    FilterTerm,
    GroupTerm,
    LevelTerm,
    RankModesStatement,
    SelectStatement,
    ShowLevelsStatement,
    ShowModesStatement,
    ShowVersionsStatement,
    Statement,
    TimeTerm,
)
from .errors import MVQLSyntaxError
from .lexer import Token, tokenize

__all__ = ["parse"]

_GRANULARITIES = {"year", "quarter", "month"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise MVQLSyntaxError(
                f"expected {wanted} at position {token.position}, "
                f"got {token.value or 'end of statement'!r}"
            )
        return self._advance()

    def _at_keyword(self, value: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value == value

    # -- grammar ------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._at_keyword("SELECT"):
            statement = self._parse_select()
        elif self._at_keyword("RANK"):
            statement = self._parse_rank()
        elif self._at_keyword("SHOW"):
            statement = self._parse_show()
        else:
            token = self._peek()
            raise MVQLSyntaxError(
                f"statement must start with SELECT, RANK or SHOW, got "
                f"{token.value or 'end of statement'!r}"
            )
        self._expect("EOF")
        return statement

    def _parse_select(self) -> SelectStatement:
        self._expect("KEYWORD", "SELECT")
        measures = self._parse_measures()
        self._expect("KEYWORD", "BY")
        group_by = self._parse_terms()
        mode: str | None = None
        during: tuple[int, int] | None = None
        filters: tuple[FilterTerm, ...] = ()
        while self._peek().kind == "KEYWORD" and self._peek().value in (
            "IN",
            "DURING",
            "WHERE",
        ):
            if self._at_keyword("IN"):
                if mode is not None:
                    raise MVQLSyntaxError("duplicate IN MODE clause")
                self._advance()
                self._expect("KEYWORD", "MODE")
                token = self._peek()
                if token.kind == "IDENT":
                    mode = self._advance().value
                else:
                    raise MVQLSyntaxError(
                        f"expected a mode name at position {token.position}"
                    )
            elif self._at_keyword("DURING"):
                if during is not None:
                    raise MVQLSyntaxError("duplicate DURING clause")
                self._advance()
                first = int(self._expect("NUMBER").value)
                last = first
                if self._peek().kind == "DOTDOT":
                    self._advance()
                    last = int(self._expect("NUMBER").value)
                if last < first:
                    raise MVQLSyntaxError(
                        f"DURING range {first}..{last} runs backwards"
                    )
                during = (first, last)
            else:
                if filters:
                    raise MVQLSyntaxError("duplicate WHERE clause")
                self._advance()
                filters = self._parse_filters()
        return SelectStatement(
            measures=measures,
            group_by=group_by,
            mode=mode,
            during=during,
            filters=filters,
        )

    def _parse_filters(self) -> tuple[FilterTerm, ...]:
        filters = [self._parse_filter()]
        while self._at_keyword("AND"):
            self._advance()
            filters.append(self._parse_filter())
        return tuple(filters)

    def _parse_filter(self) -> FilterTerm:
        dimension = self._expect("IDENT").value
        self._expect("DOT")
        level = self._expect("IDENT").value
        if self._peek().kind == "EQUALS":
            self._advance()
            return FilterTerm(dimension, level, (self._parse_value(),))
        if self._at_keyword("IN"):
            self._advance()
            self._expect("LPAREN")
            values = [self._parse_value()]
            while self._peek().kind == "COMMA":
                self._advance()
                values.append(self._parse_value())
            self._expect("RPAREN")
            return FilterTerm(dimension, level, tuple(values))
        token = self._peek()
        raise MVQLSyntaxError(
            f"expected '=' or IN (...) after {dimension}.{level} at "
            f"position {token.position}"
        )

    def _parse_value(self) -> str:
        token = self._peek()
        if token.kind in ("STRING", "IDENT", "NUMBER"):
            return self._advance().value
        raise MVQLSyntaxError(
            f"expected a member name at position {token.position}"
        )

    def _parse_measures(self) -> tuple[str, ...]:
        if self._peek().kind == "STAR":
            self._advance()
            return ()
        measures = [self._expect("IDENT").value]
        while self._peek().kind == "COMMA":
            self._advance()
            measures.append(self._expect("IDENT").value)
        return tuple(measures)

    def _parse_terms(self) -> tuple[GroupTerm, ...]:
        terms = [self._parse_term()]
        while self._peek().kind == "COMMA":
            self._advance()
            terms.append(self._parse_term())
        return tuple(terms)

    def _parse_term(self) -> GroupTerm:
        token = self._expect("IDENT")
        if self._peek().kind == "DOT":
            self._advance()
            level = self._expect("IDENT").value
            return LevelTerm(dimension=token.value, level=level)
        if self._peek().kind == "AT":
            self._advance()
            attribute = self._expect("IDENT").value
            return AttributeTerm(dimension=token.value, attribute=attribute)
        if token.value.lower() in _GRANULARITIES:
            return TimeTerm(granularity=token.value.lower())
        raise MVQLSyntaxError(
            f"group term {token.value!r} is neither a time granularity "
            f"(year/quarter/month), a dimension.Level reference, nor a "
            f"dimension@attribute reference"
        )

    def _parse_rank(self) -> RankModesStatement:
        self._expect("KEYWORD", "RANK")
        self._expect("KEYWORD", "MODES")
        self._expect("KEYWORD", "FOR")
        select = self._parse_select()
        if select.mode is not None:
            raise MVQLSyntaxError(
                "RANK MODES runs the query in every mode; drop the IN MODE clause"
            )
        return RankModesStatement(select=select)

    def _parse_show(self) -> Statement:
        self._expect("KEYWORD", "SHOW")
        token = self._peek()
        if self._at_keyword("MODES"):
            self._advance()
            return ShowModesStatement()
        if self._at_keyword("VERSIONS"):
            self._advance()
            return ShowVersionsStatement()
        if self._at_keyword("LEVELS"):
            self._advance()
            dimension = self._expect("IDENT").value
            return ShowLevelsStatement(dimension=dimension)
        raise MVQLSyntaxError(
            f"SHOW expects MODES, VERSIONS or LEVELS, got {token.value!r}"
        )


def parse(text: str) -> Statement:
    """Parse one MVQL statement into its AST."""
    return _Parser(tokenize(text)).parse_statement()
