"""MVQL abstract syntax trees."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Statement",
    "GroupTerm",
    "TimeTerm",
    "LevelTerm",
    "AttributeTerm",
    "FilterTerm",
    "SelectStatement",
    "RankModesStatement",
    "ShowModesStatement",
    "ShowVersionsStatement",
    "ShowLevelsStatement",
]


class Statement:
    """Base class of every parsed MVQL statement."""


class GroupTerm:
    """Base class of the BY-clause terms."""


@dataclass(frozen=True)
class TimeTerm(GroupTerm):
    """A time bucket term: ``year``, ``quarter`` or ``month``."""

    granularity: str  # "year" | "quarter" | "month"


@dataclass(frozen=True)
class LevelTerm(GroupTerm):
    """A ``dimension.Level`` term."""

    dimension: str
    level: str


@dataclass(frozen=True)
class AttributeTerm(GroupTerm):
    """A ``dimension@attribute`` term: group by a member attribute."""

    dimension: str
    attribute: str


@dataclass(frozen=True)
class FilterTerm:
    """One WHERE condition: ``dimension.Level = value`` or
    ``dimension.Level IN (v1, v2, ...)``."""

    dimension: str
    level: str
    values: tuple[str, ...]


@dataclass(frozen=True)
class SelectStatement(Statement):
    """``SELECT measures BY terms [IN MODE m] [DURING y[..y]] [WHERE ...]``.

    ``measures`` empty means ``*`` (every schema measure); ``mode`` is
    ``None`` for the temporally consistent default; ``during`` is a
    ``(first year, last year)`` pair or ``None``; ``filters`` are the
    AND-ed WHERE conditions.
    """

    measures: tuple[str, ...]
    group_by: tuple[GroupTerm, ...]
    mode: str | None = None
    during: tuple[int, int] | None = None
    filters: tuple[FilterTerm, ...] = ()


@dataclass(frozen=True)
class RankModesStatement(Statement):
    """``RANK MODES FOR <select>`` — §5.2 quality ranking."""

    select: SelectStatement


@dataclass(frozen=True)
class ShowModesStatement(Statement):
    """``SHOW MODES`` — list the temporal modes of presentation."""


@dataclass(frozen=True)
class ShowVersionsStatement(Statement):
    """``SHOW VERSIONS`` — list structure versions with their spans."""


@dataclass(frozen=True)
class ShowLevelsStatement(Statement):
    """``SHOW LEVELS <dimension>`` — list a dimension's levels."""

    dimension: str
