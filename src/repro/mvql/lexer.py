"""The MVQL tokenizer.

Token kinds: ``KEYWORD`` (case-insensitive reserved words), ``IDENT``,
``NUMBER`` (integer literals — years), ``STRING`` (single- or
double-quoted member names such as ``'Dpt.Jones'``) and the punctuation
``COMMA``, ``DOT``, ``DOTDOT``, ``STAR``, ``EQUALS``, ``AT``, ``LPAREN``,
``RPAREN``.  Whitespace separates tokens; ``--`` starts a comment running
to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import MVQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT",
    "BY",
    "IN",
    "MODE",
    "DURING",
    "WHERE",
    "AND",
    "SHOW",
    "MODES",
    "VERSIONS",
    "LEVELS",
    "RANK",
    "FOR",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.value!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-&"


def tokenize(text: str) -> list[Token]:
    """Tokenize one MVQL statement.

    Raises :class:`MVQLSyntaxError` on characters outside the language.
    """
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if text.startswith("..", i):
            tokens.append(Token("DOTDOT", "..", i))
            i += 2
            continue
        if ch == ",":
            tokens.append(Token("COMMA", ",", i))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token("DOT", ".", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token("STAR", "*", i))
            i += 1
            continue
        if ch == "@":
            tokens.append(Token("AT", "@", i))
            i += 1
            continue
        if ch == "=":
            tokens.append(Token("EQUALS", "=", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token("LPAREN", "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token("RPAREN", ")", i))
            i += 1
            continue
        if ch in ("'", '"'):
            quote, start = ch, i
            i += 1
            closing = text.find(quote, i)
            if closing == -1:
                raise MVQLSyntaxError(f"unterminated string at position {start}")
            tokens.append(Token("STRING", text[i:closing], start))
            i = closing + 1
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            tokens.append(Token("NUMBER", text[start:i], start))
            continue
        if _is_ident_start(ch):
            start = i
            while i < n and _is_ident_char(text[i]):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        raise MVQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
