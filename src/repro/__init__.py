"""repro — a full reproduction of *Handling Evolutions in Multidimensional
Structures* (Body, Miquel, Bédard, Tchounikine — ICDE 2003).

The library implements the paper's temporal multidimensional model and the
whole stack around it:

* :mod:`repro.core` — the conceptual model: member versions, temporal
  dimensions, mapping relationships with confidence factors, structure
  versions, temporal modes of presentation, the MultiVersion fact table,
  evolution operators and the multiversion query engine.
* :mod:`repro.storage` — an in-memory relational engine (the warehouse
  server substrate the paper ran on SQL Server 2000).
* :mod:`repro.logical` — the §4 logical-level adaptation: TMP as a flat
  dimension, confidence factors as measures, star/snowflake/parent-child
  dimension lowerings and the FK-compatible Reclassify rewrite.
* :mod:`repro.warehouse` — the §5 physical architecture: ETL, the Temporal
  Data Warehouse, the MultiVersion Data Warehouse (full and delta storage)
  and the metadata layer (mapping-relations table, evolution descriptions).
* :mod:`repro.olap` — cube construction, OLAP operators (roll-up,
  drill-down, slice, dice, pivot) and the confidence-coloured front end.
* :mod:`repro.baselines` — Kimball SCD types 1/2/3, an updating
  (map-to-latest) model and an Eder-Koncilia-style structure-version model
  for the comparison benchmarks.
* :mod:`repro.workloads` — the paper's exact case study plus seeded
  synthetic evolution generators for scalability benches.

Quick start::

    from repro.workloads.case_study import build_case_study
    from repro.core import Query, QueryEngine, TimeGroup, LevelGroup, YEAR

    study = build_case_study()
    engine = QueryEngine(study.schema.multiversion_facts())
    q1 = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))
    for mode, table in engine.execute_all_modes(q1).items():
        report = mode + "\\n" + table.to_text()  # render however you like
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
