"""Column types of the relational substrate.

The engine stores plain Python values; column types validate and coerce on
insert so the logical layer (star/snowflake/parent-child lowerings) gets
database-like integrity without an external DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .errors import TypeCoercionError

__all__ = ["ColumnType", "INTEGER", "FLOAT", "TEXT", "BOOLEAN"]


@dataclass(frozen=True)
class ColumnType:
    """A column type: a name plus coercion/validation behaviour.

    ``coerce`` either returns a value of the canonical Python type or
    raises :class:`TypeCoercionError`.  ``None`` is handled by the schema
    layer (nullability), never by the type.
    """

    name: str

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type's canonical representation."""
        if self.name == "INTEGER":
            if isinstance(value, bool):
                raise TypeCoercionError(f"boolean {value!r} is not an INTEGER")
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise TypeCoercionError(f"cannot store {value!r} in an INTEGER column")
        if self.name == "FLOAT":
            if isinstance(value, bool):
                raise TypeCoercionError(f"boolean {value!r} is not a FLOAT")
            if isinstance(value, (int, float)):
                return float(value)
            raise TypeCoercionError(f"cannot store {value!r} in a FLOAT column")
        if self.name == "TEXT":
            if isinstance(value, str):
                return value
            raise TypeCoercionError(f"cannot store {value!r} in a TEXT column")
        if self.name == "BOOLEAN":
            if isinstance(value, bool):
                return value
            raise TypeCoercionError(f"cannot store {value!r} in a BOOLEAN column")
        raise TypeCoercionError(f"unknown column type {self.name!r}")

    def parse(self, text: str) -> Any:
        """Parse a CSV cell into this type (empty string handled upstream)."""
        if self.name == "INTEGER":
            return int(text)
        if self.name == "FLOAT":
            return float(text)
        if self.name == "BOOLEAN":
            if text in ("true", "True", "1"):
                return True
            if text in ("false", "False", "0"):
                return False
            raise TypeCoercionError(f"cannot parse {text!r} as BOOLEAN")
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


INTEGER = ColumnType("INTEGER")
FLOAT = ColumnType("FLOAT")
TEXT = ColumnType("TEXT")
BOOLEAN = ColumnType("BOOLEAN")
