"""An in-memory relational engine — the warehouse-server substrate.

The paper's prototype ran on SQL Server 2000; this package provides the
relational primitives that stack needs, from scratch: typed columns,
tables with primary keys and hash indexes, foreign-key enforcement, a
join/group/order query pipeline and CSV persistence.  The §4 logical
lowerings (:mod:`repro.logical`) and the §5 warehouse builders
(:mod:`repro.warehouse`) are built entirely on it.
"""

from .csvio import dump_database, dump_table, load_database, load_table
from .database import Database, DatabaseSnapshot, database_from_dict
from .errors import (
    ConstraintViolation,
    DuplicateKeyError,
    ForeignKeyViolation,
    QueryPlanError,
    StorageError,
    TableExistsError,
    TypeCoercionError,
    UnknownColumnError,
    UnknownTableError,
)
from .index import HashIndex
from .query import Q
from .schema import (
    Column,
    ForeignKey,
    TableSchema,
    table_schema_from_dict,
    table_schema_to_dict,
)
from .table import Table, TableSnapshot
from .types import BOOLEAN, FLOAT, INTEGER, TEXT, ColumnType

__all__ = [
    "Database",
    "DatabaseSnapshot",
    "database_from_dict",
    "Table",
    "TableSnapshot",
    "TableSchema",
    "table_schema_to_dict",
    "table_schema_from_dict",
    "Column",
    "ForeignKey",
    "HashIndex",
    "Q",
    "ColumnType",
    "INTEGER",
    "FLOAT",
    "TEXT",
    "BOOLEAN",
    "dump_table",
    "load_table",
    "dump_database",
    "load_database",
    "StorageError",
    "TableExistsError",
    "UnknownTableError",
    "UnknownColumnError",
    "TypeCoercionError",
    "ConstraintViolation",
    "DuplicateKeyError",
    "ForeignKeyViolation",
    "QueryPlanError",
]
