"""The row store: typed tables with keys, indexes and CRUD.

Rows are stored as dictionaries in an append-ordered slot list (deleted
slots become ``None``); a unique hash index enforces the primary key and
secondary indexes accelerate point lookups and equi-joins.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from .errors import DuplicateKeyError, StorageError
from .index import HashIndex
from .schema import TableSchema, table_schema_to_dict

__all__ = ["Table", "TableSnapshot"]

Predicate = Callable[[Mapping[str, Any]], bool]


class Table:
    """One relational table: schema, slots and indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._slots: list[dict[str, Any] | None] = []
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        if schema.primary_key:
            self._indexes[schema.primary_key] = HashIndex(
                schema.primary_key, unique=True
            )

    # -- index maintenance --------------------------------------------------------

    def create_index(self, columns: Iterable[str], *, unique: bool = False) -> None:
        """Declare a secondary index; existing rows are indexed immediately."""
        cols = tuple(columns)
        for c in cols:
            self.schema.column(c)
        if cols in self._indexes:
            raise StorageError(f"index over {cols} already exists on {self.name!r}")
        index = HashIndex(cols, unique=unique)
        for rid, row in enumerate(self._slots):
            if row is not None:
                index.add(rid, row)
        self._indexes[cols] = index

    def _index_for(self, columns: tuple[str, ...]) -> HashIndex | None:
        return self._indexes.get(columns)

    def index_specs(self) -> list[dict[str, Any]]:
        """Declared secondary indexes as JSON-ready specs.

        The primary-key index is excluded — it is derived from the schema
        and rebuilt automatically, so serializing it would be redundant.
        """
        return [
            {"columns": list(cols), "unique": index.unique}
            for cols, index in self._indexes.items()
            if cols != self.schema.primary_key
        ]

    # -- CRUD -----------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The table name."""
        return self.schema.name

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert a row (coerced against the schema); returns its row id."""
        coerced = self.schema.coerce_row(row)
        rid = len(self._slots)
        for index in self._indexes.values():
            # Validate unique constraints before touching any index so a
            # failed insert leaves the table unchanged.
            if index.unique and index.lookup(index.key_of(coerced)):
                raise DuplicateKeyError(
                    f"duplicate key {index.key_of(coerced)!r} in {self.name!r}"
                )
        self._slots.append(coerced)
        for index in self._indexes.values():
            index.add(rid, coerced)
        return rid

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk insert; returns the number of rows stored."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def get(self, key: tuple[Any, ...]) -> dict[str, Any] | None:
        """Point lookup by primary key."""
        if not self.schema.primary_key:
            raise StorageError(f"table {self.name!r} has no primary key")
        index = self._indexes[self.schema.primary_key]
        rids = index.lookup(key)
        if not rids:
            return None
        row = self._slots[rids[0]]
        assert row is not None
        return dict(row)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate live rows in insertion order (copies)."""
        for row in self._slots:
            if row is not None:
                yield dict(row)

    def items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(row id, row copy)`` pairs for live rows.

        Row ids are stable slot positions — the handle transactional undo
        (:mod:`repro.robustness.transactions`) uses to capture pre-images.
        """
        for rid, row in enumerate(self._slots):
            if row is not None:
                yield rid, dict(row)

    def row(self, rid: int) -> dict[str, Any]:
        """One live row by row id (copy)."""
        if rid < 0 or rid >= len(self._slots) or self._slots[rid] is None:
            raise StorageError(f"table {self.name!r} has no live row {rid}")
        row = self._slots[rid]
        assert row is not None
        return dict(row)

    def remove_row(self, rid: int) -> dict[str, Any]:
        """Remove one row by row id, returning its content.

        Used to compensate an insert during a rollback; the slot stays
        allocated (as after :meth:`delete`) so other row ids are unaffected.
        """
        if rid < 0 or rid >= len(self._slots) or self._slots[rid] is None:
            raise StorageError(f"table {self.name!r} has no live row {rid}")
        row = self._slots[rid]
        assert row is not None
        for index in self._indexes.values():
            index.remove(rid, row)
        self._slots[rid] = None
        return dict(row)

    def restore_row(self, rid: int, row: Mapping[str, Any]) -> None:
        """Put a previously captured row back into slot ``rid``.

        Compensates an update (overwriting the current content) or a delete
        (refilling the emptied slot) during a rollback, and replays
        journaled DML during warehouse recovery — the slot list grows (with
        ``None`` holes) when ``rid`` lies beyond it, so replayed inserts
        land at their recorded row ids.  The row is coerced against the
        schema and re-indexed; before any index is touched, every unique
        index is audited so a restore that would duplicate a key fails
        without corrupting the index.
        """
        if rid < 0:
            raise StorageError(f"table {self.name!r} has no slot {rid}")
        coerced = self.schema.coerce_row(row)
        for index in self._indexes.values():
            if index.unique:
                key = index.key_of(coerced)
                holders = [r for r in index.lookup(key) if r != rid]
                if holders:
                    raise DuplicateKeyError(
                        f"restoring row {rid} would duplicate key {key!r} "
                        f"in {self.name!r} (held by row {holders[0]})"
                    )
        while rid >= len(self._slots):
            self._slots.append(None)
        current = self._slots[rid]
        if current is not None:
            for index in self._indexes.values():
                index.remove(rid, current)
        self._slots[rid] = coerced
        for index in self._indexes.values():
            index.add(rid, coerced)

    @property
    def slot_count(self) -> int:
        """Allocated slots, live rows and holes included — the quantity
        byte-identical recovery compares, where :meth:`__len__` counts
        only live rows."""
        return len(self._slots)

    def truncate_slots(self, length: int) -> None:
        """Drop trailing slots so exactly ``length`` remain.

        Only holes may be trimmed — the point-in-time undo path uses this
        to un-allocate slots whose inserts it reversed, restoring the slot
        list a forward replay would have produced.  A live row in the
        trimmed range is refused: that would be data loss, not cleanup.
        """
        if length < 0 or length > len(self._slots):
            raise StorageError(
                f"cannot truncate {self.name!r} to {length} slots "
                f"(has {len(self._slots)})"
            )
        for rid in range(length, len(self._slots)):
            if self._slots[rid] is not None:
                raise StorageError(
                    f"cannot truncate {self.name!r} to {length} slots: "
                    f"row {rid} is live"
                )
        del self._slots[length:]

    def load_slots(self, slots: Iterable[Mapping[str, Any] | None]) -> None:
        """Install a dumped slot list (holes included) into an empty table.

        The restore path of warehouse recovery: rebuilds the exact slot
        layout a :meth:`dump` captured, trailing holes included, so row ids
        recorded in the journal stay valid for the DML replay that follows.
        """
        if self._slots:
            raise StorageError(
                f"load_slots needs an empty table; {self.name!r} has slots"
            )
        materialized = list(slots)
        for rid, row in enumerate(materialized):
            if row is not None:
                self.restore_row(rid, row)
        while len(self._slots) < len(materialized):
            self._slots.append(None)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.rows()

    def __len__(self) -> int:
        return sum(1 for row in self._slots if row is not None)

    def scan(self, predicate: Predicate | None = None) -> list[dict[str, Any]]:
        """Filtered scan (copies)."""
        if predicate is None:
            return list(self.rows())
        return [row for row in self.rows() if predicate(row)]

    def find(self, **equalities: Any) -> list[dict[str, Any]]:
        """Equality lookup, index-accelerated when an index matches.

        ``table.find(member="jones", mode="V2")`` uses an index over
        ``(member, mode)`` (or any declared permutation prefix match is not
        attempted — exact column-set match only), else falls back to a
        scan.
        """
        for c in equalities:
            self.schema.column(c)
        cols = tuple(sorted(equalities))
        for index_cols, index in self._indexes.items():
            if tuple(sorted(index_cols)) == cols:
                key = tuple(equalities[c] for c in index_cols)
                out = []
                for rid in index.lookup(key):
                    row = self._slots[rid]
                    if row is not None:
                        out.append(dict(row))
                return out
        return self.scan(
            lambda row: all(row[c] == v for c, v in equalities.items())
        )

    def update(
        self, predicate: Predicate, changes: Mapping[str, Any]
    ) -> int:
        """Update matching rows; returns the number updated."""
        for c in changes:
            self.schema.column(c)
        updated = 0
        for rid, row in enumerate(self._slots):
            if row is None or not predicate(row):
                continue
            new_row = dict(row)
            new_row.update(changes)
            coerced = self.schema.coerce_row(new_row)
            for index in self._indexes.values():
                if index.unique:
                    key = index.key_of(coerced)
                    existing = [r for r in index.lookup(key) if r != rid]
                    if existing:
                        raise DuplicateKeyError(
                            f"update would duplicate key {key!r} in {self.name!r}"
                        )
            for index in self._indexes.values():
                index.remove(rid, row)
                index.add(rid, coerced)
            self._slots[rid] = coerced
            updated += 1
        return updated

    def delete(self, predicate: Predicate) -> int:
        """Delete matching rows; returns the number removed."""
        removed = 0
        for rid, row in enumerate(self._slots):
            if row is None or not predicate(row):
                continue
            for index in self._indexes.values():
                index.remove(rid, row)
            self._slots[rid] = None
            removed += 1
        return removed

    # -- snapshots ---------------------------------------------------------------------

    def snapshot(self) -> "TableSnapshot":
        """A copy-on-write read view of the table's current rows.

        Every mutation of :class:`Table` *replaces* slot entries (``insert``
        appends, ``update``/``restore_row`` install fresh dicts, ``delete``
        nulls the slot) and never mutates a stored row dict in place, so a
        shallow copy of the slot list is a stable version: later writes to
        the live table are invisible to the snapshot, at the cost of one
        list copy — no row data is duplicated.
        """
        return TableSnapshot(
            self.schema.name,
            list(self._slots),
            schema=self.schema,
            indexes=self.index_specs(),
        )

    def dump(self) -> dict[str, Any]:
        """The table as a JSON-ready dict: schema, secondary-index specs
        and the raw slot list (holes as ``None``, so row ids survive a
        round trip through :meth:`load_slots`)."""
        return self.snapshot().dump()

    # -- projections -------------------------------------------------------------------

    def column_values(self, column: str) -> list[Any]:
        """All live values of one column, in row order."""
        self.schema.column(column)
        return [row[column] for row in self.rows()]

    def distinct(self, column: str) -> list[Any]:
        """Distinct values of one column, in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column_values(column):
            seen.setdefault(value, None)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {len(self)} rows)"


class TableSnapshot:
    """An immutable, point-in-time read view over a table's rows.

    Shares the row dicts of the source table (copy-on-write: the live table
    replaces rather than mutates them) and offers the read-side surface of
    :class:`Table` — iteration, :meth:`scan`, :meth:`find` (scan-based) —
    without any mutation entry point.
    """

    def __init__(
        self,
        name: str,
        slots: list[dict[str, Any] | None],
        *,
        schema: TableSchema | None = None,
        indexes: list[dict[str, Any]] | None = None,
    ) -> None:
        self.name = name
        self._slots = slots
        self.schema = schema
        self.indexes = list(indexes) if indexes is not None else []

    def dump(self) -> dict[str, Any]:
        """The snapshot as a JSON-ready dict (see :meth:`Table.dump`)."""
        if self.schema is None:
            raise StorageError(
                f"snapshot of {self.name!r} carries no schema to dump"
            )
        return {
            "schema": table_schema_to_dict(self.schema),
            "indexes": list(self.indexes),
            "slots": [
                dict(row) if row is not None else None for row in self._slots
            ],
        }

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate live rows in insertion order (copies)."""
        for row in self._slots:
            if row is not None:
                yield dict(row)

    def items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(row id, row copy)`` pairs for live rows."""
        for rid, row in enumerate(self._slots):
            if row is not None:
                yield rid, dict(row)

    def scan(self, predicate: Predicate | None = None) -> list[dict[str, Any]]:
        """Filtered scan (copies)."""
        if predicate is None:
            return list(self.rows())
        return [row for row in self.rows() if predicate(row)]

    def find(self, **equalities: Any) -> list[dict[str, Any]]:
        """Equality lookup by full scan (snapshots carry no indexes)."""
        return self.scan(
            lambda row: all(row.get(c) == v for c, v in equalities.items())
        )

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.rows()

    def __len__(self) -> int:
        return sum(1 for row in self._slots if row is not None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableSnapshot({self.name!r}, {len(self)} rows)"
