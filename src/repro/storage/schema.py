"""Table schemas: columns, keys and foreign keys."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .errors import StorageError, TypeCoercionError, UnknownColumnError
from .types import ColumnType

__all__ = [
    "Column",
    "ForeignKey",
    "TableSchema",
    "table_schema_to_dict",
    "table_schema_from_dict",
]


@dataclass(frozen=True)
class Column:
    """One column: name, type and nullability."""

    name: str
    type: ColumnType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("column needs a non-empty name")

    def coerce(self, value: Any) -> Any:
        """Coerce a value for this column, honouring nullability."""
        if value is None:
            if self.nullable:
                return None
            raise TypeCoercionError(f"column {self.name!r} is NOT NULL")
        return self.type.coerce(value)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: local columns referencing a parent table's key."""

    columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.parent_columns):
            raise StorageError(
                "foreign key column count mismatch: "
                f"{self.columns} vs {self.parent_columns}"
            )


@dataclass(frozen=True)
class TableSchema:
    """The schema of one table.

    ``primary_key`` names the key columns (may be empty for heap tables —
    e.g. fact tables keyed by their full coordinates are usually declared
    with an explicit composite key instead).
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _index: Mapping[str, Column] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("table needs a non-empty name")
        if not self.columns:
            raise StorageError(f"table {self.name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column names in table {self.name!r}")
        index = {c.name: c for c in self.columns}
        for key_col in self.primary_key:
            if key_col not in index:
                raise UnknownColumnError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )
            if index[key_col].nullable:
                raise StorageError(
                    f"primary key column {key_col!r} of {self.name!r} must be NOT NULL"
                )
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in index:
                    raise UnknownColumnError(
                        f"foreign key column {col!r} not in table {self.name!r}"
                    )
        object.__setattr__(self, "_index", index)

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def coerce_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and coerce a full row against the schema.

        Missing nullable columns default to ``None``; missing NOT NULL
        columns and unknown columns are errors.
        """
        unknown = set(row) - set(self._index)
        if unknown:
            raise UnknownColumnError(
                f"table {self.name!r} has no columns {sorted(unknown)}"
            )
        out: dict[str, Any] = {}
        for col in self.columns:
            out[col.name] = col.coerce(row.get(col.name))
        return out

    def key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...] | None:
        """The primary-key tuple of a coerced row (``None`` if keyless)."""
        if not self.primary_key:
            return None
        return tuple(row[c] for c in self.primary_key)


def table_schema_to_dict(schema: TableSchema) -> dict[str, Any]:
    """Serialize a table schema to a JSON-ready dict (WAL ``catalog``
    records and checkpoint database dumps)."""
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.type.name, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            {
                "columns": list(fk.columns),
                "parent_table": fk.parent_table,
                "parent_columns": list(fk.parent_columns),
            }
            for fk in schema.foreign_keys
        ],
    }


def table_schema_from_dict(payload: Mapping[str, Any]) -> TableSchema:
    """Rebuild a table schema from :func:`table_schema_to_dict`."""
    return TableSchema(
        name=payload["name"],
        columns=tuple(
            Column(c["name"], ColumnType(c["type"]), bool(c.get("nullable", False)))
            for c in payload["columns"]
        ),
        primary_key=tuple(payload.get("primary_key", ())),
        foreign_keys=tuple(
            ForeignKey(
                tuple(fk["columns"]),
                fk["parent_table"],
                tuple(fk["parent_columns"]),
            )
            for fk in payload.get("foreign_keys", ())
        ),
    )
