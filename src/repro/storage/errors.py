"""Exception hierarchy of the relational storage substrate."""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "StorageError",
    "TableExistsError",
    "UnknownTableError",
    "UnknownColumnError",
    "TypeCoercionError",
    "ConstraintViolation",
    "DuplicateKeyError",
    "ForeignKeyViolation",
    "QueryPlanError",
]


class StorageError(ReproError):
    """Base class of every storage-layer error."""


class TableExistsError(StorageError):
    """Raised when creating a table whose name is already taken."""


class UnknownTableError(StorageError):
    """Raised when referencing a table the database does not contain."""


class UnknownColumnError(StorageError):
    """Raised when referencing a column a table schema does not declare."""


class TypeCoercionError(StorageError):
    """Raised when a value cannot be coerced to its column's type."""


class ConstraintViolation(StorageError):
    """Base class for integrity-constraint violations."""


class DuplicateKeyError(ConstraintViolation):
    """Raised on a primary-key or unique-index collision."""


class ForeignKeyViolation(ConstraintViolation):
    """Raised when a row references a missing parent key."""


class QueryPlanError(StorageError):
    """Raised on malformed query-builder pipelines."""
