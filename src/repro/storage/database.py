"""The database catalog: named tables plus referential integrity.

A :class:`Database` owns tables and (optionally, per insert call) enforces
the foreign keys their schemas declare — enough relational behaviour for
the warehouse layer to build star, snowflake and parent-child schemas the
way the paper's prototype did on SQL Server.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.observability import runtime as _obs

from .errors import ForeignKeyViolation, TableExistsError, UnknownTableError
from .schema import Column, ForeignKey, TableSchema, table_schema_from_dict
from .table import Table, TableSnapshot

__all__ = ["Database", "DatabaseSnapshot", "database_from_dict"]


class Database:
    """An in-memory catalog of relational tables.

    ``fault_injector`` is an optional duck-typed hook (any object with a
    ``fire(point: str)`` method, e.g.
    :class:`repro.robustness.faults.FaultInjector`); the database fires the
    named fault points ``db.insert`` (before each checked insert) and
    ``db.insert_many.row`` (before each batch row) so robustness tests can
    provoke mid-write failures deterministically.
    """

    def __init__(
        self,
        name: str = "warehouse",
        *,
        fault_injector: Any = None,
        metrics: Any = None,
    ) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self.fault_injector = fault_injector
        self._metrics = metrics

    def _fire(self, point: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.fire(point)

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    # -- catalog -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[Column],
        *,
        primary_key: Iterable[str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> Table:
        """Create and register a table."""
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists in {self.name!r}")
        schema = TableSchema(
            name=name,
            columns=tuple(columns),
            primary_key=tuple(primary_key),
            foreign_keys=tuple(foreign_keys),
        )
        table = Table(schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(
                f"database {self.name!r} has no table {name!r}"
            ) from None

    def drop_table(self, name: str, *, check_references: bool = True) -> None:
        """Remove a table from the catalog.

        A table that other tables' foreign keys reference cannot be
        dropped: a dangling parent would make every later child insert fail
        deep inside FK checking with :class:`UnknownTableError`, so the
        dependency is refused up front with a clear error instead.
        ``check_references=False`` skips that guard — the point-in-time
        undo path drops tables in reverse journal order, where a parent
        may legitimately go before its (also doomed) children.
        """
        if name not in self._tables:
            raise UnknownTableError(f"database {self.name!r} has no table {name!r}")
        if check_references:
            for other_name, other in self._tables.items():
                if other_name == name:
                    continue
                for fk in other.schema.foreign_keys:
                    if fk.parent_table == name:
                        raise ForeignKeyViolation(
                            f"cannot drop table {name!r}: {other_name!r} still "
                            f"references it via foreign key {fk.columns}"
                        )
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Registered table names, in creation order."""
        return list(self._tables)

    def snapshot(self) -> "DatabaseSnapshot":
        """A copy-on-write read view over every table (see
        :meth:`Table.snapshot`): one container copy per table, no row
        duplication, immune to later writes on the live database."""
        return DatabaseSnapshot(
            self.name, {name: table.snapshot() for name, table in self._tables.items()}
        )

    def dump(self) -> dict[str, Any]:
        """The whole catalog as a JSON-ready dict.

        Each table carries its schema, secondary-index specs and raw slot
        list (holes included), so :func:`database_from_dict` rebuilds a
        byte-identical database — the payload WAL checkpoints embed for
        warehouse recovery.
        """
        return self.snapshot().dump()

    # -- integrity-checked writes -----------------------------------------------------

    def insert(
        self, table_name: str, row: Mapping[str, Any], *, check_fk: bool = True
    ) -> int:
        """Insert with foreign-key enforcement.

        Each foreign key of the table is checked against the parent table's
        current rows; ``None`` components opt out (SQL semantics).
        """
        table = self.table(table_name)
        self._fire("db.insert")
        if check_fk:
            coerced = table.schema.coerce_row(row)
            for fk in table.schema.foreign_keys:
                values = tuple(coerced[c] for c in fk.columns)
                if any(v is None for v in values):
                    continue
                parent = self.table(fk.parent_table)
                matches = parent.find(
                    **{pc: v for pc, v in zip(fk.parent_columns, values)}
                )
                if not matches:
                    raise ForeignKeyViolation(
                        f"{table_name}.{fk.columns} = {values!r} has no parent in "
                        f"{fk.parent_table}.{fk.parent_columns}"
                    )
        rid = table.insert(row)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("storage.rows_inserted", {"table": table_name}).inc()
        return rid

    def insert_many(
        self,
        table_name: str,
        rows: Iterable[Mapping[str, Any]],
        *,
        check_fk: bool = True,
    ) -> int:
        """Bulk insert with optional FK enforcement — all-or-nothing.

        Rows are applied in order (so a later row may satisfy its foreign
        key through an earlier row of the same batch), but any failure —
        FK violation, duplicate key, coercion error — rolls the whole batch
        back before re-raising: the table is left exactly as it was.
        """
        table = self.table(table_name)
        inserted: list[int] = []
        count = 0
        try:
            for row in rows:
                self._fire("db.insert_many.row")
                inserted.append(self.insert(table_name, row, check_fk=check_fk))
                count += 1
        except Exception:
            for rid in reversed(inserted):
                table.remove_row(rid)
            raise
        return count

    # -- introspection -------------------------------------------------------------------

    def row_counts(self) -> dict[str, int]:
        """``{table: row count}`` — the storage-size probe benches use."""
        return {name: len(table) for name, table in self._tables.items()}

    def total_rows(self) -> int:
        """Total live rows across tables."""
        return sum(self.row_counts().values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={self.table_names})"


class DatabaseSnapshot:
    """A point-in-time read view over a :class:`Database`'s tables."""

    def __init__(self, name: str, tables: dict[str, "TableSnapshot"]) -> None:
        self.name = name
        self._tables = tables

    def table(self, name: str) -> "TableSnapshot":
        """Look up a table snapshot by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(
                f"database snapshot {self.name!r} has no table {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Captured table names, in creation order."""
        return list(self._tables)

    def row_counts(self) -> dict[str, int]:
        """``{table: row count}`` at capture time."""
        return {name: len(table) for name, table in self._tables.items()}

    def total_rows(self) -> int:
        """Total live rows across captured tables."""
        return sum(self.row_counts().values())

    def dump(self) -> dict[str, Any]:
        """The captured catalog as a JSON-ready dict (see
        :meth:`Database.dump`)."""
        return {
            "name": self.name,
            "tables": [table.dump() for table in self._tables.values()],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatabaseSnapshot({self.name!r}, tables={self.table_names})"


def database_from_dict(payload: Mapping[str, Any]) -> Database:
    """Rebuild a :class:`Database` from a :meth:`Database.dump` payload.

    Tables are recreated in dump order with their schemas and secondary
    indexes, then their slot lists are installed verbatim — row ids (slot
    positions, holes included) survive the round trip, which is what lets
    warehouse recovery replay journaled DML records against the rebuilt
    database.
    """
    db = Database(payload.get("name", "warehouse"))
    for table_dump in payload.get("tables", ()):
        schema = table_schema_from_dict(table_dump["schema"])
        table = db.create_table(
            schema.name,
            schema.columns,
            primary_key=schema.primary_key,
            foreign_keys=schema.foreign_keys,
        )
        for spec in table_dump.get("indexes", ()):
            table.create_index(spec["columns"], unique=bool(spec.get("unique")))
        table.load_slots(table_dump.get("slots", ()))
    return db
