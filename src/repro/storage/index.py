"""Hash indexes over table columns.

The engine keeps a unique index on each table's primary key and lets
callers declare secondary (non-unique) indexes; point lookups and
equi-joins use them instead of scanning.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .errors import DuplicateKeyError, StorageError

__all__ = ["HashIndex"]


class HashIndex:
    """A hash index mapping column-value tuples to row ids.

    ``unique`` indexes reject duplicate keys (primary keys); non-unique
    indexes accumulate row-id lists (secondary lookup structures).
    """

    def __init__(self, columns: Iterable[str], *, unique: bool = False) -> None:
        self.columns = tuple(columns)
        if not self.columns:
            raise StorageError("an index needs at least one column")
        self.unique = unique
        self._buckets: dict[tuple[Any, ...], list[int]] = {}

    def key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        """The index key of a row."""
        return tuple(row[c] for c in self.columns)

    def add(self, rid: int, row: Mapping[str, Any]) -> None:
        """Index a stored row by id."""
        key = self.key_of(row)
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise DuplicateKeyError(
                f"duplicate key {key!r} on unique index over {self.columns}"
            )
        bucket.append(rid)

    def remove(self, rid: int, row: Mapping[str, Any]) -> None:
        """Drop a row id from the index (row deletes/updates)."""
        key = self.key_of(row)
        bucket = self._buckets.get(key, [])
        if rid in bucket:
            bucket.remove(rid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple[Any, ...]) -> list[int]:
        """Row ids stored under ``key`` (empty when absent)."""
        return list(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
