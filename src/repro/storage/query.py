"""A small relational query pipeline over tables.

:class:`Q` is a fluent builder: filter, hash-join, project, group and
order — the operations the warehouse layer needs to assemble and query
star/snowflake schemas.  Pipelines are lazy until :meth:`rows` executes.

Example::

    rows = (
        Q(db.table("fact"))
        .join(db.table("dim_org"), on=[("member", "member_id")])
        .where(lambda r: r["year"] == 2002)
        .group_by(["division"], aggregates={"total": ("sum", "amount")})
        .order_by(["division"])
        .rows()
    )
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from .errors import QueryPlanError
from .table import Table

__all__ = ["Q"]

Row = dict[str, Any]
Predicate = Callable[[Mapping[str, Any]], bool]

_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "sum": lambda values: sum(v for v in values if v is not None) if any(v is not None for v in values) else None,
    "min": lambda values: min((v for v in values if v is not None), default=None),
    "max": lambda values: max((v for v in values if v is not None), default=None),
    "count": lambda values: sum(1 for v in values if v is not None),
    "avg": lambda values: (
        (lambda known: sum(known) / len(known) if known else None)(
            [v for v in values if v is not None]
        )
    ),
    "first": lambda values: values[0] if values else None,
}


class Q:
    """A lazy relational pipeline over a table or row iterable."""

    def __init__(self, source: Table | Iterable[Mapping[str, Any]]) -> None:
        if isinstance(source, Table):
            self._source: Callable[[], list[Row]] = lambda: list(source.rows())
        else:
            materialized = [dict(r) for r in source]
            self._source = lambda: [dict(r) for r in materialized]
        self._steps: list[Callable[[list[Row]], list[Row]]] = []

    def _derive(self, step: Callable[[list[Row]], list[Row]]) -> "Q":
        clone = Q([])
        clone._source = self._source
        clone._steps = [*self._steps, step]
        return clone

    # -- operators ----------------------------------------------------------------

    def where(self, predicate: Predicate) -> "Q":
        """Keep rows matching ``predicate``."""
        return self._derive(lambda rows: [r for r in rows if predicate(r)])

    def select(self, columns: Sequence[str]) -> "Q":
        """Project to the named columns (missing columns are an error)."""
        cols = list(columns)

        def run(rows: list[Row]) -> list[Row]:
            out = []
            for r in rows:
                missing = [c for c in cols if c not in r]
                if missing:
                    raise QueryPlanError(f"projection references unknown {missing}")
                out.append({c: r[c] for c in cols})
            return out

        return self._derive(run)

    def extend(self, column: str, fn: Callable[[Mapping[str, Any]], Any]) -> "Q":
        """Add a computed column."""
        def run(rows: list[Row]) -> list[Row]:
            return [{**r, column: fn(r)} for r in rows]

        return self._derive(run)

    def join(
        self,
        other: Table | Iterable[Mapping[str, Any]],
        on: Sequence[tuple[str, str]],
        *,
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Q":
        """Hash join with another table/row set.

        ``on`` pairs ``(left column, right column)``.  ``how`` is
        ``"inner"`` or ``"left"`` (unmatched left rows keep ``None`` for
        right columns).  Right columns colliding with left names are
        renamed with ``suffix``.
        """
        if how not in ("inner", "left"):
            raise QueryPlanError(f"unsupported join type {how!r}")
        if not on:
            raise QueryPlanError("join needs at least one column pair")
        right_rows = (
            list(other.rows()) if isinstance(other, Table) else [dict(r) for r in other]
        )
        left_cols = [pair[0] for pair in on]
        right_cols = [pair[1] for pair in on]

        def run(rows: list[Row]) -> list[Row]:
            buckets: dict[tuple[Any, ...], list[Row]] = {}
            for rr in right_rows:
                missing = [c for c in right_cols if c not in rr]
                if missing:
                    raise QueryPlanError(f"join references unknown right {missing}")
                buckets.setdefault(tuple(rr[c] for c in right_cols), []).append(rr)
            right_names = set()
            for rr in right_rows:
                right_names.update(rr)
            out: list[Row] = []
            for lr in rows:
                missing = [c for c in left_cols if c not in lr]
                if missing:
                    raise QueryPlanError(f"join references unknown left {missing}")
                matches = buckets.get(tuple(lr[c] for c in left_cols), [])
                if not matches and how == "left":
                    merged = dict(lr)
                    for name in right_names:
                        key = name if name not in lr else name + suffix
                        merged.setdefault(key, None)
                    out.append(merged)
                    continue
                for rr in matches:
                    merged = dict(lr)
                    for name, value in rr.items():
                        key = name if name not in lr else name + suffix
                        merged[key] = value
                    out.append(merged)
            return out

        return self._derive(run)

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Mapping[str, tuple[str, str]],
    ) -> "Q":
        """Group rows and compute aggregates.

        ``aggregates`` maps output column names to ``(function, column)``
        with function one of ``sum/min/max/count/avg/first``.
        """
        key_cols = list(keys)
        for out_name, (fn, _col) in aggregates.items():
            if fn not in _AGGREGATES:
                raise QueryPlanError(f"unknown aggregate {fn!r} for {out_name!r}")

        def run(rows: list[Row]) -> list[Row]:
            groups: dict[tuple[Any, ...], list[Row]] = {}
            for r in rows:
                missing = [c for c in key_cols if c not in r]
                if missing:
                    raise QueryPlanError(f"group_by references unknown {missing}")
                groups.setdefault(tuple(r[c] for c in key_cols), []).append(r)
            out: list[Row] = []
            for key, members in groups.items():
                row: Row = dict(zip(key_cols, key))
                for out_name, (fn, col) in aggregates.items():
                    row[out_name] = _AGGREGATES[fn]([m.get(col) for m in members])
                out.append(row)
            return out

        return self._derive(run)

    def order_by(self, columns: Sequence[str], *, descending: bool = False) -> "Q":
        """Sort rows by the named columns (``None`` sorts first)."""
        cols = list(columns)

        def sort_key(row: Row):
            return tuple(
                (row.get(c) is not None, row.get(c)) for c in cols
            )

        return self._derive(
            lambda rows: sorted(rows, key=sort_key, reverse=descending)
        )

    def limit(self, n: int) -> "Q":
        """Keep the first ``n`` rows."""
        if n < 0:
            raise QueryPlanError("limit must be non-negative")
        return self._derive(lambda rows: rows[:n])

    def distinct(self) -> "Q":
        """Drop duplicate rows (first occurrence wins)."""

        def run(rows: list[Row]) -> list[Row]:
            seen: set[tuple[tuple[str, Any], ...]] = set()
            out = []
            for r in rows:
                key = tuple(sorted(r.items(), key=lambda kv: kv[0]))
                if key not in seen:
                    seen.add(key)
                    out.append(r)
            return out

        return self._derive(run)

    # -- execution ------------------------------------------------------------------

    def rows(self) -> list[Row]:
        """Execute the pipeline and return the result rows."""
        rows = self._source()
        for step in self._steps:
            rows = step(rows)
        return rows

    def one(self) -> Row:
        """Execute and assert exactly one result row."""
        rows = self.rows()
        if len(rows) != 1:
            raise QueryPlanError(f"expected exactly one row, got {len(rows)}")
        return rows[0]

    def scalar(self, column: str) -> Any:
        """Execute and return one column of the single result row."""
        row = self.one()
        if column not in row:
            raise QueryPlanError(f"result has no column {column!r}")
        return row[column]
