"""CSV persistence for tables and whole databases.

The paper's warehouse is non-volatile; this module gives the in-memory
engine a durable form — one CSV file per table plus a small catalog file —
so example pipelines can persist and reload their warehouses.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .database import Database
from .errors import StorageError
from .schema import Column, TableSchema
from .table import Table
from .types import BOOLEAN, FLOAT, INTEGER, TEXT, ColumnType

__all__ = ["dump_table", "load_table", "dump_database", "load_database"]

_TYPES: dict[str, ColumnType] = {
    "INTEGER": INTEGER,
    "FLOAT": FLOAT,
    "TEXT": TEXT,
    "BOOLEAN": BOOLEAN,
}

_NULL = ""


def dump_table(table: Table, path: str | Path) -> None:
    """Write a table to CSV (header row = column names, NULL = empty)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.column_names)
        for row in table.rows():
            writer.writerow(
                [
                    _NULL if row[c] is None else str(row[c])
                    for c in table.schema.column_names
                ]
            )


def load_table(schema: TableSchema, path: str | Path) -> Table:
    """Read a CSV written by :func:`dump_table` back into a table."""
    path = Path(path)
    table = Table(schema)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty — not a table dump") from None
        if header != schema.column_names:
            raise StorageError(
                f"{path} columns {header} do not match schema "
                f"{schema.column_names}"
            )
        for line in reader:
            row = {}
            for name, text in zip(header, line):
                column = schema.column(name)
                row[name] = None if text == _NULL else column.type.parse(text)
            table.insert(row)
    return table


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.type.name, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
    }


def _schema_from_json(payload: dict) -> TableSchema:
    return TableSchema(
        name=payload["name"],
        columns=tuple(
            Column(c["name"], _TYPES[c["type"]], nullable=c["nullable"])
            for c in payload["columns"]
        ),
        primary_key=tuple(payload["primary_key"]),
    )


def dump_database(db: Database, directory: str | Path) -> None:
    """Persist a whole database: ``catalog.json`` plus one CSV per table."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    catalog = []
    for name in db.table_names:
        table = db.table(name)
        catalog.append(_schema_to_json(table.schema))
        dump_table(table, directory / f"{name}.csv")
    (directory / "catalog.json").write_text(json.dumps(catalog, indent=2))


def load_database(directory: str | Path, name: str = "warehouse") -> Database:
    """Reload a database persisted with :func:`dump_database`."""
    directory = Path(directory)
    catalog_path = directory / "catalog.json"
    if not catalog_path.exists():
        raise StorageError(f"{directory} has no catalog.json")
    db = Database(name)
    for payload in json.loads(catalog_path.read_text()):
        schema = _schema_from_json(payload)
        loaded = load_table(schema, directory / f"{schema.name}.csv")
        created = db.create_table(
            schema.name, schema.columns, primary_key=schema.primary_key
        )
        for row in loaded.rows():
            created.insert(row)
    return db
