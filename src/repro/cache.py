"""Versioned result caching — MVCC-keyed memoization of query results.

The paper's §1.1 premise is that "query results are pre-calculated in the
form of aggregates"; the MVCC layer (PR 2) makes a *principled* cache
possible: committed snapshots are immutable and the live schema carries a
strictly-increasing structure-version token (:mod:`repro.core.tokens`),
so a result keyed by

``(snapshot_version, structure_version, rls_policy_digest, query_digest)``

is **permanently valid** — no invalidation protocol, no TTLs, no
dirty-tracking.  A write simply produces new versions and therefore new
keys; entries for old versions keep serving the readers still pinned to
them (the snapshot-keyed recycling discipline of MonetDB-style query
recycling applied to the warehouse read path).

Three pieces live here:

* :func:`query_digest` — a canonical digest over compiled
  :class:`~repro.core.query.Query` plans.  Order-*sensitive* where order
  shapes the result (``group_by``, ``measures``: they determine column
  and cell order) and order-*insensitive* where it does not
  (``level_filters`` are conjunctive and each filter's value set has
  OR semantics, so both sort before hashing).  Plans with a
  ``coordinate_filter`` (an opaque callable) are uncacheable and digest
  to ``None``.
* :func:`policy_digest` — a canonical digest of an RLS rule list, the
  tenant-isolation component of the key.  RLS filters are already merged
  into the plan (and therefore into the query digest); keying by the
  policy as well is defense-in-depth: two tenants can never share an
  entry even if a future statement shape bypasses plan-level merging.
* :class:`VersionedResultCache` — a bounded, thread-safe store with
  CLOCK (second-chance) eviction, an LRU fallback policy, per-entry cost
  accounting and hit/miss/eviction/bytes instrumentation through the
  existing :class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.query import AttributeGroup, LevelGroup, Query, TimeGroup
from repro.observability import runtime as _obs

__all__ = [
    "NO_POLICY",
    "CacheKey",
    "query_digest",
    "policy_digest",
    "estimate_cost",
    "VersionedResultCache",
]

# The policy-digest of an unrestricted session (no RLS rules). A fixed
# sentinel rather than a hash so operators can spot open-scope entries.
NO_POLICY = "open"

DEFAULT_MAX_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class CacheKey:
    """One versioned result-cache key (see the module docstring)."""

    snapshot_version: int
    structure_version: int
    policy_digest: str
    query_digest: str


def query_digest(query: Query) -> str | None:
    """A canonical digest of a compiled query plan, or ``None`` when the
    plan is uncacheable.

    ``mode``, ``group_by`` and ``measures`` hash in order — they shape
    the result table (column order, cell order).  ``level_filters`` and
    each filter's value tuple hash sorted — the engine applies filters
    conjunctively and values as an OR-set, so ``WHERE a AND b`` equals
    ``WHERE b AND a`` and both map to one entry.  A ``coordinate_filter``
    is an opaque callable whose identity says nothing about its
    behaviour: such plans return ``None`` and bypass the cache.
    """
    if query.coordinate_filter is not None:
        return None
    terms: list[list[object]] = []
    for term in query.group_by:
        if isinstance(term, TimeGroup):
            terms.append(["time", term.granularity.name])
        elif isinstance(term, LevelGroup):
            terms.append(["level", term.dimension, term.level])
        elif isinstance(term, AttributeGroup):
            terms.append(["attr", term.dimension, term.attribute])
        else:  # an extension term this digest does not understand
            return None
    time_range = None
    if query.time_range is not None:
        time_range = [str(query.time_range.start), str(query.time_range.end)]
    filters = sorted(
        [flt.dimension, flt.level, sorted(flt.values)]
        for flt in query.level_filters
    )
    payload = {
        "mode": query.mode,
        "group_by": terms,
        "measures": list(query.measures),
        "time_range": time_range,
        "filters": filters,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def policy_digest(rules: Any) -> str:
    """A canonical digest of an RLS policy's rule list.

    ``rules`` is either an object with ``to_dicts()`` (an
    :class:`~repro.server.rls.RLSPolicy`) or the dict list itself.  Rules
    and their value lists sort before hashing — RLS rules are conjunctive
    — so equivalent policies written in different orders share a digest.
    An empty policy digests to the fixed :data:`NO_POLICY` sentinel.
    """
    if rules is None:
        return NO_POLICY
    if hasattr(rules, "to_dicts"):
        rules = rules.to_dicts()
    canonical = sorted(
        [str(r["dimension"]), str(r["level"]), sorted(str(v) for v in r["values"])]
        for r in rules
    )
    if not canonical:
        return NO_POLICY
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return "rls-" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def estimate_cost(value: Any) -> int:
    """A recursive memory estimate of a cached value, in bytes.

    Walks containers, object ``__dict__``/``__slots__`` and mapping
    views, counting every reachable object once.  An estimate, not an
    audit — what matters for eviction is that costs are *consistent*
    across entries so relative sizes are honest.
    """
    seen: set[int] = set()
    stack = [value]
    total = 0
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects
            total += 64
        if isinstance(obj, Mapping):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif isinstance(obj, (str, bytes, int, float, bool, type(None))):
            continue
        else:
            obj_dict = getattr(obj, "__dict__", None)
            if obj_dict is not None:
                stack.extend(obj_dict.values())
            for slot in getattr(type(obj), "__slots__", ()):
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total


class _Entry:
    __slots__ = ("key", "value", "cost", "referenced")

    def __init__(self, key: CacheKey, value: Any, cost: int) -> None:
        self.key = key
        self.value = value
        self.cost = cost
        self.referenced = False


class VersionedResultCache:
    """A bounded, thread-safe, version-keyed result store.

    Parameters
    ----------
    max_bytes:
        Memory budget over the summed per-entry cost estimates.
    policy:
        ``"clock"`` (default) — CLOCK / second-chance: a hand cycles over
        the entries; a referenced entry gets its bit cleared and one more
        round, an unreferenced one is evicted.  Near-LRU behaviour at
        O(1) bookkeeping per hit (set one flag, move nothing).
        ``"lru"`` — exact least-recently-used, the simpler fallback.
    metrics:
        A :class:`~repro.observability.metrics.MetricsRegistry`; left
        ``None`` the process-wide default resolves at call time (no-op
        until instrumentation is enabled).  Counters: ``cache.hits``,
        ``cache.misses``, ``cache.evictions``; gauges: ``cache.bytes``,
        ``cache.entries``.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        *,
        policy: str = "clock",
        metrics: Any = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if policy not in ("clock", "lru"):
            raise ValueError(f"unknown eviction policy {policy!r}")
        self.max_bytes = max_bytes
        self.policy = policy
        self._metrics = metrics
        self._entries: dict[CacheKey, _Entry] = {}
        self._ring: list[CacheKey] = []  # CLOCK order (insertion order)
        self._hand = 0
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0
        self._lock = threading.Lock()

    # -- key construction ---------------------------------------------------------

    def key_for(
        self, mvft: Any, query: Query, policy_digest: str | None = None
    ) -> CacheKey | None:
        """The cache key of ``query`` against ``mvft``, or ``None`` when
        the plan is uncacheable.

        The structure version is the *table's* build stamp
        (``mvft.schema_token``) — entries describe what the frozen table
        serves, which is exactly what the engine returns even if the live
        schema has mutated since.
        """
        digest = query_digest(query)
        if digest is None:
            return None
        return CacheKey(
            snapshot_version=getattr(mvft, "snapshot_version", 0),
            structure_version=getattr(mvft, "schema_token", 0),
            policy_digest=policy_digest if policy_digest else NO_POLICY,
            query_digest=digest,
        )

    # -- instrumentation ----------------------------------------------------------

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    def _publish_size(self, metrics: Any) -> None:
        metrics.gauge("cache.bytes").set(float(self._bytes))
        metrics.gauge("cache.entries").set(float(len(self._entries)))

    # -- access -------------------------------------------------------------------

    def get(self, key: CacheKey | None) -> Any | None:
        """The cached value, or ``None`` on a miss (or a ``None`` key)."""
        if key is None:
            return None
        metrics = self._metrics_now()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                if metrics.enabled:
                    metrics.counter("cache.misses").inc()
                return None
            self._hits += 1
            if self.policy == "clock":
                entry.referenced = True
            else:  # lru: move to the MRU end of the ordered dict
                del self._entries[key]
                self._entries[key] = entry
            if metrics.enabled:
                metrics.counter("cache.hits").inc()
            return entry.value

    def put(self, key: CacheKey | None, value: Any, cost: int | None = None) -> bool:
        """Store ``value`` under ``key``; returns whether it was admitted.

        ``cost`` defaults to :func:`estimate_cost`.  A value costlier
        than the whole budget is rejected rather than flushing the cache
        for one entry.
        """
        if key is None:
            return False
        if cost is None:
            cost = estimate_cost(value)
        metrics = self._metrics_now()
        with self._lock:
            if cost > self.max_bytes:
                self._rejected += 1
                return False
            existing = self._entries.get(key)
            if existing is not None:
                self._bytes += cost - existing.cost
                existing.value = value
                existing.cost = cost
                existing.referenced = False
            else:
                entry = _Entry(key, value, cost)
                self._entries[key] = entry
                self._ring.append(key)
                self._bytes += cost
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                self._evict_one(metrics)
            if self._bytes > self.max_bytes:
                # the only remaining entry is the one just inserted
                self._evict_one(metrics)
            if metrics.enabled:
                self._publish_size(metrics)
        return key in self._entries

    def _evict_one(self, metrics: Any) -> None:
        if self.policy == "lru":
            key = next(iter(self._entries))  # dict order = recency order
            entry = self._entries.pop(key)
        else:
            while True:
                if self._hand >= len(self._ring):
                    self._hand = 0
                key = self._ring[self._hand]
                entry = self._entries.get(key)
                if entry is None:  # a hole left by a same-key overwrite
                    self._ring.pop(self._hand)
                    continue
                if entry.referenced:  # second chance
                    entry.referenced = False
                    self._hand += 1
                    continue
                self._ring.pop(self._hand)
                del self._entries[key]
                break
        self._bytes -= entry.cost
        self._evictions += 1
        if metrics.enabled:
            metrics.counter("cache.evictions").inc()

    # -- maintenance & introspection ----------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()
            self._ring.clear()
            self._hand = 0
            self._bytes = 0
            metrics = self._metrics_now()
            if metrics.enabled:
                self._publish_size(metrics)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def keys(self) -> Iterable[CacheKey]:
        """A snapshot of the resident keys (tenant-isolation tests)."""
        with self._lock:
            return list(self._entries)

    @property
    def bytes_used(self) -> int:
        """The summed cost estimates of resident entries."""
        return self._bytes

    def stats(self) -> dict[str, Any]:
        """The counters the CLI, doctor and benchmarks report."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "policy": self.policy,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected": self._rejected,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionedResultCache(policy={self.policy}, "
            f"entries={len(self._entries)}, bytes={self._bytes}/{self.max_bytes})"
        )
