"""The denormalized ("star schema") dimension lowering (§5.1).

One relational table per dimension, one row per (structure version, leaf
member version): the hierarchy is *encapsulated in attributes* — a column
per level holding the ancestor's member name.  Because a structure version
is unchanged over its span, a row also carries the span bounds, which is
how temporally-consistent queries join facts to the hierarchy valid at the
fact's own time.

Multiple hierarchies put several ancestors at one level; the star layout
cannot represent that relationally per row, so ancestor names are joined
with ``" | "`` (and the snowflake/parent-child lowerings exist precisely
because each layout trades something away — see §5.1's closing paragraph).
"""

from __future__ import annotations

import re

from repro.core.chronology import NowType
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.versions import StructureVersion
from repro.storage import Column, Database, INTEGER, TEXT, Table

__all__ = ["level_column", "star_table_name", "lower_star"]


def level_column(level: str) -> str:
    """Sanitized column name for a hierarchy level (``Division`` →
    ``level_division``)."""
    slug = re.sub(r"[^a-zA-Z0-9]+", "_", level).strip("_").lower()
    return f"level_{slug}"


def star_table_name(did: str) -> str:
    """Canonical star-table name of a dimension."""
    return f"star_{did}"


def lower_star(
    db: Database,
    schema: TemporalMultidimensionalSchema,
    versions: list[StructureVersion],
    did: str,
) -> Table:
    """Lower one temporal dimension to a denormalized star table.

    Columns: ``vsid``, ``member`` (leaf member version id), ``name``,
    ``valid_from``/``valid_to`` (the structure version's span; ``valid_to``
    NULL when open-ended) and one nullable TEXT column per level name seen
    in any version.
    """
    level_names: list[str] = []
    snapshots = {}
    for version in versions:
        snap = version.dimension(did).at(version.valid_time.start)
        snapshots[version.vsid] = (version, snap)
        for level in snap.levels():
            if level not in level_names:
                level_names.append(level)

    columns = [
        Column("vsid", TEXT),
        Column("member", TEXT),
        Column("name", TEXT),
        Column("valid_from", INTEGER),
        Column("valid_to", INTEGER, nullable=True),
    ]
    columns.extend(Column(level_column(level), TEXT, nullable=True) for level in level_names)
    table = db.create_table(
        star_table_name(did), columns, primary_key=["vsid", "member"]
    )

    for vsid, (version, snap) in snapshots.items():
        levels = snap.levels()
        end = version.valid_time.end
        valid_to = None if isinstance(end, NowType) else end
        for leaf in snap.leaves():
            row = {
                "vsid": vsid,
                "member": leaf,
                "name": snap.member(leaf).name,
                "valid_from": version.valid_time.start,
                "valid_to": valid_to,
            }
            lineage = {leaf} | snap.ancestors(leaf)
            for level in level_names:
                hits = sorted(lineage & set(levels.get(level, ())))
                row[level_column(level)] = (
                    " | ".join(snap.member(m).name for m in hits) if hits else None
                )
            table.insert(row)
    return table
