"""The §4.2 logical rewrite of the Reclassify operator.

Commercial tools store hierarchical links as foreign keys inside member
rows, so a hierarchy change cannot happen without touching the member: the
conceptual ``Reclassify`` is rewritten as

* ``Insert`` a new member version carrying the new hierarchical link
  (parents ``P' = (P − OldParents) ∪ NewParents``, children ``E``),
* ``Exclude`` the old version,
* ``Associate`` the two with identity mappings at confidence ``sd`` —
  reclassified data is still *source* data, merely re-homed.

"If E is not empty then each element of E has to be reclassified
recursively to the new version mvID'" — every descendant is re-versioned
too, which is exactly the redundancy §4.2 calls "not satisfying" and the
ablation benchmark quantifies against the conceptual operator.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.chronology import Endpoint, Instant, NOW
from repro.core.confidence import SD
from repro.core.errors import OperatorError
from repro.core.mapping import MappingRelationship, identity_maps
from repro.core.operators import SchemaEditor

__all__ = ["logical_reclassify"]


def _default_rename(mvid: str, ti: Instant) -> str:
    return f"{mvid}@{ti}"


def logical_reclassify(
    editor: SchemaEditor,
    did: str,
    mvid: str,
    ti: Instant,
    tf: Endpoint = NOW,
    *,
    old_parents: Sequence[str] = (),
    new_parents: Sequence[str] = (),
    rename: Callable[[str, Instant], str] = _default_rename,
) -> list[tuple[str, str]]:
    """Apply the §4.2 Reclassify rewrite through a schema editor.

    Returns the ``(old id, new id)`` pairs of every member version the
    rewrite re-created — the reclassified member first, then its
    recursively re-versioned descendants.  ``rename`` derives the new
    member-version ids (default: ``"<old>@<ti>"``).
    """
    dim = editor.schema.dimension(did)
    snap = dim.at(ti - 1)
    if mvid not in snap:
        raise OperatorError(
            f"logical Reclassify: {mvid!r} is not valid just before {ti}"
        )
    old_mv = dim.member(mvid)
    current_parents = set(snap.parents(mvid))
    missing = set(old_parents) - current_parents
    if missing:
        raise OperatorError(
            f"logical Reclassify: {sorted(missing)} are not parents of "
            f"{mvid!r} at {ti - 1}"
        )
    new_parent_set = (current_parents - set(old_parents)) | set(new_parents)
    children = [c for c in snap.children(mvid) if dim.member(c).valid_at(ti)]

    new_id = rename(mvid, ti)
    editor.insert(
        did,
        new_id,
        old_mv.name,
        ti,
        tf,
        attributes=dict(old_mv.attributes),
        level=old_mv.level,
        parents=sorted(new_parent_set),
    )
    editor.exclude(did, mvid, ti)
    measures = editor.schema.measure_names
    editor.associate(
        MappingRelationship(
            source=mvid,
            target=new_id,
            forward=identity_maps(measures, SD),
            reverse=identity_maps(measures, SD),
        ),
        # §4.2 associates the re-versioned member even when it is an inner
        # node; its facts live on its leaves, but the link documents the
        # equivalence (and routing composes through it transparently).
        allow_non_leaf=True,
    )
    created = [(mvid, new_id)]
    # Recursive re-versioning: each child's hierarchical-link attribute
    # changed (its parent is now new_id), so it becomes a new version too.
    for child in children:
        created.extend(
            logical_reclassify(
                editor,
                did,
                child,
                ti,
                tf,
                old_parents=[mvid],
                new_parents=[new_id],
                rename=rename,
            )
        )
    return created
