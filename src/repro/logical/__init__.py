"""The §4 logical-level adaptation for commercial-tool constraints.

Current multidimensional systems are only made of dimensions and fact
tables; this package translates the conceptual model into that world:

* :mod:`~repro.logical.tmp_dimension` — the set TMP of temporal modes as a
  *flat dimension* (§4.1), giving mode-switching all the flexibility of a
  normal dimension during cube exploration;
* :mod:`~repro.logical.cf_measures` — confidence factors encoded as extra
  measures with the §5.2 integer codes;
* :mod:`~repro.logical.reclassify` — the §4.2 rewrite of Reclassify into
  ``Exclude`` + ``Insert`` + identity-``Associate`` with recursive
  re-versioning of descendants (hierarchies stored as foreign keys cannot
  change independently of members);
* :mod:`~repro.logical.star`, :mod:`~repro.logical.snowflake`,
  :mod:`~repro.logical.parent_child` — the three §5.1 dimension storage
  layouts lowered onto the relational engine.
"""

from .cf_measures import cf_column, decode_confidence, encode_confidence
from .parent_child import lower_parent_child
from .reclassify import logical_reclassify
from .snowflake import lower_snowflake
from .star import lower_star
from .tmp_dimension import build_tmp_dimension

__all__ = [
    "build_tmp_dimension",
    "cf_column",
    "encode_confidence",
    "decode_confidence",
    "logical_reclassify",
    "lower_star",
    "lower_snowflake",
    "lower_parent_child",
]
