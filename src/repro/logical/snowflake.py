"""The normalized ("snowflake schema") dimension lowering (§5.1).

Levels are stored in distinct relational tables — one member table per
level — plus a rollup edge table, which is what makes the representation
normalized and lets it carry multiple hierarchies (a child may have edges
to several parents), unlike the parent-child layout.
"""

from __future__ import annotations

import re

from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.versions import StructureVersion
from repro.storage import Column, Database, TEXT, Table

__all__ = ["snowflake_level_table", "snowflake_edge_table", "lower_snowflake"]


def _slug(text: str) -> str:
    return re.sub(r"[^a-zA-Z0-9]+", "_", text).strip("_").lower()


def snowflake_level_table(did: str, level: str) -> str:
    """Canonical name of one level's member table."""
    return f"sf_{did}_{_slug(level)}"


def snowflake_edge_table(did: str) -> str:
    """Canonical name of the dimension's rollup edge table."""
    return f"sf_{did}_rollup"


def lower_snowflake(
    db: Database,
    schema: TemporalMultidimensionalSchema,
    versions: list[StructureVersion],
    did: str,
) -> dict[str, Table]:
    """Lower one temporal dimension to a snowflake of level tables.

    Returns ``{table name: table}`` — one member table per level (columns
    ``vsid``, ``member``, ``name``; key ``(vsid, member)``) and the edge
    table (``vsid``, ``child``, ``parent``; key over all three, so a child
    may roll up into several parents).
    """
    tables: dict[str, Table] = {}
    level_of_member: dict[tuple[str, str], str] = {}

    level_names: list[str] = []
    snapshots = {}
    for version in versions:
        snap = version.dimension(did).at(version.valid_time.start)
        snapshots[version.vsid] = snap
        for level in snap.levels():
            if level not in level_names:
                level_names.append(level)

    for level in level_names:
        name = snowflake_level_table(did, level)
        tables[name] = db.create_table(
            name,
            [Column("vsid", TEXT), Column("member", TEXT), Column("name", TEXT)],
            primary_key=["vsid", "member"],
        )

    edge_name = snowflake_edge_table(did)
    tables[edge_name] = db.create_table(
        edge_name,
        [Column("vsid", TEXT), Column("child", TEXT), Column("parent", TEXT)],
        primary_key=["vsid", "child", "parent"],
    )

    for vsid, snap in snapshots.items():
        for level, members in snap.levels().items():
            table = tables[snowflake_level_table(did, level)]
            for mvid in members:
                table.insert(
                    {"vsid": vsid, "member": mvid, "name": snap.member(mvid).name}
                )
                level_of_member[(vsid, mvid)] = level
        for rel in snap.relationships:
            tables[edge_name].insert(
                {"vsid": vsid, "child": rel.child, "parent": rel.parent}
            )
    return tables
