"""Confidence factors as measures (§4.1, §5.2 coding).

"Each confidence factor, which is characterizing a value, may be seen as a
measure in the fact table, associated to the same members in the
multidimensional structure."

The prototype codes the qualitative factors as integers — 3 for source
data, 2 for exact mapped, 1 for approximated mapped, 4 for unknown — and
that coding is what the MultiVersion fact table's ``cf_<measure>`` columns
carry.
"""

from __future__ import annotations

from repro.core.confidence import ConfidenceFactor, factor_from_code

__all__ = ["cf_column", "encode_confidence", "decode_confidence"]


def cf_column(measure: str) -> str:
    """Name of the confidence-measure column paired with ``measure``."""
    return f"cf_{measure}"


def encode_confidence(factor: ConfidenceFactor) -> int:
    """The §5.2 integer code of a confidence factor."""
    return factor.code


def decode_confidence(code: int) -> ConfidenceFactor:
    """The confidence factor behind a §5.2 integer code."""
    return factor_from_code(code)
