"""The TMP set as a flat dimension (§4.1).

"In the logical level, we represent the set TMP as a 'flat' dimension,
i.e. without hierarchical structure.  This choice offers all the
flexibility provided by a usual dimension, during cubes exploration
(comparing different structure versions, switching between temporal modes,
rotating…)."

:func:`build_tmp_dimension` materializes that dimension as a relational
table: one row per temporal mode of presentation, carrying the mode label,
a human description and — for version modes — the structure version's
valid-time bounds (the §5.2 member-version metadata made visible to the
user).
"""

from __future__ import annotations

from repro.core.chronology import NowType, ym_str
from repro.core.presentation import ModeSet
from repro.storage import Column, Database, INTEGER, TEXT, Table

__all__ = ["TMP_TABLE", "build_tmp_dimension"]

TMP_TABLE = "dim_tmp"
"""Canonical name of the TMP dimension table."""


def build_tmp_dimension(db: Database, modes: ModeSet) -> Table:
    """Create and populate the flat TMP dimension table.

    Columns: ``mode`` (pk), ``description``, ``valid_from``/``valid_to``
    (``NULL`` for ``tcm``; ``valid_to`` is also ``NULL`` for the live,
    open-ended structure version), ``valid_from_label``/``valid_to_label``
    (month/year renderings for front ends).
    """
    table = db.create_table(
        TMP_TABLE,
        [
            Column("mode", TEXT),
            Column("description", TEXT),
            Column("valid_from", INTEGER, nullable=True),
            Column("valid_to", INTEGER, nullable=True),
            Column("valid_from_label", TEXT, nullable=True),
            Column("valid_to_label", TEXT, nullable=True),
        ],
        primary_key=["mode"],
    )
    for mode in modes:
        if mode.is_tcm:
            table.insert(
                {
                    "mode": mode.label,
                    "description": mode.describe(),
                    "valid_from": None,
                    "valid_to": None,
                    "valid_from_label": None,
                    "valid_to_label": None,
                }
            )
            continue
        version = mode.version
        assert version is not None
        end = version.valid_time.end
        open_ended = isinstance(end, NowType)
        table.insert(
            {
                "mode": mode.label,
                "description": mode.describe(),
                "valid_from": version.valid_time.start,
                "valid_to": None if open_ended else end,
                "valid_from_label": ym_str(version.valid_time.start),
                "valid_to_label": ym_str(end),
            }
        )
    return table
