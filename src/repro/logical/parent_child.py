"""The parent-child dimension lowering (§5.1).

Microsoft SQL Server 2000's *Parent-Child Dimension* stores no explicit
hierarchy: each member row carries its parent's key and the hierarchy is
deduced from those links — the structure closest to the paper's conceptual
model, and the one that "allows us to deal with most of the evolutions
over dimensions schemas".

Its documented limitation is also reproduced: **multi-hierarchies are not
supported** — a member with several parents in one structure version makes
the lowering fail, which is exactly the §5.1 trade-off ("Designers …
will have to choose between handling multi-hierarchy … or evolutions on
schema").
"""

from __future__ import annotations

from repro.core.errors import ModelError
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.versions import StructureVersion
from repro.storage import Column, Database, TEXT, Table

__all__ = ["parent_child_table_name", "lower_parent_child"]


def parent_child_table_name(did: str) -> str:
    """Canonical parent-child table name of a dimension."""
    return f"pc_{did}"


def lower_parent_child(
    db: Database,
    schema: TemporalMultidimensionalSchema,
    versions: list[StructureVersion],
    did: str,
) -> Table:
    """Lower one temporal dimension to a parent-child table.

    Columns: ``vsid``, ``member``, ``name``, ``parent`` (NULL for roots),
    ``level`` (the inferred level label, NULL when levels are depth-based
    and the caller did not set explicit level fields).

    Raises :class:`~repro.core.errors.ModelError` when any member has more
    than one parent in some version — the §5.1 limitation.
    """
    table = db.create_table(
        parent_child_table_name(did),
        [
            Column("vsid", TEXT),
            Column("member", TEXT),
            Column("name", TEXT),
            Column("parent", TEXT, nullable=True),
            Column("level", TEXT, nullable=True),
        ],
        primary_key=["vsid", "member"],
    )
    for version in versions:
        snap = version.dimension(did).at(version.valid_time.start)
        for mvid in snap.topological_order():
            parents = snap.parents(mvid)
            if len(parents) > 1:
                db.drop_table(table.name)
                raise ModelError(
                    f"parent-child dimensions do not support multi-hierarchies: "
                    f"{mvid!r} has parents {parents} in {version.vsid} (§5.1)"
                )
            mv = snap.member(mvid)
            table.insert(
                {
                    "vsid": version.vsid,
                    "member": mvid,
                    "name": mv.name,
                    "parent": parents[0] if parents else None,
                    "level": mv.level,
                }
            )
    return table
