"""The OLAP cube (Figure 1's third tier).

The cube wraps a MultiVersion fact table and exposes *axes* the OLAP
operators manipulate:

* the TMP axis (presentation modes, §4.1's flat dimension),
* a time axis at a chosen granularity,
* one axis per (dimension, level).

A :class:`CubeView` is a fully specified pivot: a mode, a row axis, a
column axis and a measure; its cells carry values *and* confidence
factors so the front end can colour them (§5.2).  Views are computed
through the multiversion query engine, optionally against a materialized
aggregate lattice (:mod:`repro.olap.aggregates`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chronology import Granularity, YEAR
from repro.core.confidence import ConfidenceFactor
from repro.core.errors import QueryError
from repro.core.multiversion import MultiVersionFactTable
from repro.core.query import LevelGroup, Query, QueryEngine, TimeGroup
from repro.observability import runtime as _obs

__all__ = ["Axis", "TimeAxis", "LevelAxis", "CubeView", "Cube"]


@dataclass(frozen=True)
class TimeAxis:
    """The time axis at a granularity (year by default, like Q1/Q2)."""

    granularity: Granularity = YEAR

    def group_term(self):
        """The query group term implementing this axis."""
        return TimeGroup(self.granularity)

    @property
    def name(self) -> str:
        """Axis label."""
        return self.granularity.name


@dataclass(frozen=True)
class LevelAxis:
    """A (dimension, level) axis, e.g. ``org / Division``."""

    dimension: str
    level: str

    def group_term(self):
        """The query group term implementing this axis."""
        return LevelGroup(self.dimension, self.level)

    @property
    def name(self) -> str:
        """Axis label."""
        return f"{self.dimension}/{self.level}"


Axis = TimeAxis | LevelAxis


@dataclass(frozen=True)
class CubeCell:
    """One pivot cell: value plus confidence (may be empty)."""

    value: float | None
    confidence: ConfidenceFactor | None

    @property
    def empty(self) -> bool:
        """Whether no fact contributes to the cell."""
        return self.confidence is None


class CubeView:
    """A materialized 2-D pivot of the cube."""

    def __init__(
        self,
        mode: str,
        row_axis: Axis,
        col_axis: Axis,
        measure: str,
        rows: list[object],
        cols: list[object],
        cells: dict[tuple[object, object], CubeCell],
        time_range=None,
    ) -> None:
        self.mode = mode
        self.row_axis = row_axis
        self.col_axis = col_axis
        self.measure = measure
        self.rows = rows
        self.cols = cols
        self.time_range = time_range
        self._cells = cells

    def cell(self, row: object, col: object) -> CubeCell:
        """The cell at (row label, column label)."""
        return self._cells.get((row, col), CubeCell(None, None))

    def transpose(self) -> "CubeView":
        """Swap rows and columns — the OLAP *rotate* operator."""
        return CubeView(
            mode=self.mode,
            row_axis=self.col_axis,
            col_axis=self.row_axis,
            measure=self.measure,
            rows=list(self.cols),
            cols=list(self.rows),
            cells={(c, r): cell for (r, c), cell in self._cells.items()},
            time_range=self.time_range,
        )

    def confidences(self) -> list[ConfidenceFactor | None]:
        """Every grid cell's confidence, row-major (for the quality factor
        ``Q``, whose denominator is ``Ni·Nj·10`` — the *grid*, including
        empty cross-points, exactly as §5.2 counts it)."""
        return [self.cell(r, c).confidence for r in self.rows for c in self.cols]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CubeView(mode={self.mode}, {self.row_axis.name} × "
            f"{self.col_axis.name}, {len(self.rows)}×{len(self.cols)})"
        )


class Cube:
    """The hypercube over a MultiVersion fact table.

    When built with ``materialize=True`` (or handed an existing
    :class:`~repro.olap.aggregates.AggregateLattice` via ``lattice``), the
    cube answers untimed (time × level) pivots straight from the
    precomputed aggregates — §1.1's "query results are pre-calculated in
    the form of aggregates".  Pivots the lattice cannot serve (custom time
    windows, level × level grids) fall back to the query engine.

    Both paths memoize through a shared
    :class:`~repro.cache.VersionedResultCache` (``cache``; a private one
    is built when none is passed) and every pivot first re-checks the
    live schema's version token (:meth:`refresh`), so a write between two
    pivots is always visible in the second — the lattice is a lazy view,
    not a one-shot materialization.  ``policy_digest`` scopes cache
    entries to an RLS policy for secured server sessions.
    """

    def __init__(
        self,
        mvft: MultiVersionFactTable,
        *,
        materialize: bool = False,
        lattice=None,
        executor=None,
        tracer=None,
        metrics=None,
        explain: bool = False,
        lineage=None,
        cache=None,
        policy_digest=None,
    ) -> None:
        self.schema = mvft.schema
        self._tracer = tracer
        self._metrics = metrics
        if lineage is None and explain:
            from repro.observability.lineage import LineageRecorder

            lineage = LineageRecorder()
        self.lineage = lineage
        if cache is None:
            from repro.cache import VersionedResultCache

            cache = VersionedResultCache()
        self.cache = cache
        self._policy_digest = policy_digest
        self.executor = executor
        self._bind(mvft)
        if executor is not None and lineage is not None:
            # Executor-path pivots run on the executor's own engine.
            executor.engine.set_lineage(lineage)
        if lattice is None and materialize:
            from .aggregates import AggregateLattice

            lattice = AggregateLattice(
                mvft, executor=executor, cache=cache, policy_digest=policy_digest
            )
        self.lattice = lattice

    def _bind(self, mvft: MultiVersionFactTable) -> None:
        self.mvft = mvft
        self.engine = QueryEngine(
            mvft,
            tracer=self._tracer,
            metrics=self._metrics,
            lineage=self.lineage,
            cache=self.cache,
            cache_policy_digest=self._policy_digest,
        )

    def refresh(self) -> bool:
        """Rebuild against the live schema if it mutated since binding.

        The MultiVersion table is frozen at inference time, so a cube
        over a *live* (un-snapshotted) schema would otherwise keep
        serving pre-write structure and totals forever — both through
        the lattice and through the engine.  Every pivot first checks
        the schema's version token and re-infers when stale; cubes over
        MVCC snapshot clones never pay this (their schemas are
        immutable).  Returns whether a rebuild happened.
        """
        if not self.mvft.is_stale():
            return False
        mvft = self.schema.multiversion_facts()
        self._bind(mvft)
        if self.executor is not None:
            from .aggregates import _rebuild_executor

            self.executor = _rebuild_executor(self.executor, mvft)
            if self.executor is not None and self.lineage is not None:
                self.executor.engine.set_lineage(self.lineage)
        if self.lattice is not None:
            self.lattice.rebind(mvft)
        metrics = (
            self._metrics if self._metrics is not None else _obs.current_metrics()
        )
        if metrics.enabled:
            metrics.counter("olap.mvft_rebuilds").inc()
        return True

    @classmethod
    def from_cursor(
        cls, cursor, *, materialize: bool = False, executor=None,
        explain: bool = False,
    ) -> "Cube":
        """A cube over a pinned snapshot version.

        ``cursor`` is a :class:`~repro.concurrency.cursor.SnapshotCursor`;
        pivots read the cursor's MultiVersion fact table, so concurrent
        evolution transactions never show through mid-analysis.  An
        optional ``executor``
        (:class:`~repro.concurrency.sharding.ShardedExecutor` over the
        same MVFT) runs engine-path pivots shard-parallel.
        """
        return cls(
            cursor.mvft, materialize=materialize, executor=executor,
            explain=explain, cache=getattr(cursor, "result_cache", None),
        )

    @classmethod
    def from_warehouse(
        cls, wal, *, as_of=None, materialize: bool = False,
        explain: bool = False,
    ) -> "Cube":
        """A cube over a journaled warehouse, optionally back in time.

        ``wal`` is a write-ahead journal (or its path); ``as_of`` is an
        LSN, a restore-point name, or ``None`` for the journal head.  The
        historical schema is materialized once via
        :func:`repro.robustness.pitr.open_as_of` and the cube pivots it —
        AS-OF time travel for the analyst's view.
        """
        from repro.robustness.pitr import open_as_of

        return cls(
            open_as_of(wal, as_of).mvft, materialize=materialize,
            explain=explain,
        )

    @property
    def modes(self) -> list[str]:
        """Available presentation modes (the TMP axis)."""
        return self.mvft.modes.labels

    def level_axes(self) -> list[LevelAxis]:
        """Every (dimension, level) axis available in the schema.

        Levels are taken from the latest structure version (Definition 4:
        levels emerge from instances and evolve; the latest version is the
        natural navigation default).
        """
        axes: list[LevelAxis] = []
        version_modes = self.mvft.modes.version_modes
        if not version_modes:
            return axes
        last = version_modes[-1].version
        assert last is not None
        for did in self.schema.dimension_ids:
            snap = last.dimension(did).at(last.valid_time.start)
            for level in snap.levels():
                axes.append(LevelAxis(did, level))
        return axes

    def _view_key(
        self,
        mode: str,
        row_axis: Axis,
        col_axis: Axis,
        measure: str,
        time_range,
        filters,
    ):
        """A version-bound cache key for the *finished* pivot view.

        Only the hot shape memoizes — no filters, no time window, no
        lineage capture; everything else recomputes (windows and filter
        tuples are open-ended and lineage must observe the real run).
        """
        if filters or time_range is not None:
            return None
        if self.lineage is not None and self.lineage.enabled:
            return None
        from repro.cache import NO_POLICY, CacheKey

        def tag(axis: Axis) -> str:
            kind = "t" if isinstance(axis, TimeAxis) else "l"
            return f"{kind}:{axis.name}"

        digest = f"pivot:{mode}|{tag(row_axis)}|{tag(col_axis)}|{measure}"
        policy = self._policy_digest if self._policy_digest is not None else NO_POLICY
        return CacheKey(
            getattr(self.mvft, "snapshot_version", 0),
            getattr(self.mvft, "schema_token", 0),
            policy,
            digest,
        )

    @staticmethod
    def _lattice_axes(
        row_axis: Axis, col_axis: Axis
    ) -> "tuple[TimeAxis, LevelAxis, bool] | None":
        """``(time_axis, level_axis, transposed)`` when the pivot shape is
        one the lattice stores (time × level either way), else ``None``."""
        if isinstance(row_axis, TimeAxis) and isinstance(col_axis, LevelAxis):
            return row_axis, col_axis, False
        if isinstance(row_axis, LevelAxis) and isinstance(col_axis, TimeAxis):
            return col_axis, row_axis, True
        return None

    def _pivot_from_lattice(
        self,
        mode: str,
        row_axis: Axis,
        col_axis: Axis,
        measure: str,
        time_range,
    ) -> "CubeView | None":
        """Serve a (time × level) pivot from the lattice, if possible."""
        if self.lattice is None or time_range is not None:
            return None
        axes = self._lattice_axes(row_axis, col_axis)
        if axes is None:
            return None
        time_axis, level_axis, transposed = axes
        node = self.lattice.totals(
            mode,
            time_axis.granularity,
            level_axis.dimension,
            level_axis.level,
            measure,
        )
        if not node:
            return None
        rows: list[object] = []
        cols: list[object] = []
        cells: dict[tuple[object, object], CubeCell] = {}
        for (time_label, level_label), (value, cf) in node.items():
            if time_label not in rows:
                rows.append(time_label)
            if level_label not in cols:
                cols.append(level_label)
            cells[(time_label, level_label)] = CubeCell(value, cf)
        rows.sort(key=lambda x: (x is None, str(x)))
        cols.sort(key=lambda x: (x is None, str(x)))
        view = CubeView(mode, time_axis, level_axis, measure, rows, cols, cells)
        return view.transpose() if transposed else view

    def pivot(
        self,
        mode: str,
        row_axis: Axis,
        col_axis: Axis,
        measure: str,
        *,
        time_range=None,
        filters=(),
    ) -> CubeView:
        """Materialize a 2-D view: ``measure`` over ``row × column``.

        ``filters`` are :class:`~repro.core.query.LevelFilter` slice/dice
        restrictions, resolved through this mode's hierarchy.  Filtered
        pivots always go through the engine (the aggregate lattice caches
        unfiltered group-bys only).
        """
        if row_axis == col_axis:
            raise QueryError("row and column axes must differ")
        self.refresh()
        tracer = self._tracer if self._tracer is not None else _obs.current_tracer()
        metrics = (
            self._metrics if self._metrics is not None else _obs.current_metrics()
        )
        view_key = self._view_key(mode, row_axis, col_axis, measure, time_range, filters)
        if view_key is not None:
            cached = self.cache.get(view_key)
            if cached is not None:
                # The finished view itself is memoized (not just the
                # underlying result table), so a hot repeat skips the
                # grid rebuild as well as the scan.
                if metrics.enabled:
                    metrics.counter("olap.pivots").inc()
                    metrics.counter("olap.view_cache_hits").inc()
                return cached
        with tracer.span(
            "olap.pivot",
            attributes={
                "mode": mode,
                "rows": row_axis.name,
                "cols": col_axis.name,
                "measure": measure,
            },
        ) as span:
            # Lattice-served pivots bypass the engine entirely, so an
            # explaining cube always takes the engine path — lineage would
            # otherwise be silently empty.
            lineage_on = self.lineage is not None and self.lineage.enabled
            servable = (
                self.lattice is not None
                and not filters
                and not lineage_on
                and time_range is None
                and self._lattice_axes(row_axis, col_axis) is not None
            )
            if servable:
                served = self._pivot_from_lattice(
                    mode, row_axis, col_axis, measure, time_range
                )
                if served is not None:
                    span.set("served_by", "lattice")
                    if metrics.enabled:
                        metrics.counter("olap.pivots").inc()
                        metrics.counter("olap.lattice_hits").inc()
                    if view_key is not None:
                        self.cache.put(view_key, served)
                    return served
            span.set("served_by", "engine")
            if metrics.enabled:
                metrics.counter("olap.pivots").inc()
                if servable:
                    # A servable shape whose node came back empty — the
                    # only case that is genuinely a lattice *miss*.
                    metrics.counter("olap.lattice_misses").inc()
                elif self.lattice is not None:
                    # Shapes the lattice never stores (filters, time
                    # windows, level × level, lineage capture) are
                    # bypasses, not misses — they say nothing about the
                    # lattice's effectiveness.
                    metrics.counter("olap.lattice_bypass").inc()
            view = self._pivot_engine(
                mode, row_axis, col_axis, measure, time_range, filters
            )
            if view_key is not None:
                self.cache.put(view_key, view)
            return view

    def explain_cell(
        self, row: object, col: object, measure: str, *, mode: str | None = None
    ):
        """The lineage of the cell at (row label, column label).

        Requires the cube to have been built with ``explain=True`` (or a
        ``lineage=`` recorder) and a pivot to have run; returns the
        :class:`~repro.observability.lineage.CellLineage` recorded for
        that cell's group.
        """
        if self.lineage is None:
            raise QueryError(
                "this cube records no lineage — build it with explain=True "
                "(or pass lineage=LineageRecorder())"
            )
        return self.lineage.explain_cell((row, col), measure, mode=mode)

    def _pivot_engine(
        self,
        mode: str,
        row_axis: Axis,
        col_axis: Axis,
        measure: str,
        time_range,
        filters,
    ) -> CubeView:
        """The engine-path pivot (runs sharded when an executor is set)."""
        query = Query(
            mode=mode,
            group_by=(row_axis.group_term(), col_axis.group_term()),
            measures=(measure,),
            time_range=time_range,
            level_filters=tuple(filters),
        )
        runner = self.executor if self.executor is not None else self.engine
        result = runner.execute(query)
        rows: list[object] = []
        cols: list[object] = []
        cells: dict[tuple[object, object], CubeCell] = {}
        for rrow in result:
            r, c = rrow.group
            if r not in rows:
                rows.append(r)
            if c not in cols:
                cols.append(c)
            cells[(r, c)] = CubeCell(
                rrow.value(measure), rrow.confidence(measure)
            )
        rows.sort(key=lambda x: (x is None, str(x)))
        cols.sort(key=lambda x: (x is None, str(x)))
        return CubeView(
            mode, row_axis, col_axis, measure, rows, cols, cells,
            time_range=time_range,
        )
