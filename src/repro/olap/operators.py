"""Classic OLAP operators over the multiversion cube (§1.1).

"Common OLAP operators include roll-up, drill-down, slice and dice,
rotate" — implemented here against :class:`~repro.olap.cube.Cube` views,
all mode-aware: every operator keeps the presentation mode (and therefore
the confidence tagging) of the view it transforms.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.chronology import Interval
from repro.core.errors import QueryError
from .cube import Axis, Cube, CubeView, LevelAxis, TimeAxis

__all__ = ["roll_up", "drill_down", "slice_view", "dice", "rotate", "switch_mode"]


def _level_order(cube: Cube, dimension: str) -> list[str]:
    """Levels of a dimension from coarsest (roots) to finest (leaves).

    Orders the latest structure version's levels by minimum member depth,
    which matches both explicit level fields and inferred ``depth-<k>``
    levels.
    """
    version_modes = cube.mvft.modes.version_modes
    if not version_modes:
        raise QueryError("cube has no structure versions to navigate")
    last = version_modes[-1].version
    assert last is not None
    snap = last.dimension(dimension).at(last.valid_time.start)
    levels = snap.levels()

    def min_depth(members: list[str]) -> int:
        return min(snap.depth(m) for m in members)

    return sorted(levels, key=lambda lvl: min_depth(levels[lvl]))


_TIME_ORDER = ("year", "quarter", "month")
"""Time granularities from coarsest to finest (the Time hierarchy)."""


def _shift_level(cube: Cube, axis: Axis, step: int) -> Axis:
    if isinstance(axis, TimeAxis):
        # The Time dimension's own hierarchy: year > quarter > month.
        from repro.core.chronology import MONTH, QUARTER, YEAR

        granularities = {"year": YEAR, "quarter": QUARTER, "month": MONTH}
        if axis.granularity.name not in _TIME_ORDER:
            raise QueryError(
                f"granularity {axis.granularity.name!r} is not part of the "
                f"time hierarchy {_TIME_ORDER}"
            )
        idx = _TIME_ORDER.index(axis.granularity.name) + step
        if not 0 <= idx < len(_TIME_ORDER):
            direction = "coarser" if step < 0 else "finer"
            raise QueryError(
                f"no {direction} time granularity beyond "
                f"{axis.granularity.name!r}"
            )
        return TimeAxis(granularities[_TIME_ORDER[idx]])
    order = _level_order(cube, axis.dimension)
    if axis.level not in order:
        raise QueryError(
            f"level {axis.level!r} is not a level of {axis.dimension!r} "
            f"(available: {order})"
        )
    idx = order.index(axis.level) + step
    if not 0 <= idx < len(order):
        direction = "coarser" if step < 0 else "finer"
        raise QueryError(f"no {direction} level beyond {axis.level!r}")
    return LevelAxis(axis.dimension, order[idx])


def roll_up(cube: Cube, view: CubeView, *, on: str = "rows") -> CubeView:
    """Re-pivot one level coarser along the chosen axis."""
    if on not in ("rows", "cols"):
        raise QueryError("on must be 'rows' or 'cols'")
    if on == "rows":
        return cube.pivot(
            view.mode, _shift_level(cube, view.row_axis, -1), view.col_axis,
            view.measure, time_range=view.time_range,
        )
    return cube.pivot(
        view.mode, view.row_axis, _shift_level(cube, view.col_axis, -1),
        view.measure, time_range=view.time_range,
    )


def drill_down(cube: Cube, view: CubeView, *, on: str = "rows") -> CubeView:
    """Re-pivot one level finer along the chosen axis."""
    if on not in ("rows", "cols"):
        raise QueryError("on must be 'rows' or 'cols'")
    if on == "rows":
        return cube.pivot(
            view.mode, _shift_level(cube, view.row_axis, 1), view.col_axis,
            view.measure, time_range=view.time_range,
        )
    return cube.pivot(
        view.mode, view.row_axis, _shift_level(cube, view.col_axis, 1),
        view.measure, time_range=view.time_range,
    )


def slice_view(view: CubeView, *, row: object = None, col: object = None) -> CubeView:
    """Fix one coordinate: keep a single row (or column) of the grid."""
    if (row is None) == (col is None):
        raise QueryError("slice fixes exactly one of row / col")
    if row is not None:
        if row not in view.rows:
            raise QueryError(f"{row!r} is not a row of this view")
        return CubeView(
            view.mode, view.row_axis, view.col_axis, view.measure,
            [row], list(view.cols),
            {(row, c): view.cell(row, c) for c in view.cols},
            time_range=view.time_range,
        )
    if col not in view.cols:
        raise QueryError(f"{col!r} is not a column of this view")
    return CubeView(
        view.mode, view.row_axis, view.col_axis, view.measure,
        list(view.rows), [col],
        {(r, col): view.cell(r, col) for r in view.rows},
        time_range=view.time_range,
    )


def dice(
    view: CubeView,
    *,
    rows: Iterable[object] | Callable[[object], bool] | None = None,
    cols: Iterable[object] | Callable[[object], bool] | None = None,
) -> CubeView:
    """Keep a sub-grid: row/column subsets or predicates."""

    def resolve(spec, labels: list[object]) -> list[object]:
        if spec is None:
            return list(labels)
        if callable(spec):
            return [x for x in labels if spec(x)]
        wanted = list(spec)
        missing = [x for x in wanted if x not in labels]
        if missing:
            raise QueryError(f"labels {missing} are not in this view")
        return wanted

    keep_rows = resolve(rows, view.rows)
    keep_cols = resolve(cols, view.cols)
    return CubeView(
        view.mode, view.row_axis, view.col_axis, view.measure,
        keep_rows, keep_cols,
        {
            (r, c): view.cell(r, c)
            for r in keep_rows
            for c in keep_cols
        },
        time_range=view.time_range,
    )


def rotate(view: CubeView) -> CubeView:
    """Swap the row and column axes (a.k.a. pivot/transpose)."""
    return view.transpose()


def switch_mode(cube: Cube, view: CubeView, mode: str) -> CubeView:
    """Re-present the same view in another temporal mode of presentation —
    the §4.1 'switching between temporal modes' the flat TMP dimension
    enables."""
    return cube.pivot(
        mode, view.row_axis, view.col_axis, view.measure,
        time_range=view.time_range,
    )


def time_window(cube: Cube, view: CubeView, interval: Interval) -> CubeView:
    """Restrict the view to facts inside a time interval."""
    return cube.pivot(
        view.mode, view.row_axis, view.col_axis, view.measure, time_range=interval
    )
