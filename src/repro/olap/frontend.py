"""The OLAP client tier (Figure 1's fourth level, §5.2's UX).

Renders cube views as text grids with the prototype's confidence colour
code — "white for source data, green for exact mapping, yellow for
approximated mapping and red for impossible cross-point" — computes the
per-mode quality report the user picks a version with, and draws the
valid-time dimension graph of Figure 2.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.chronology import ym_str
from repro.core.confidence import AM, EM, SD, UK, ConfidenceFactor
from repro.core.dimension import TemporalDimension
from repro.core.errors import QualityError
from repro.core.quality import DEFAULT_WEIGHTS
from .cube import Cube, CubeView

__all__ = [
    "ANSI_COLOURS",
    "HTML_COLOURS",
    "render_view",
    "render_view_html",
    "explain_cell",
    "grid_quality",
    "quality_report",
    "render_dimension_graph",
    "snapshot_caption",
]


def snapshot_caption(cursor) -> str:
    """A one-line banner identifying the snapshot a view was read from.

    ``cursor`` is a :class:`~repro.concurrency.cursor.SnapshotCursor`.
    Interactive fronts print this above a rendered grid so an analyst
    always knows *which committed version* of the evolving structure the
    numbers describe — the paper's temporal-mode caption, extended with
    the MVCC commit stamp.
    """
    schema = cursor.schema
    return (
        f"[snapshot v{cursor.version}] "
        f"{len(schema.dimension_ids)} dimension(s), "
        f"{len(schema.facts)} fact(s), "
        f"{len(schema.mappings)} mapping(s)"
    )

ANSI_COLOURS: dict[str, str] = {
    SD.symbol: "\x1b[37m",   # white  — source data
    EM.symbol: "\x1b[32m",   # green  — exact mapping
    AM.symbol: "\x1b[33m",   # yellow — approximated mapping
    UK.symbol: "\x1b[31m",   # red    — unknown / impossible cross-point
}
_RESET = "\x1b[0m"


def _cell_text(value: float | None, cf: ConfidenceFactor | None, colour: bool) -> str:
    if cf is None:
        body = "·"
        symbol = UK.symbol  # empty cross-points are painted red (§5.2)
    elif value is None:
        body = f"? ({cf.symbol})"
        symbol = cf.symbol
    else:
        body = f"{value:g} ({cf.symbol})"
        symbol = cf.symbol
    if colour:
        return f"{ANSI_COLOURS[symbol]}{body}{_RESET}"
    return body


def render_view(view: CubeView, *, colour: bool = False) -> str:
    """Render a cube view as a text grid.

    With ``colour=True`` each cell is wrapped in the §5.2 ANSI colour for
    its confidence.  Column widths are computed on the uncoloured text so
    ANSI escapes never skew the layout.
    """
    headers = [f"{view.row_axis.name} \\ {view.col_axis.name}"]
    headers.extend(str(c) for c in view.cols)
    plain_rows: list[list[str]] = []
    for r in view.rows:
        line = [str(r)]
        for c in view.cols:
            cell = view.cell(r, c)
            line.append(_cell_text(cell.value, cell.confidence, colour=False))
        plain_rows.append(line)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in plain_rows))
        if plain_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r, plain in zip(view.rows, plain_rows):
        rendered = [plain[0].ljust(widths[0])]
        for i, c in enumerate(view.cols, start=1):
            cell = view.cell(r, c)
            text = plain[i].ljust(widths[i])
            if colour:
                symbol = (cell.confidence or UK).symbol
                text = f"{ANSI_COLOURS[symbol]}{text}{_RESET}"
            rendered.append(text)
        lines.append("  ".join(rendered))
    return "\n".join(lines)


HTML_COLOURS: dict[str, str] = {
    SD.symbol: "#ffffff",  # white  — source data
    EM.symbol: "#d6f5d6",  # green  — exact mapping
    AM.symbol: "#fff3bf",  # yellow — approximated mapping
    UK.symbol: "#ffd6d6",  # red    — unknown / impossible cross-point
}
"""The §5.2 cell-background palette for HTML reports."""


def _html_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_view_html(view: CubeView, *, title: str | None = None) -> str:
    """Render a cube view as a standalone HTML table.

    Cells carry the §5.2 background colours (white/green/yellow/red) and a
    ``title`` tooltip naming the confidence factor; empty cross-points are
    painted red, like the prototype's grid.
    """
    heading = title or (
        f"{view.measure} — {view.row_axis.name} × {view.col_axis.name} "
        f"(mode {view.mode})"
    )
    lines = [
        "<table border='1' cellspacing='0' cellpadding='4'>",
        f"<caption>{_html_escape(heading)}</caption>",
        "<tr><th></th>"
        + "".join(f"<th>{_html_escape(str(c))}</th>" for c in view.cols)
        + "</tr>",
    ]
    for r in view.rows:
        cells = [f"<th>{_html_escape(str(r))}</th>"]
        for c in view.cols:
            cell = view.cell(r, c)
            cf = cell.confidence
            symbol = (cf or UK).symbol
            colour = HTML_COLOURS[symbol]
            if cf is None:
                body, tip = "&middot;", "empty cross-point"
            elif cell.value is None:
                body, tip = "?", cf.description or cf.symbol
            else:
                body = _html_escape(f"{cell.value:g}")
                tip = cf.description or cf.symbol
            cells.append(
                f"<td style='background:{colour}' "
                f"title='{_html_escape(tip)}'>{body}</td>"
            )
        lines.append("<tr>" + "".join(cells) + "</tr>")
    lines.append("</table>")
    return "\n".join(lines)


def grid_quality(
    view: CubeView, weights: Mapping[str, int] | None = None
) -> float:
    """The §5.2 quality factor over a view's full grid.

    ``Q = Σ pds(fb(i,j)) / (Ni·Nj·10)`` — the denominator counts the whole
    grid, so empty cross-points (confidence ``None`` → treated as ``uk``)
    drag the quality down, exactly as red cells do in the prototype.
    """
    pds = dict(DEFAULT_WEIGHTS if weights is None else weights)
    for symbol, w in pds.items():
        if not 0 <= w <= 10:
            raise QualityError(f"weight for {symbol!r} must be in 0..10, got {w}")
    confidences = view.confidences()
    if not confidences:
        return 0.0
    total = 0
    for cf in confidences:
        symbol = (cf or UK).symbol
        if symbol not in pds:
            raise QualityError(f"no weight declared for confidence {symbol!r}")
        total += pds[symbol]
    return total / (len(confidences) * 10)


def quality_report(
    cube: Cube,
    row_axis,
    col_axis,
    measure: str,
    *,
    weights: Mapping[str, int] | None = None,
    time_range=None,
) -> list[tuple[str, float, CubeView]]:
    """The same view in every temporal mode, ranked by grid quality —
    'the user can choose his best version among all temporal modes of
    presentation, according to its own criteria of quality' (§5.2)."""
    ranked = []
    for mode in cube.modes:
        view = cube.pivot(mode, row_axis, col_axis, measure, time_range=time_range)
        ranked.append((mode, grid_quality(view, weights), view))
    ranked.sort(key=lambda item: -item[1])
    return ranked


def explain_cell(mvft, coordinates, t, mode: str) -> str:
    """§5.2's drill-through: how was this cell calculated?

    "The user has a direct access to very precise information on the way
    the data were calculated and on the factors applied in conversions."
    Returns a multi-line explanation of the MultiVersion cell at
    ``(coordinates, t, mode)``: per-measure value, confidence and the
    provenance of every contribution (source member and applied mapping
    functions), or a note that the cell is an empty cross-point.
    """
    row = mvft.lookup(coordinates, t, mode)
    coords_text = ", ".join(f"{d}={m}" for d, m in sorted(dict(coordinates).items()))
    if row is None:
        return (
            f"cell ({coords_text}, t={t}, mode={mode}): empty cross-point — "
            f"no fact is presentable here (painted red in the grid)"
        )
    lines = [f"cell ({coords_text}, t={t}, mode={mode}):"]
    for measure, value in row.values.items():
        cf = row.confidence(measure)
        rendered = "?" if value is None else f"{value:g}"
        lines.append(f"  {measure} = {rendered}  [{cf.symbol}: {cf.description}]")
    lines.append("  computed from:")
    for step in row.provenance:
        lines.append(f"    - {step}")
    return "\n".join(lines)


def render_dimension_graph(dimension: TemporalDimension) -> str:
    """Figure 2: the dimension as a valid-time graph, one line per node
    and edge (``child -[from; to]-> parent``)."""
    lines = [f"Dimension {dimension.name!r}"]
    for mv in sorted(dimension.members.values(), key=lambda m: (m.start, m.mvid)):
        lines.append(
            f"  {mv.name} [{ym_str(mv.start)} ; {ym_str(mv.end)}]"
        )
        for rel in dimension.relationships_of(mv.mvid):
            if rel.child != mv.mvid:
                continue
            parent = dimension.member(rel.parent)
            lines.append(
                f"    -[{ym_str(rel.start)} ; {ym_str(rel.end)}]-> {parent.name}"
            )
    return "\n".join(lines)
