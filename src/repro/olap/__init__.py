"""The OLAP server and client tiers (Figure 1, §5.2).

* :mod:`~repro.olap.cube` — the hypercube over the MultiVersion fact
  table, with TMP/time/level axes and 2-D pivots;
* :mod:`~repro.olap.operators` — roll-up, drill-down, slice, dice, rotate
  and mode switching;
* :mod:`~repro.olap.aggregates` — the materialized aggregate lattice;
* :mod:`~repro.olap.frontend` — confidence-coloured rendering, the grid
  quality factor and the Figure 2 dimension-graph view.
"""

from .aggregates import AggregateLattice
from .cube import Axis, Cube, CubeView, LevelAxis, TimeAxis
from .frontend import (
    ANSI_COLOURS,
    HTML_COLOURS,
    explain_cell,
    grid_quality,
    quality_report,
    render_dimension_graph,
    render_view,
    render_view_html,
    snapshot_caption,
)
from .operators import (
    dice,
    drill_down,
    roll_up,
    rotate,
    slice_view,
    switch_mode,
    time_window,
)

__all__ = [
    "Cube",
    "CubeView",
    "Axis",
    "TimeAxis",
    "LevelAxis",
    "AggregateLattice",
    "roll_up",
    "drill_down",
    "slice_view",
    "dice",
    "rotate",
    "switch_mode",
    "time_window",
    "render_view",
    "render_view_html",
    "explain_cell",
    "HTML_COLOURS",
    "grid_quality",
    "quality_report",
    "render_dimension_graph",
    "snapshot_caption",
    "ANSI_COLOURS",
]
