"""Lazy aggregate lattice (§1.1: "query results are pre-calculated in the
form of aggregates") — a cache-backed view over the query engine.

Earlier revisions materialized every (mode × granularity × level) node
once, eagerly, at construction — and never again, so a pivot issued after
a write could silently serve pre-write totals.  The lattice is now a
*view*: each node is computed on first use against the **current**
versions, through a :class:`~repro.cache.VersionedResultCache` whose keys
bind the snapshot and structure versions (:mod:`repro.cache`).  Staleness
is structurally impossible — a write bumps the structure token, the old
entries stop matching, and the next pivot recomputes; repeated pivots
against an unchanged warehouse are pure cache hits, which is what the
ablation benchmark measures.
"""

from __future__ import annotations

from repro.cache import VersionedResultCache
from repro.core.chronology import Granularity, YEAR
from repro.core.confidence import ConfidenceFactor
from repro.core.errors import QueryError
from repro.core.multiversion import MultiVersionFactTable
from repro.core.query import LevelGroup, Query, QueryEngine, ResultTable, TimeGroup

__all__ = ["AggregateLattice"]

CellKey = tuple[object, object]

# Memory budget of the private per-lattice cache built when the caller
# does not supply a shared one.
DEFAULT_LATTICE_CACHE_BYTES = 16 * 1024 * 1024


class AggregateLattice:
    """Cache-backed (mode × granularity × level) aggregate nodes.

    ``cache`` shares a :class:`~repro.cache.VersionedResultCache` with
    other readers of the same warehouse (cube, MVQL sessions, server
    sessions); left ``None`` the lattice builds a private one.
    ``executor`` optionally runs node queries shard-parallel through a
    :class:`~repro.concurrency.sharding.ShardedExecutor`; results are
    identical to the serial engine by construction, and land in the same
    cache under the same keys.
    """

    def __init__(
        self,
        mvft: MultiVersionFactTable,
        *,
        granularities: tuple[Granularity, ...] = (YEAR,),
        executor=None,
        cache: VersionedResultCache | None = None,
        policy_digest: str | None = None,
    ) -> None:
        self.schema = mvft.schema
        self.granularities = granularities
        self.cache = (
            cache
            if cache is not None
            else VersionedResultCache(DEFAULT_LATTICE_CACHE_BYTES)
        )
        self.policy_digest = policy_digest
        self.executor = executor
        self._bind(mvft)

    def _bind(self, mvft: MultiVersionFactTable) -> None:
        self.mvft = mvft
        self.engine = QueryEngine(
            mvft, cache=self.cache, cache_policy_digest=self.policy_digest
        )

    def rebind(self, mvft: MultiVersionFactTable) -> None:
        """Point the lattice at a freshly inferred MultiVersion table.

        The cube calls this after rebuilding its own table so both share
        one inference pass.  Old cache entries stay resident (readers
        pinned to the old versions still hit them) but stop matching this
        lattice's keys, so nodes recompute lazily against the new table.
        """
        self._bind(mvft)
        if self.executor is not None:
            self.executor = _rebuild_executor(self.executor, mvft)

    def _refresh(self) -> None:
        """Rebuild against the live schema if it mutated since binding."""
        if self.mvft.is_stale():
            self.rebind(self.schema.multiversion_facts())

    # -- node computation -----------------------------------------------------------

    def _level_names(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for mode in self.mvft.modes.version_modes:
            version = mode.version
            assert version is not None
            for did in self.schema.dimension_ids:
                snap = version.dimension(did).at(version.valid_time.start)
                bucket = out.setdefault(did, [])
                for level in snap.levels():
                    if level not in bucket:
                        bucket.append(level)
        return out

    def _node_result(
        self, mode: str, granularity: Granularity, dimension: str, level: str
    ) -> ResultTable:
        """The grouped result behind one lattice node (cache-aware).

        Raises :class:`QueryError` when the mode is unknown or the level
        is absent from the mode's structure — the *only* condition the
        lattice treats as "no such node"; anything else (a broken
        aggregator, a bad confidence fold) propagates to the caller
        instead of being silently swallowed into an empty node.
        """
        query = Query(
            mode=mode,
            group_by=(TimeGroup(granularity), LevelGroup(dimension, level)),
        )
        if self.executor is None:
            return self.engine.execute(query)
        # The sharded executor carries its own engine; wrap it with the
        # same keyed lookup the serial path gets for free.
        key = self.cache.key_for(self.mvft, query, self.policy_digest)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        result = self.executor.execute(query)
        self.cache.put(key, result)
        return result

    def _project(
        self, result: ResultTable, measure: str
    ) -> dict[CellKey, tuple[float | None, ConfidenceFactor | None]]:
        return {
            row.group: (row.value(measure), row.confidence(measure))
            for row in result
        }

    # -- access --------------------------------------------------------------------

    def totals(
        self,
        mode: str,
        granularity: Granularity,
        dimension: str,
        level: str,
        measure: str,
    ) -> dict[CellKey, tuple[float | None, ConfidenceFactor | None]]:
        """One lattice node, computed against the current versions
        (empty dict when the node does not exist for this mode)."""
        self._refresh()
        if measure not in self.schema.measure_names:
            return {}
        try:
            result = self._node_result(mode, granularity, dimension, level)
        except QueryError:
            return {}
        return self._project(result, measure)

    def lookup(
        self,
        mode: str,
        granularity: Granularity,
        dimension: str,
        level: str,
        measure: str,
        group: CellKey,
    ) -> tuple[float | None, ConfidenceFactor | None] | None:
        """A single cell, or ``None`` on a lattice miss."""
        return self.totals(mode, granularity, dimension, level, measure).get(group)

    def _walk_nodes(self):
        """Force every node and yield ``(key, projected_node)`` pairs."""
        self._refresh()
        levels_by_dim = self._level_names()
        for mode in self.mvft.modes.labels:
            for gran in self.granularities:
                for did, levels in levels_by_dim.items():
                    for level in levels:
                        try:
                            result = self._node_result(mode, gran, did, level)
                        except QueryError:
                            continue  # level absent from this mode's structure
                        for measure in self.schema.measure_names:
                            key = (mode, gran.name, did, level, measure)
                            yield key, self._project(result, measure)

    @property
    def node_count(self) -> int:
        """Number of lattice nodes (forces full materialization)."""
        return sum(1 for _ in self._walk_nodes())

    def cell_count(self) -> int:
        """Total cells across nodes (forces full materialization)."""
        return sum(len(node) for _, node in self._walk_nodes())


def _rebuild_executor(executor, mvft: MultiVersionFactTable):
    """A same-shaped executor over a fresh table, or ``None`` when the
    executor type is not rebuild-aware (the serial engine still serves)."""
    try:
        return type(executor)(
            mvft, max_workers=executor.max_workers, shards=executor.shards
        )
    except (AttributeError, TypeError):
        return None
