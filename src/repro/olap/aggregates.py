"""Materialized aggregate lattice (§1.1: "query results are pre-calculated
in the form of aggregates").

The lattice precomputes, per presentation mode, the grouped totals for
every combination of a time granularity and a (dimension, level) pair —
the group-bys the cube's pivots ask for.  Pivot requests that hit a
materialized node are answered from the cache; misses fall through to the
query engine.  The ablation benchmark measures the hit-path speedup.
"""

from __future__ import annotations

from repro.core.chronology import Granularity, YEAR
from repro.core.confidence import ConfidenceFactor
from repro.core.multiversion import MultiVersionFactTable
from repro.core.query import LevelGroup, Query, QueryEngine, TimeGroup

__all__ = ["AggregateLattice"]

CellKey = tuple[object, object]


class AggregateLattice:
    """Precomputed (mode × granularity × level) aggregate nodes."""

    def __init__(
        self,
        mvft: MultiVersionFactTable,
        *,
        granularities: tuple[Granularity, ...] = (YEAR,),
        executor=None,
    ) -> None:
        self.mvft = mvft
        self.schema = mvft.schema
        self.engine = QueryEngine(mvft)
        # An optional ShardedExecutor (repro.concurrency.sharding) runs the
        # materialization queries shard-parallel; results are identical to
        # the serial engine by construction.
        self.executor = executor
        self.granularities = granularities
        self._nodes: dict[
            tuple[str, str, str, str, str],
            dict[CellKey, tuple[float | None, ConfidenceFactor | None]],
        ] = {}
        self._materialize()

    def _level_names(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for mode in self.mvft.modes.version_modes:
            version = mode.version
            assert version is not None
            for did in self.schema.dimension_ids:
                snap = version.dimension(did).at(version.valid_time.start)
                bucket = out.setdefault(did, [])
                for level in snap.levels():
                    if level not in bucket:
                        bucket.append(level)
        return out

    def _materialize(self) -> None:
        levels_by_dim = self._level_names()
        runner = self.executor if self.executor is not None else self.engine
        for mode in self.mvft.modes.labels:
            for gran in self.granularities:
                for did, levels in levels_by_dim.items():
                    for level in levels:
                        query = Query(
                            mode=mode,
                            group_by=(TimeGroup(gran), LevelGroup(did, level)),
                        )
                        try:
                            result = runner.execute(query)
                        except Exception:
                            continue  # a level absent from this mode's structure
                        for measure in self.schema.measure_names:
                            key = (mode, gran.name, did, level, measure)
                            node = self._nodes.setdefault(key, {})
                            for row in result:
                                node[row.group] = (
                                    row.value(measure),
                                    row.confidence(measure),
                                )

    # -- access --------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of materialized lattice nodes."""
        return len(self._nodes)

    def cell_count(self) -> int:
        """Total precomputed cells across nodes."""
        return sum(len(node) for node in self._nodes.values())

    def lookup(
        self,
        mode: str,
        granularity: Granularity,
        dimension: str,
        level: str,
        measure: str,
        group: CellKey,
    ) -> tuple[float | None, ConfidenceFactor | None] | None:
        """A precomputed cell, or ``None`` on a lattice miss."""
        node = self._nodes.get((mode, granularity.name, dimension, level, measure))
        if node is None:
            return None
        return node.get(group)

    def totals(
        self,
        mode: str,
        granularity: Granularity,
        dimension: str,
        level: str,
        measure: str,
    ) -> dict[CellKey, tuple[float | None, ConfidenceFactor | None]]:
        """A whole materialized node (empty dict when not materialized)."""
        return dict(
            self._nodes.get((mode, granularity.name, dimension, level, measure), {})
        )
