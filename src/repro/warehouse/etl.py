"""ETL: Extraction, Transformation, Loading (Figure 1's first tier).

Data of interest is extracted from operational sources, cleaned and
transformed before being loaded into the (temporal) data warehouse.  The
pipeline here is deliberately small but real: pluggable sources, ordered
cleaning rules that either fix or reject a record, a mapper from raw
records to fact coordinates, and load-time validation against the
temporal multidimensional schema (Definition 5's leaf/validity checks
reject inconsistent records rather than corrupting the warehouse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.chronology import Instant
from repro.core.errors import ReproError
from repro.core.schema import TemporalMultidimensionalSchema

__all__ = [
    "RawRecord",
    "OperationalSource",
    "CleaningRule",
    "FactMapping",
    "LoadReport",
    "ETLPipeline",
]

RawRecord = dict[str, Any]


@dataclass
class OperationalSource:
    """One operational/legacy system: a named stream of raw records."""

    name: str
    records: list[RawRecord] = field(default_factory=list)

    def extract(self) -> list[RawRecord]:
        """Pull all records (copies — extraction never mutates a source)."""
        return [dict(r) for r in self.records]


@dataclass(frozen=True)
class CleaningRule:
    """One cleaning step.

    ``fn`` receives a record and returns the cleaned record, or ``None``
    to reject it.  Rules run in declaration order; the first rejection
    wins and is reported with the rule's name.
    """

    name: str
    fn: Callable[[RawRecord], RawRecord | None]

    def apply(self, record: RawRecord) -> RawRecord | None:
        """Run the rule."""
        return self.fn(record)


@dataclass(frozen=True)
class FactMapping:
    """Maps a cleaned raw record onto fact-table coordinates.

    ``fn`` returns ``(coordinates, t, values)`` — dimension id → leaf
    member version id, the time instant, and measure values.
    """

    fn: Callable[[RawRecord], tuple[Mapping[str, str], Instant, Mapping[str, float | None]]]

    def apply(
        self, record: RawRecord
    ) -> tuple[Mapping[str, str], Instant, Mapping[str, float | None]]:
        """Run the mapping."""
        return self.fn(record)


@dataclass
class LoadReport:
    """Outcome of one pipeline run.

    ``failed_sources`` lists ``(source name, reason)`` for sources whose
    extraction failed outright (after any configured retries); the pipeline
    degrades gracefully and keeps loading the remaining sources.
    """

    extracted: int = 0
    loaded: int = 0
    rejected: list[tuple[RawRecord, str]] = field(default_factory=list)
    failed_sources: list[tuple[str, str]] = field(default_factory=list)

    @property
    def rejected_count(self) -> int:
        """Number of rejected records."""
        return len(self.rejected)

    @property
    def failed_source_count(self) -> int:
        """Number of sources whose extraction failed."""
        return len(self.failed_sources)

    @property
    def complete(self) -> bool:
        """Whether every source was extracted successfully."""
        return not self.failed_sources

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadReport(extracted={self.extracted}, loaded={self.loaded}, "
            f"rejected={self.rejected_count}, "
            f"failed_sources={self.failed_source_count})"
        )


class ETLPipeline:
    """Extract → clean → transform → load into a TMD schema."""

    def __init__(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        rules: Sequence[CleaningRule] = (),
        mapping: FactMapping,
        retry: Any = None,
        fault_injector: Any = None,
    ) -> None:
        """``retry`` is an optional policy (any object with a
        ``call(fn) -> result`` method, e.g.
        :class:`repro.robustness.retry.RetryPolicy`) applied to each
        ``source.extract()`` — operational sources are the flaky edge of
        the architecture.  ``fault_injector`` is a duck-typed hook (an
        object with ``fire(point)``) firing the ``etl.extract`` fault point
        before each extraction."""
        self.schema = schema
        self.rules = list(rules)
        self.mapping = mapping
        self.retry = retry
        self.fault_injector = fault_injector

    def _extract(self, source: OperationalSource) -> list[RawRecord]:
        if self.fault_injector is not None:
            self.fault_injector.fire("etl.extract")
        if self.retry is not None:
            return self.retry.call(source.extract)
        return source.extract()

    def run(self, sources: Iterable[OperationalSource]) -> LoadReport:
        """Run the pipeline over all sources and return the load report.

        Records failing a cleaning rule, the fact mapping, or the schema's
        Definition 5 validation are collected in ``report.rejected`` with a
        reason string — the warehouse only ever receives consistent data.
        A source whose extraction raises (after any configured retries) is
        recorded in ``report.failed_sources`` and the load continues with
        the remaining sources instead of aborting wholesale.
        """
        report = LoadReport()
        for source in sources:
            try:
                records = self._extract(source)
            except Exception as exc:
                report.failed_sources.append(
                    (source.name, f"{type(exc).__name__}: {exc}")
                )
                continue
            for record in records:
                report.extracted += 1
                cleaned: RawRecord | None = record
                rejected_by: str | None = None
                for rule in self.rules:
                    assert cleaned is not None
                    cleaned = rule.apply(cleaned)
                    if cleaned is None:
                        rejected_by = f"cleaning rule {rule.name!r}"
                        break
                if cleaned is None:
                    report.rejected.append((record, rejected_by or "cleaning"))
                    continue
                try:
                    coordinates, t, values = self.mapping.apply(cleaned)
                except Exception as exc:  # mapper bugs must not kill the load
                    report.rejected.append((record, f"mapping error: {exc}"))
                    continue
                try:
                    self.schema.add_fact(coordinates, t, values)
                except ReproError as exc:
                    report.rejected.append((record, f"schema rejection: {exc}"))
                    continue
                report.loaded += 1
        return report
