"""ETL: Extraction, Transformation, Loading (Figure 1's first tier).

Data of interest is extracted from operational sources, cleaned and
transformed before being loaded into the (temporal) data warehouse.  The
pipeline here is deliberately small but real: pluggable sources, ordered
cleaning rules that either fix or reject a record, a mapper from raw
records to fact coordinates, and load-time validation against the
temporal multidimensional schema (Definition 5's leaf/validity checks
reject inconsistent records rather than corrupting the warehouse).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.chronology import Instant
from repro.core.errors import ReproError
from repro.core.schema import TemporalMultidimensionalSchema
from repro.observability import runtime as _obs
from repro.robustness.errors import RobustnessError

__all__ = [
    "RawRecord",
    "OperationalSource",
    "CleaningRule",
    "FactMapping",
    "LoadReport",
    "ETLPipeline",
]

RawRecord = dict[str, Any]


@dataclass
class OperationalSource:
    """One operational/legacy system: a named stream of raw records."""

    name: str
    records: list[RawRecord] = field(default_factory=list)

    def extract(self) -> list[RawRecord]:
        """Pull all records (copies — extraction never mutates a source)."""
        return [dict(r) for r in self.records]


@dataclass(frozen=True)
class CleaningRule:
    """One cleaning step.

    ``fn`` receives a record and returns the cleaned record, or ``None``
    to reject it.  Rules run in declaration order; the first rejection
    wins and is reported with the rule's name.
    """

    name: str
    fn: Callable[[RawRecord], RawRecord | None]

    def apply(self, record: RawRecord) -> RawRecord | None:
        """Run the rule."""
        return self.fn(record)


@dataclass(frozen=True)
class FactMapping:
    """Maps a cleaned raw record onto fact-table coordinates.

    ``fn`` returns ``(coordinates, t, values)`` — dimension id → leaf
    member version id, the time instant, and measure values.
    """

    fn: Callable[[RawRecord], tuple[Mapping[str, str], Instant, Mapping[str, float | None]]]

    def apply(
        self, record: RawRecord
    ) -> tuple[Mapping[str, str], Instant, Mapping[str, float | None]]:
        """Run the mapping."""
        return self.fn(record)


@dataclass
class LoadReport:
    """Outcome of one pipeline run.

    ``failed_sources`` lists ``(source name, reason)`` for sources whose
    extraction failed outright (after any configured retries); the pipeline
    degrades gracefully and keeps loading the remaining sources.
    """

    extracted: int = 0
    loaded: int = 0
    rejected: list[tuple[RawRecord, str]] = field(default_factory=list)
    failed_sources: list[tuple[str, str]] = field(default_factory=list)

    @property
    def rejected_count(self) -> int:
        """Number of rejected records."""
        return len(self.rejected)

    @property
    def failed_source_count(self) -> int:
        """Number of sources whose extraction failed."""
        return len(self.failed_sources)

    @property
    def complete(self) -> bool:
        """Whether every source was extracted successfully."""
        return not self.failed_sources

    def merge(self, other: "LoadReport") -> "LoadReport":
        """Fold another (per-source) report into this one, in call order.

        The parallel pipeline produces one report per source and merges
        them *in source order*, so a fan-out run's report is identical to
        the sequential run's — counts, reject order and failed-source
        order included.
        """
        self.extracted += other.extracted
        self.loaded += other.loaded
        self.rejected.extend(other.rejected)
        self.failed_sources.extend(other.failed_sources)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadReport(extracted={self.extracted}, loaded={self.loaded}, "
            f"rejected={self.rejected_count}, "
            f"failed_sources={self.failed_source_count})"
        )


class ETLPipeline:
    """Extract → clean → transform → load into a TMD schema."""

    def __init__(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        rules: Sequence[CleaningRule] = (),
        mapping: FactMapping,
        retry: Any = None,
        fault_injector: Any = None,
        tracer: Any = None,
        metrics: Any = None,
        transactions: Any = None,
    ) -> None:
        """``retry`` is an optional policy (any object with a
        ``call(fn) -> result`` method, e.g.
        :class:`repro.robustness.retry.RetryPolicy`) applied to each
        ``source.extract()`` — operational sources are the flaky edge of
        the architecture.  ``fault_injector`` is a duck-typed hook (an
        object with ``fire(point)``) firing the ``etl.extract`` fault point
        before each extraction.  ``tracer`` / ``metrics`` inject
        observability instruments; ``None`` routes through the process-wide
        defaults of :mod:`repro.observability`.

        ``transactions`` is an optional
        :class:`~repro.robustness.transactions.TransactionManager` over the
        same ``schema``.  When given, each source loads inside its own
        transaction — its facts are journaled to the manager's WAL and
        survive crash recovery, and a failure mid-load (a tripped fault
        point, a full journal) rolls the whole source back instead of
        leaving a half-loaded source in the warehouse."""
        if transactions is not None and transactions.schema is not schema:
            raise ReproError(
                "transactions= manages a different schema than this "
                "pipeline loads into"
            )
        self.schema = schema
        self.rules = list(rules)
        self.mapping = mapping
        self.retry = retry
        self.fault_injector = fault_injector
        self.transactions = transactions
        self._tracer = tracer
        self._metrics = metrics

    def _observability(self) -> tuple[Any, Any]:
        tracer = self._tracer if self._tracer is not None else _obs.current_tracer()
        metrics = (
            self._metrics if self._metrics is not None else _obs.current_metrics()
        )
        return tracer, metrics

    def _extract(self, source: OperationalSource) -> list[RawRecord]:
        if self.fault_injector is not None:
            self.fault_injector.fire("etl.extract")
        if self.retry is not None:
            return self.retry.call(source.extract)
        return source.extract()

    @staticmethod
    def _failure_detail(exc: BaseException) -> str:
        """The failed-source reason: the *underlying* class and message.

        A retry policy wraps the last failure in a ``RetryExhaustedError``;
        reporting that wrapper alone would hide what actually went wrong,
        so the detail unwraps to the root exception and keeps the attempt
        count — degraded loads stay diagnosable from the report alone.
        """
        last = getattr(exc, "last", None)
        attempts = getattr(exc, "attempts", None)
        if last is not None:
            detail = f"{type(last).__name__}: {last}"
            if attempts is not None:
                detail += f" (after {attempts} attempts)"
            return detail
        return f"{type(exc).__name__}: {exc}"

    def run(
        self,
        sources: Iterable[OperationalSource],
        *,
        max_workers: int | None = None,
    ) -> LoadReport:
        """Run the pipeline over all sources and return the load report.

        Records failing a cleaning rule, the fact mapping, or the schema's
        Definition 5 validation are collected in ``report.rejected`` with a
        reason string — the warehouse only ever receives consistent data.
        A source whose extraction raises (after any configured retries) is
        recorded in ``report.failed_sources`` (with the underlying
        exception class and message) and the load continues with the
        remaining sources instead of aborting wholesale.

        With ``max_workers > 1`` the *extraction* phase fans the sources
        out on a thread pool — extraction is the slow, I/O-bound edge of
        the Figure-1 architecture, and each source's state is already
        isolated.  Cleaning and loading (which mutate the shared schema)
        then run sequentially in source order, and the per-source reports
        merge in source order, so the parallel report is identical to the
        sequential one; per-source failure isolation is preserved.
        """
        sources = list(sources)
        tracer, metrics = self._observability()
        with tracer.span(
            "etl.run",
            attributes={"sources": len(sources), "workers": max_workers or 1},
        ) as run_span:
            extractions = self._extract_all(sources, max_workers, tracer, run_span)
            report = LoadReport()
            for source, (records, failure) in zip(sources, extractions):
                if failure is not None:
                    report.failed_sources.append((source.name, failure))
                    continue
                report.merge(
                    self._load_source(source, records, tracer, run_span)
                )
        if metrics.enabled:
            metrics.counter("etl.runs").inc()
            metrics.counter("etl.records_extracted").inc(report.extracted)
            metrics.counter("etl.records_loaded").inc(report.loaded)
            metrics.counter("etl.records_rejected").inc(report.rejected_count)
            metrics.counter("etl.sources_failed").inc(report.failed_source_count)
        return report

    def _extract_all(
        self,
        sources: list[OperationalSource],
        max_workers: int | None,
        tracer: Any,
        parent: Any,
    ) -> list[tuple[list[RawRecord], str | None]]:
        """Extract every source, serially or on a pool; outcomes keep
        source order: ``(records, None)`` or ``([], failure detail)``."""

        def extract_one(
            source: OperationalSource,
        ) -> tuple[list[RawRecord], str | None]:
            with tracer.span(
                "etl.extract", parent=parent, attributes={"source": source.name}
            ) as span:
                try:
                    records = self._extract(source)
                except Exception as exc:
                    detail = self._failure_detail(exc)
                    span.set("failed", detail)
                    return [], detail
                span.set("records", len(records))
                return records, None

        if max_workers is not None and max_workers > 1 and len(sources) > 1:
            with ThreadPoolExecutor(
                max_workers=min(max_workers, len(sources))
            ) as pool:
                return list(pool.map(extract_one, sources))
        return [extract_one(source) for source in sources]

    def _load_source(
        self,
        source: OperationalSource,
        records: list[RawRecord],
        tracer: Any,
        parent: Any,
    ) -> LoadReport:
        """Clean and load one extracted source into its own report."""
        report = LoadReport()
        with tracer.span(
            "etl.source", parent=parent, attributes={"source": source.name}
        ):
            # Survivors keep their extraction row index: the loaded fact is
            # tagged "<source>#<index>", so lineage can name the exact
            # operational row a contribution came from.
            survivors: list[tuple[int, RawRecord, RawRecord]] = []
            with tracer.span(
                "etl.clean", attributes={"source": source.name}
            ) as clean_span:
                for index, record in enumerate(records):
                    report.extracted += 1
                    cleaned: RawRecord | None = record
                    rejected_by: str | None = None
                    for rule in self.rules:
                        assert cleaned is not None
                        cleaned = rule.apply(cleaned)
                        if cleaned is None:
                            rejected_by = f"cleaning rule {rule.name!r}"
                            break
                    if cleaned is None:
                        report.rejected.append((record, rejected_by or "cleaning"))
                        continue
                    survivors.append((index, record, cleaned))
                clean_span.set("rejected", report.rejected_count)
            with tracer.span(
                "etl.load", attributes={"source": source.name}
            ) as load_span:
                if self.transactions is not None:
                    try:
                        with self.transactions.transaction():
                            self._load_records(source.name, survivors, report)
                    except Exception as exc:
                        # The transaction rolled back: whatever this source
                        # loaded is gone as a unit, and the source joins the
                        # failed list like an extraction failure would.
                        detail = self._failure_detail(exc)
                        load_span.set("rolled_back", detail)
                        report.loaded = 0
                        report.failed_sources.append(
                            (source.name, f"load rolled back: {detail}")
                        )
                else:
                    self._load_records(source.name, survivors, report)
                load_span.set("loaded", report.loaded)
        return report

    def _load_records(
        self,
        source_name: str,
        survivors: list[tuple[int, RawRecord, RawRecord]],
        report: LoadReport,
    ) -> None:
        """Map and load cleaned records, collecting per-record rejections.

        With a transaction manager attached the facts go through
        :meth:`~repro.robustness.transactions.TransactionManager.add_fact`
        (undo + WAL ``fact`` record); schema rejections stay per-record,
        but a robustness-layer failure (journal, fault point) propagates so
        the surrounding transaction aborts the source as a whole.  Each
        loaded fact carries ``source="<source>#<extraction-index>"``.
        """
        for index, record, cleaned in survivors:
            try:
                coordinates, t, values = self.mapping.apply(cleaned)
            except Exception as exc:  # mapper bugs must not kill the load
                report.rejected.append((record, f"mapping error: {exc}"))
                continue
            origin = f"{source_name}#{index}"
            try:
                if self.transactions is not None:
                    self.transactions.add_fact(
                        coordinates, t, values, source=origin
                    )
                else:
                    self.schema.add_fact(coordinates, t, values, source=origin)
            except RobustnessError:
                raise
            except ReproError as exc:
                report.rejected.append((record, f"schema rejection: {exc}"))
                continue
            report.loaded += 1
