"""Incremental maintenance of the MultiVersion fact table.

Data warehouses load continuously; rebuilding the whole MultiVersion fact
table (Definition 11) on every batch is wasteful because *appending a
fact never changes the structure versions* — only dimension evolutions
do.  :class:`IncrementalMultiVersion` therefore:

* builds the table once,
* folds each appended fact into the affected cells of every mode (routing
  it exactly like the batch builder, reusing a route cache),
* rebuilds from scratch only when the caller signals a structural change
  (:meth:`invalidate`).

Folding a contribution into an existing cell is only sound for
*associative* measure aggregates whose fold over ``[a, b, c]`` equals the
fold over ``[fold([a, b]), c]`` — sum, min and max qualify; count and avg
do not (a count of counts is not a count).  Measures with non-foldable
aggregates are rejected at construction.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.chronology import Instant
from repro.core.confidence import SD
from repro.core.errors import ModelError
from repro.core.facts import MAX, MIN, SUM, FactRow
from repro.core.multiversion import MVFactRow, MultiVersionFactTable, UnmappedFact
from repro.core.schema import TemporalMultidimensionalSchema

__all__ = ["IncrementalMultiVersion"]

_FOLDABLE = (type(SUM), type(MIN), type(MAX))


class IncrementalMultiVersion:
    """A MultiVersion fact table kept current under fact appends."""

    def __init__(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        max_hops: int = 8,
    ) -> None:
        for measure in schema.measures:
            if not isinstance(measure.aggregate, _FOLDABLE):
                raise ModelError(
                    f"incremental maintenance needs a foldable aggregate; "
                    f"measure {measure.name!r} uses "
                    f"{measure.aggregate.name!r} (rebuild in batch instead)"
                )
        self.schema = schema
        self.max_hops = max_hops
        self._mvft: MultiVersionFactTable | None = None
        self._route_cache: dict = {}
        self._leaf_cache: dict[tuple[str, str], frozenset[str]] = {}

    # -- access -------------------------------------------------------------------

    @property
    def mvft(self) -> MultiVersionFactTable:
        """The current table (built lazily, updated incrementally)."""
        if self._mvft is None:
            self._mvft = MultiVersionFactTable.build(
                self.schema, max_hops=self.max_hops
            )
        return self._mvft

    def invalidate(self) -> None:
        """Signal a *structural* change (evolution operators applied):
        the next access rebuilds from scratch."""
        self._mvft = None
        self._route_cache = {}
        self._leaf_cache = {}

    # -- appends ---------------------------------------------------------------------

    def append_fact(
        self,
        coordinates: Mapping[str, str],
        t: Instant,
        values: Mapping[str, float | None] | None = None,
        **value_kwargs: float | None,
    ) -> FactRow:
        """Validate, record and fold one new fact into every mode."""
        mvft = self.mvft  # ensure built before the schema grows
        fact = self.schema.add_fact(coordinates, t, values, **value_kwargs)
        self._fold_tcm(mvft, fact)
        for mode in mvft.modes.version_modes:
            self._fold_mode(mvft, mode.label, fact)
        return fact

    # -- folding ----------------------------------------------------------------------

    def _fold_tcm(self, mvft: MultiVersionFactTable, fact: FactRow) -> None:
        measures = self.schema.measure_names
        row = MVFactRow(
            coordinates=dict(fact.coordinates),
            t=fact.t,
            mode="tcm",
            values={m: fact.value(m) for m in measures},
            confidences={m: SD for m in measures},
            provenance=("source data",),
        )
        self._store(mvft, "tcm", row)

    def _fold_mode(
        self, mvft: MultiVersionFactTable, label: str, fact: FactRow
    ) -> None:
        import itertools

        mode = mvft.modes.mode(label)
        version = mode.version
        assert version is not None
        measures = self.schema.measure_names
        aggregator = self.schema.cf_aggregator
        routes_per_dim = []
        for did in self.schema.dimension_ids:
            source = fact.coordinate(did)
            cache_key = (source, version.vsid, did)
            if cache_key not in self._route_cache:
                leaf_key = (version.vsid, did)
                if leaf_key not in self._leaf_cache:
                    self._leaf_cache[leaf_key] = version.leaf_ids(did)
                self._route_cache[cache_key] = self.schema.mappings.routes(
                    source,
                    self._leaf_cache[leaf_key],
                    measures=measures,
                    max_hops=self.max_hops,
                )
            routes = self._route_cache[cache_key]
            if not routes:
                mvft._unmapped.append(
                    UnmappedFact(fact=fact, mode=label, dimension=did, source=source)
                )
                return
            routes_per_dim.append(routes)

        for combo in itertools.product(*routes_per_dim):
            coords = {
                did: route.target
                for did, route in zip(self.schema.dimension_ids, combo)
            }
            values: dict[str, float | None] = {}
            confidences = {}
            for m in measures:
                value = fact.value(m)
                confidence = SD
                for route in combo:
                    value = route.convert(m, value)
                    confidence = aggregator.combine(confidence, route.confidence(m))
                values[m] = value
                confidences[m] = confidence
            provenance = tuple(
                f"{route.source} -> {route.target}" for route in combo if route.hops
            ) or ("valid in version (source data)",)
            row = MVFactRow(
                coordinates=coords,
                t=fact.t,
                mode=label,
                values=values,
                confidences=confidences,
                provenance=provenance,
            )
            self._store(mvft, label, row)

    def _store(
        self, mvft: MultiVersionFactTable, label: str, contribution: MVFactRow
    ) -> None:
        """Fold a contribution into the live table's cell (or create it)."""
        key = (
            tuple(sorted(contribution.coordinates.items())),
            contribution.t,
            label,
        )
        existing = mvft._index.get(key)
        if existing is None:
            mvft._rows_by_mode.setdefault(label, []).append(contribution)
            mvft._index[key] = contribution
            return
        measures = self.schema.measure_names
        merged_values: dict[str, float | None] = {}
        merged_confidences = {}
        for m in measures:
            agg = self.schema.measure(m).aggregate
            merged_values[m] = agg.combine_all(
                [existing.value(m), contribution.value(m)]
            )
            merged_confidences[m] = self.schema.cf_aggregator.combine(
                existing.confidence(m), contribution.confidence(m)
            )
        merged = MVFactRow(
            coordinates=dict(existing.coordinates),
            t=existing.t,
            mode=label,
            values=merged_values,
            confidences=merged_confidences,
            provenance=existing.provenance + contribution.provenance,
        )
        rows = mvft._rows_by_mode[label]
        for i, row in enumerate(rows):
            if row is existing:
                rows[i] = merged
                break
        mvft._index[key] = merged
