"""The Temporal Data Warehouse (§5.1, first store of the architecture).

Contains the Temporal Multidimensional Schema — temporally consistent data
— and the metadata related to it, including the mapping relations.  On the
relational engine that means:

* ``member_versions`` — one row per member version with its valid time;
* ``temporal_relationships`` — the valid-time rollup edges;
* ``consistent_facts`` — the Definition 5 fact table;
* ``mapping_relations`` — the Table 12 metadata
  (:mod:`repro.warehouse.mapping_table`);
* ``evolution_journal`` — the basic-operator trace (§5.2's "short textual
  description of the transformations that have affected a member").
"""

from __future__ import annotations

from repro.core.chronology import NowType
from repro.core.operators import OperatorRecord
from repro.core.schema import TemporalMultidimensionalSchema
from repro.storage import Column, Database, FLOAT, INTEGER, TEXT
from .mapping_table import build_mapping_table

__all__ = ["TemporalDataWarehouse"]


class TemporalDataWarehouse:
    """The relational form of a Temporal Multidimensional Schema."""

    MEMBER_TABLE = "member_versions"
    RELATIONSHIP_TABLE = "temporal_relationships"
    FACT_TABLE = "consistent_facts"
    JOURNAL_TABLE = "evolution_journal"

    def __init__(self, schema: TemporalMultidimensionalSchema, db: Database) -> None:
        self.schema = schema
        self.db = db

    @classmethod
    def from_schema(
        cls,
        schema: TemporalMultidimensionalSchema,
        journal: list[OperatorRecord] | None = None,
    ) -> "TemporalDataWarehouse":
        """Materialize a schema (and optionally its operator journal)."""
        db = Database("temporal_dw")

        members = db.create_table(
            cls.MEMBER_TABLE,
            [
                Column("did", TEXT),
                Column("mvid", TEXT),
                Column("name", TEXT),
                Column("level", TEXT, nullable=True),
                Column("valid_from", INTEGER),
                Column("valid_to", INTEGER, nullable=True),
            ],
            primary_key=["mvid"],
        )
        relationships = db.create_table(
            cls.RELATIONSHIP_TABLE,
            [
                Column("did", TEXT),
                Column("child", TEXT),
                Column("parent", TEXT),
                Column("valid_from", INTEGER),
                Column("valid_to", INTEGER, nullable=True),
            ],
            primary_key=["did", "child", "parent", "valid_from"],
        )
        for did, dim in schema.dimensions.items():
            for mv in dim.members.values():
                members.insert(
                    {
                        "did": did,
                        "mvid": mv.mvid,
                        "name": mv.name,
                        "level": mv.level,
                        "valid_from": mv.start,
                        "valid_to": None if isinstance(mv.end, NowType) else mv.end,
                    }
                )
            for rel in dim.relationships:
                relationships.insert(
                    {
                        "did": did,
                        "child": rel.child,
                        "parent": rel.parent,
                        "valid_from": rel.start,
                        "valid_to": None if isinstance(rel.end, NowType) else rel.end,
                    }
                )

        fact_columns = [Column(did, TEXT) for did in schema.dimension_ids]
        fact_columns.append(Column("t", INTEGER))
        fact_columns.extend(
            Column(m, FLOAT, nullable=True) for m in schema.measure_names
        )
        facts = db.create_table(
            cls.FACT_TABLE,
            fact_columns,
            primary_key=[*schema.dimension_ids, "t"],
        )
        for row in schema.facts:
            record = {did: row.coordinate(did) for did in schema.dimension_ids}
            record["t"] = row.t
            record.update({m: row.value(m) for m in schema.measure_names})
            facts.insert(record)

        build_mapping_table(db, schema)

        journal_table = db.create_table(
            cls.JOURNAL_TABLE,
            [
                Column("seq", INTEGER),
                Column("operator", TEXT),
                Column("rendering", TEXT),
            ],
            primary_key=["seq"],
        )
        for seq, record in enumerate(journal or []):
            journal_table.insert(
                {"seq": seq, "operator": record.operator, "rendering": record.rendering}
            )
        return cls(schema, db)

    # -- convenience views ----------------------------------------------------------

    def member_rows(self, did: str | None = None) -> list[dict]:
        """Rows of the member-version table (optionally one dimension)."""
        table = self.db.table(self.MEMBER_TABLE)
        if did is None:
            return list(table.rows())
        return table.find(did=did)

    def fact_rows(self) -> list[dict]:
        """Rows of the consistent fact table."""
        return list(self.db.table(self.FACT_TABLE).rows())

    def journal_rows(self) -> list[dict]:
        """The evolution journal, in application order."""
        rows = list(self.db.table(self.JOURNAL_TABLE).rows())
        return sorted(rows, key=lambda r: r["seq"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TemporalDataWarehouse({self.db.row_counts()})"
