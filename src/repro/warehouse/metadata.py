"""Metadata for end users (§5.2).

Two categories:

* metadata related to **member versions** — valid time, member name,
  position in the hierarchy (stored in the dimension tables and surfaced
  here as plain records);
* metadata related to **evolutions** — the mapping relations (Table 12,
  see :mod:`repro.warehouse.mapping_table`) and short textual descriptions
  of the transformations that affected a member, derived from the
  basic-operator journal.
"""

from __future__ import annotations

from repro.core.chronology import ym_str
from repro.core.operators import OperatorRecord
from repro.core.schema import TemporalMultidimensionalSchema

__all__ = ["member_version_metadata", "member_history", "describe_evolutions"]


def member_version_metadata(
    schema: TemporalMultidimensionalSchema, did: str
) -> list[dict]:
    """One record per member version of a dimension: id, member name,
    level, valid time (both raw and month/year labels)."""
    dim = schema.dimension(did)
    records = []
    for mv in sorted(dim.members.values(), key=lambda m: (m.start, m.mvid)):
        records.append(
            {
                "mvid": mv.mvid,
                "name": mv.name,
                "level": mv.level,
                "valid_from": mv.start,
                "valid_to": mv.end,
                "valid_from_label": ym_str(mv.start),
                "valid_to_label": ym_str(mv.end),
            }
        )
    return records


def member_history(
    schema: TemporalMultidimensionalSchema, did: str, member_name: str
) -> list[dict]:
    """The version chain of one member (by name) with its rollup targets
    over time — the §5.2 'position in the hierarchy of dimension'."""
    dim = schema.dimension(did)
    history = []
    for mv in dim.versions_of(member_name):
        parents = []
        for rel in dim.relationships_of(mv.mvid):
            if rel.child == mv.mvid:
                parents.append(
                    {
                        "parent": dim.member(rel.parent).name,
                        "from": ym_str(rel.start),
                        "to": ym_str(rel.end),
                    }
                )
        history.append(
            {
                "mvid": mv.mvid,
                "valid_from": ym_str(mv.start),
                "valid_to": ym_str(mv.end),
                "parents": parents,
            }
        )
    return history


def describe_evolutions(
    schema: TemporalMultidimensionalSchema,
    journal: list[OperatorRecord],
    mvid: str,
) -> list[str]:
    """Short textual descriptions of the transformations affecting a
    member version, in application order (§5.2's user-facing metadata)."""
    sentences: list[str] = []
    for record in journal:
        args = record.arguments
        if record.operator == "Insert" and args.get("mvid") == mvid:
            sentences.append(
                f"created at {ym_str(args['ti'])} as {args['name']!r}"
                + (
                    f" under {sorted(args['parents'])}"
                    if args.get("parents")
                    else ""
                )
            )
        elif record.operator == "Exclude" and args.get("mvid") == mvid:
            sentences.append(f"excluded on and after {ym_str(args['tf'])}")
        elif record.operator == "Reclassify" and args.get("mvid") == mvid:
            sentences.append(
                f"reclassified at {ym_str(args['ti'])} from "
                f"{sorted(args['old_parents'])} to {sorted(args['new_parents'])}"
            )
        elif record.operator == "Associate" and mvid in (
            args.get("source"),
            args.get("target"),
        ):
            other = args["target"] if args.get("source") == mvid else args["source"]
            role = "mapped onto" if args.get("source") == mvid else "mapped from"
            sentences.append(f"{role} {other!r}")
    return sentences
