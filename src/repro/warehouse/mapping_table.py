"""The mapping-relations metadata table (§5.2, Table 12).

In the prototype, mapping functions are linear — ``f(x) = k·x`` — and a
confidence code is attached per mapping relation (and its symmetrical),
not per function.  Table 12's layout is::

    From       To        k for m1  k for m2  k-1 for m1  k-1 for m2  Confidence  Confidence-1
    Dpt.Jones  Dpt.Paul  0.6       0.8       1           1           1           2
    Dpt.Jones  Dpt.Bill  0.4       0.2       1           1           1           2

This module builds exactly that table on the relational engine: one row
per mapping relation, a ``k_<measure>`` / ``k_inv_<measure>`` column pair
per measure (NULL for unknown mappings) and the §5.2 integer confidence
codes (3=sd, 2=em, 1=am, 4=uk), derived per relation by folding the
per-measure confidences with ``⊗cf``.
"""

from __future__ import annotations

from typing import Any

from repro.core.mapping import LinearMapping, MappingRelationship
from repro.core.schema import TemporalMultidimensionalSchema
from repro.storage import Column, Database, FLOAT, INTEGER, TEXT, Table

__all__ = ["MAPPING_TABLE", "k_column", "k_inv_column", "build_mapping_table", "mapping_relations_extract"]

MAPPING_TABLE = "mapping_relations"
"""Canonical name of the mapping-relations metadata table."""


def k_column(measure: str) -> str:
    """Column carrying the forward linear factor of ``measure``."""
    return f"k_{measure}"


def k_inv_column(measure: str) -> str:
    """Column carrying the reverse linear factor of ``measure``."""
    return f"k_inv_{measure}"


def _linear_factor(rel: MappingRelationship, measure: str, direction: str) -> float | None:
    mm = rel.measure_map(measure, direction=direction)
    if isinstance(mm.function, LinearMapping):
        return mm.function.k
    return None  # unknown or non-linear: outside the prototype's metadata


def _relation_confidence(
    schema: TemporalMultidimensionalSchema, rel: MappingRelationship, direction: str
) -> int:
    factors = [
        rel.measure_map(m, direction=direction).confidence
        for m in schema.measure_names
    ]
    return schema.cf_aggregator.combine_all(factors).code


def mapping_relations_extract(
    schema: TemporalMultidimensionalSchema,
) -> list[dict[str, Any]]:
    """Table 12 as plain dictionaries (names, not ids, like the paper).

    One row per mapping relation: member names of both endpoints, linear
    factors per measure in both directions, and the two §5.2 confidence
    codes.
    """
    rows: list[dict[str, Any]] = []
    for rel in schema.mappings:
        src_dim, _ = schema.find_member(rel.source)
        row: dict[str, Any] = {
            "from": src_dim.member(rel.source).name,
            "to": src_dim.member(rel.target).name,
        }
        for m in schema.measure_names:
            row[k_column(m)] = _linear_factor(rel, m, "forward")
            row[k_inv_column(m)] = _linear_factor(rel, m, "reverse")
        row["confidence"] = _relation_confidence(schema, rel, "forward")
        row["confidence_inv"] = _relation_confidence(schema, rel, "reverse")
        rows.append(row)
    return rows


def build_mapping_table(
    db: Database, schema: TemporalMultidimensionalSchema
) -> Table:
    """Materialize the mapping-relations metadata on the relational engine.

    Keys are the member-version ids (``from_id``, ``to_id``); display
    names are carried alongside so front ends can print Table 12 without
    a join.
    """
    columns = [
        Column("from_id", TEXT),
        Column("to_id", TEXT),
        Column("from_name", TEXT),
        Column("to_name", TEXT),
    ]
    for m in schema.measure_names:
        columns.append(Column(k_column(m), FLOAT, nullable=True))
        columns.append(Column(k_inv_column(m), FLOAT, nullable=True))
    columns.append(Column("confidence", INTEGER))
    columns.append(Column("confidence_inv", INTEGER))
    table = db.create_table(MAPPING_TABLE, columns, primary_key=["from_id", "to_id"])

    for rel in schema.mappings:
        src_dim, _ = schema.find_member(rel.source)
        row: dict[str, Any] = {
            "from_id": rel.source,
            "to_id": rel.target,
            "from_name": src_dim.member(rel.source).name,
            "to_name": src_dim.member(rel.target).name,
            "confidence": _relation_confidence(schema, rel, "forward"),
            "confidence_inv": _relation_confidence(schema, rel, "reverse"),
        }
        for m in schema.measure_names:
            row[k_column(m)] = _linear_factor(rel, m, "forward")
            row[k_inv_column(m)] = _linear_factor(rel, m, "reverse")
        table.insert(row)
    return table
