"""The §5 physical architecture: ETL → Temporal DW → MultiVersion DW.

* :mod:`~repro.warehouse.etl` — extraction, cleaning, transformation and
  validated loading into a TMD schema (Figure 1's first tier);
* :mod:`~repro.warehouse.temporal_dw` — the Temporal Data Warehouse:
  consistent data plus metadata, on the relational engine;
* :mod:`~repro.warehouse.mapping_table` — the Table 12 mapping-relations
  metadata;
* :mod:`~repro.warehouse.multiversion_dw` — the MultiVersion Data
  Warehouse (full replication, as the prototype);
* :mod:`~repro.warehouse.delta` — the differences-only storage the paper
  sketches against the replication redundancy;
* :mod:`~repro.warehouse.metadata` — user-facing member/evolution
  metadata.
"""

from .delta import DeltaMultiVersionStore
from .incremental import IncrementalMultiVersion
from .etl import (
    CleaningRule,
    ETLPipeline,
    FactMapping,
    LoadReport,
    OperationalSource,
    RawRecord,
)
from .mapping_table import (
    MAPPING_TABLE,
    build_mapping_table,
    k_column,
    k_inv_column,
    mapping_relations_extract,
)
from .metadata import describe_evolutions, member_history, member_version_metadata
from .multiversion_dw import MV_FACT_TABLE, MultiVersionDataWarehouse
from .temporal_dw import TemporalDataWarehouse

__all__ = [
    "OperationalSource",
    "CleaningRule",
    "FactMapping",
    "ETLPipeline",
    "LoadReport",
    "RawRecord",
    "TemporalDataWarehouse",
    "MultiVersionDataWarehouse",
    "MV_FACT_TABLE",
    "DeltaMultiVersionStore",
    "IncrementalMultiVersion",
    "MAPPING_TABLE",
    "build_mapping_table",
    "mapping_relations_extract",
    "k_column",
    "k_inv_column",
    "member_version_metadata",
    "member_history",
    "describe_evolutions",
]
