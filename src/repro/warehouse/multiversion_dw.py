"""The MultiVersion Data Warehouse (§5.1, second store).

The 'temporal mode of presentation' dimension has been proceeded and the
MultiVersion fact table has been inferred from the temporally consistent
fact table and the mapping relationships.  On the relational engine:

* ``dim_tmp`` — the flat TMP dimension (§4.1);
* one star dimension table per temporal dimension (per structure version,
  hierarchy denormalized into level columns);
* ``mv_fact`` — the MultiVersion fact table with one column per dimension,
  the time coordinate, the mode, one column per measure, and one
  ``cf_<measure>`` column per measure carrying the §5.2 confidence codes
  (confidence as a measure, §4.1).

This is the **full-replication** layout the prototype used — "we have to
duplicate the values in all versions", which "obviously implies a high
level of useless redundancies"; :mod:`repro.warehouse.delta` is the
differences-only storage the paper sketches as the fix, and the storage
benchmark compares the two.
"""

from __future__ import annotations

from typing import Any

from repro.core.confidence import CANONICAL_FACTORS
from repro.core.errors import ModelError
from repro.core.multiversion import MultiVersionFactTable
from repro.logical.cf_measures import cf_column, decode_confidence, encode_confidence
from repro.logical.parent_child import lower_parent_child
from repro.logical.snowflake import (
    lower_snowflake,
    snowflake_edge_table,
    snowflake_level_table,
)
from repro.logical.star import level_column, lower_star, star_table_name
from repro.logical.tmp_dimension import build_tmp_dimension
from repro.storage import Column, Database, FLOAT, INTEGER, Q, TEXT

__all__ = ["MV_FACT_TABLE", "MultiVersionDataWarehouse"]

MV_FACT_TABLE = "mv_fact"
"""Canonical name of the MultiVersion fact table."""


class MultiVersionDataWarehouse:
    """The relational MultiVersion warehouse, queryable without the
    conceptual layer (as a commercial OLAP server would see it)."""

    def __init__(self, mvft: MultiVersionFactTable, db: Database) -> None:
        self.mvft = mvft
        self.schema = mvft.schema
        self.db = db

    @classmethod
    def build(
        cls,
        mvft: MultiVersionFactTable,
        *,
        layouts: tuple[str, ...] = ("star",),
    ) -> "MultiVersionDataWarehouse":
        """Materialize a MultiVersion fact table into relational form.

        ``layouts`` picks the §5.1 dimension storage structures to lower:
        ``"star"`` (denormalized, default), ``"snowflake"`` (normalized
        level tables + rollup edges — the only relational layout that
        represents multiple hierarchies faithfully) and ``"parent_child"``
        (single-parent only; raises on multi-hierarchies, per §5.1).
        """
        unknown = set(layouts) - {"star", "snowflake", "parent_child"}
        if unknown:
            raise ModelError(f"unknown dimension layouts {sorted(unknown)}")
        schema = mvft.schema
        db = Database("multiversion_dw")
        build_tmp_dimension(db, mvft.modes)
        versions = [
            mode.version for mode in mvft.modes.version_modes if mode.version
        ]
        for did in schema.dimension_ids:
            if "star" in layouts:
                lower_star(db, schema, versions, did)
            if "snowflake" in layouts:
                lower_snowflake(db, schema, versions, did)
            if "parent_child" in layouts:
                lower_parent_child(db, schema, versions, did)

        fact_columns: list[Column] = [Column("mode", TEXT)]
        fact_columns.extend(Column(did, TEXT) for did in schema.dimension_ids)
        fact_columns.append(Column("t", INTEGER))
        for m in schema.measure_names:
            fact_columns.append(Column(m, FLOAT, nullable=True))
            fact_columns.append(Column(cf_column(m), INTEGER))
        fact = db.create_table(
            MV_FACT_TABLE,
            fact_columns,
            primary_key=["mode", *schema.dimension_ids, "t"],
        )
        for row in mvft.rows():
            record: dict[str, Any] = {"mode": row.mode, "t": row.t}
            for did in schema.dimension_ids:
                record[did] = row.coordinates[did]
            for m in schema.measure_names:
                record[m] = row.value(m)
                record[cf_column(m)] = encode_confidence(row.confidence(m))
            fact.insert(record)
        fact.create_index(["mode"])
        return cls(mvft, db)

    @classmethod
    def from_cursor(
        cls, cursor, *, layouts: tuple[str, ...] = ("star",)
    ) -> "MultiVersionDataWarehouse":
        """Materialize the warehouse from a pinned snapshot version.

        ``cursor`` is a :class:`~repro.concurrency.cursor.SnapshotCursor`;
        the relational build reads the cursor's MultiVersion fact table,
        so an evolution transaction committing mid-build cannot produce a
        warehouse that mixes structure versions.
        """
        return cls.build(cursor.mvft, layouts=layouts)

    # -- relational querying -----------------------------------------------------------

    def _vsid_for(self, mode: str, t: int) -> str | None:
        """The structure version whose star rows describe ``(mode, t)``:
        the mode's own version, or — for ``tcm`` — the version covering
        the fact's own time."""
        if mode != "tcm":
            return mode
        for m in self.mvft.modes.version_modes:
            assert m.version is not None
            if m.version.contains_instant(t):
                return m.version.vsid
        return None

    def query_level_totals(
        self,
        mode: str,
        did: str,
        level: str,
        measure: str,
        *,
        year_of: Any = None,
    ) -> list[dict[str, Any]]:
        """Total ``measure`` per (year, level member) in one mode — the
        relational twin of the paper's Q1/Q2, evaluated purely on the
        star tables with the query pipeline.

        ``year_of`` converts the ``t`` column to a year label (defaults to
        month-chronon semantics).
        """
        from repro.core.chronology import year_of as default_year_of

        year_fn = year_of or default_year_of
        star = self.db.table(star_table_name(did))
        star_rows = list(star.rows())
        fact_rows = [r for r in self.db.table(MV_FACT_TABLE).rows() if r["mode"] == mode]
        joined: list[dict[str, Any]] = []
        col = level_column(level)
        star_index: dict[tuple[str, str], dict[str, Any]] = {
            (r["vsid"], r["member"]): r for r in star_rows
        }
        for fr in fact_rows:
            vsid = self._vsid_for(mode, fr["t"])
            if vsid is None:
                continue
            sr = star_index.get((vsid, fr[did]))
            if sr is None:
                continue
            label = sr[col] if sr[col] is not None else sr["name"]
            # The §5.2 codes (3=sd, 2=em, 1=am, 4=uk) are not monotone in
            # reliability, so folding ⊗cf relationally goes through the
            # factor's rank (0 best .. 3 worst) and decodes afterwards.
            joined.append(
                {
                    "year": year_fn(fr["t"]),
                    "label": label,
                    measure: fr[measure],
                    "cf_rank": decode_confidence(fr[cf_column(measure)]).rank,
                }
            )
        grouped = (
            Q(joined)
            .group_by(
                ["year", "label"],
                aggregates={
                    "total": ("sum", measure),
                    "worst_rank": ("max", "cf_rank"),
                },
            )
            .order_by(["year", "label"])
            .rows()
        )
        rank_to_code = {f.rank: f.code for f in CANONICAL_FACTORS}
        for row in grouped:
            row["confidence"] = rank_to_code[row.pop("worst_rank")]
        return grouped

    def query_level_totals_snowflake(
        self,
        mode: str,
        did: str,
        level: str,
        measure: str,
        *,
        year_of: Any = None,
    ) -> list[dict[str, Any]]:
        """The same grouped total computed over the *snowflake* layout.

        Walks the normalized rollup-edge table to the ancestors at
        ``level``; a leaf with several ancestors at the level contributes
        to each — faithful multi-hierarchy semantics the denormalized star
        cannot express (it concatenates labels instead).  Requires the
        warehouse to have been built with ``layouts`` including
        ``"snowflake"``.
        """
        from repro.core.chronology import year_of as default_year_of

        edge_name = snowflake_edge_table(did)
        level_name = snowflake_level_table(did, level)
        if edge_name not in self.db or level_name not in self.db:
            raise ModelError(
                f"snowflake layout for {did!r}/{level!r} is not materialized; "
                f"build the warehouse with layouts=('snowflake', ...)"
            )
        year_fn = year_of or default_year_of
        parents: dict[tuple[str, str], list[str]] = {}
        for edge in self.db.table(edge_name).rows():
            parents.setdefault((edge["vsid"], edge["child"]), []).append(
                edge["parent"]
            )
        level_names: dict[tuple[str, str], str] = {
            (r["vsid"], r["member"]): r["name"]
            for r in self.db.table(level_name).rows()
        }

        def labels_for(vsid: str, leaf: str) -> list[str]:
            seen, stack, hits = {leaf}, [leaf], []
            while stack:
                node = stack.pop()
                name = level_names.get((vsid, node))
                if name is not None:
                    hits.append(name)
                    continue  # a path stops at the first hit at the level
                for parent in parents.get((vsid, node), ()):
                    if parent not in seen:
                        seen.add(parent)
                        stack.append(parent)
            return hits

        joined: list[dict[str, Any]] = []
        for fr in self.db.table(MV_FACT_TABLE).rows():
            if fr["mode"] != mode:
                continue
            vsid = self._vsid_for(mode, fr["t"])
            if vsid is None:
                continue
            for label in labels_for(vsid, fr[did]):
                joined.append(
                    {
                        "year": year_fn(fr["t"]),
                        "label": label,
                        measure: fr[measure],
                        "cf_rank": decode_confidence(fr[cf_column(measure)]).rank,
                    }
                )
        grouped = (
            Q(joined)
            .group_by(
                ["year", "label"],
                aggregates={
                    "total": ("sum", measure),
                    "worst_rank": ("max", "cf_rank"),
                },
            )
            .order_by(["year", "label"])
            .rows()
        )
        rank_to_code = {f.rank: f.code for f in CANONICAL_FACTORS}
        for row in grouped:
            row["confidence"] = rank_to_code[row.pop("worst_rank")]
        return grouped

    def storage_cells(self) -> int:
        """Materialized MV fact rows — the redundancy probe."""
        return len(self.db.table(MV_FACT_TABLE))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiVersionDataWarehouse({self.db.row_counts()})"
