"""Differences-only MultiVersion storage (§5.1's sketched optimization).

"Up to now, to make our system run on current OLAP tools we have to
duplicate the values in all versions.  This obviously implies a high level
of useless redundancies … since we could only store differences between
versions instead of replicating all values."

:class:`DeltaMultiVersionStore` implements that idea: the ``tcm`` slice is
stored once, and each version mode stores **only the cells that differ
from the consistent data** — i.e. the mapped cells.  A mode's full slice
is reconstructed on demand: consistent rows whose coordinates are valid in
the mode's structure version pass through unchanged (value and ``sd``
confidence), delta rows override/extend them.

The storage benchmark measures the cell counts of this store against the
full-replication warehouse; correctness (reconstruction ≡ full slice) is
covered by the warehouse test suite.
"""

from __future__ import annotations

from repro.core.chronology import Instant
from repro.core.confidence import SD
from repro.core.multiversion import MVFactRow, MultiVersionFactTable

__all__ = ["DeltaMultiVersionStore"]

Key = tuple[tuple[tuple[str, str], ...], Instant]


def _key(row: MVFactRow) -> Key:
    return (tuple(sorted(row.coordinates.items())), row.t)


class DeltaMultiVersionStore:
    """Store the MV fact table as tcm + per-mode deltas."""

    def __init__(self, mvft: MultiVersionFactTable) -> None:
        self.mvft = mvft
        self.schema = mvft.schema
        self._tcm: dict[Key, MVFactRow] = {}
        self._deltas: dict[str, dict[Key, MVFactRow]] = {}
        self._member_sets: dict[str, dict[str, frozenset[str]]] = {}
        self._build()

    def _build(self) -> None:
        for row in self.mvft.slice("tcm"):
            self._tcm[_key(row)] = row
        for mode in self.mvft.modes.version_modes:
            version = mode.version
            assert version is not None
            members = {
                did: version.leaf_ids(did) for did in self.schema.dimension_ids
            }
            self._member_sets[mode.label] = members
            delta: dict[Key, MVFactRow] = {}
            for row in self.mvft.slice(mode.label):
                key = _key(row)
                base = self._tcm.get(key)
                if base is not None and self._same_cell(base, row):
                    continue  # identical to consistent data: not stored
                delta[key] = row
            self._deltas[mode.label] = delta

    def _same_cell(self, base: MVFactRow, row: MVFactRow) -> bool:
        for m in self.schema.measure_names:
            if base.value(m) != row.value(m):
                return False
            if row.confidence(m) is not SD:
                return False
        return True

    # -- reconstruction ------------------------------------------------------------

    def slice(self, mode_label: str) -> list[MVFactRow]:
        """Reconstruct a mode's full slice from tcm + deltas."""
        if mode_label == "tcm":
            return list(self._tcm.values())
        delta = self._deltas[mode_label]
        members = self._member_sets[mode_label]
        out: list[MVFactRow] = []
        for key, base in self._tcm.items():
            if key in delta:
                continue  # overridden below
            if all(
                base.coordinates[did] in members[did]
                for did in self.schema.dimension_ids
            ):
                out.append(
                    MVFactRow(
                        coordinates=dict(base.coordinates),
                        t=base.t,
                        mode=mode_label,
                        values=dict(base.values),
                        confidences=dict(base.confidences),
                        provenance=base.provenance,
                    )
                )
        out.extend(delta.values())
        out.sort(key=lambda r: (r.t, tuple(sorted(r.coordinates.items()))))
        return out

    # -- storage accounting ----------------------------------------------------------

    def stored_cells(self) -> dict[str, int]:
        """Cells physically stored per mode (tcm full, versions delta-only)."""
        counts = {"tcm": len(self._tcm)}
        for label, delta in self._deltas.items():
            counts[label] = len(delta)
        return counts

    def total_stored(self) -> int:
        """Total physically stored cells."""
        return sum(self.stored_cells().values())

    def full_replication_cells(self) -> int:
        """What full replication would store (the §5.1 prototype layout)."""
        return len(self.mvft)

    def savings_ratio(self) -> float:
        """Fraction of cells the delta layout avoids storing."""
        full = self.full_replication_cells()
        if full == 0:
            return 0.0
        return 1.0 - self.total_stored() / full
