"""OTLP-JSON span export and trace sampling.

The tracer's native export is JSONL (one flat span dict per line, an
internal shape).  Real collectors — an OpenTelemetry Collector, Jaeger,
Tempo — ingest OTLP; this module converts finished :class:`Span` trees
into the OTLP/JSON ``ExportTraceServiceRequest`` dict shape:

``resourceSpans[].scopeSpans[].spans[]`` with 32-hex-char trace ids,
16-hex-char span ids, ``parentSpanId`` links, and nanosecond Unix
timestamps (64-bit values encoded as strings, per the proto3 JSON
mapping).  Each *root* span and its descendants share one trace id
(derived from the root's span id), so one tracer export may carry many
traces.

Span timings are monotonic (``perf_counter_ns``); the exporter rebases
them onto the wall clock with one ``time.time_ns()`` anchor taken at
export time, so ordering and durations are exact and absolute times are
as accurate as one clock read.

:class:`TraceSampler` makes production tracing affordable: a
deterministic ratio sampler (every ``1/ratio``-th root span starts a
recorded trace) with an *always-on-error* escape hatch — a span that
exits with an error is recorded even when its trace was not sampled, so
failures are never invisible.  Wire it with ``Tracer(sampler=...)`` or
the CLI's ``--trace-sample R``.

Everything above is *pull*: something asks for the document.  The push
half lives at the bottom — :class:`PushExporter` runs a background
flusher thread draining a bounded queue into a sink
(:class:`FileSink` appends JSON lines; :class:`HTTPSink` POSTs over
stdlib ``http.client``) under
:class:`~repro.robustness.retry.RetryPolicy` backoff, and the two
concrete pushers sit on top: :class:`SpanPusher` ships each tick's new
spans as one OTLP-JSON document, :class:`MetricsPusher` ships
timestamped registry snapshots.  Overflow and delivery failure are shed
into counters (``export.push.dropped`` / ``export.push.failures``) —
telemetry never blocks, and never takes the workload down with it.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping

from .tracing import format_traceparent, parse_traceparent

__all__ = [
    "SPAN_KIND_INTERNAL",
    "STATUS_CODE_ERROR",
    "TraceSampler",
    "span_id_hex",
    "trace_id_hex",
    "format_traceparent",
    "parse_traceparent",
    "spans_to_otlp",
    "tracer_to_otlp",
    "write_otlp_json",
    "read_otlp_json",
    "ExportError",
    "FileSink",
    "HTTPSink",
    "PushExporter",
    "SpanPusher",
    "MetricsPusher",
    "read_push_file",
]

#: OTLP ``SpanKind.SPAN_KIND_INTERNAL`` — all library spans are internal.
SPAN_KIND_INTERNAL = 1

#: OTLP ``StatusCode.STATUS_CODE_ERROR``.
STATUS_CODE_ERROR = 2


def span_id_hex(span_id: int) -> str:
    """An 8-byte span id as 16 lowercase hex characters."""
    return format(span_id & (2**64 - 1), "016x")


def trace_id_hex(root_span_id: int) -> str:
    """A 16-byte trace id as 32 lowercase hex characters.

    Derived deterministically from the trace's root span id, so repeated
    conversions of the same span tree agree.
    """
    return format(root_span_id & (2**128 - 1), "032x")


def _any_value(value: Any) -> dict[str, Any]:
    """One attribute value in OTLP ``AnyValue`` JSON shape."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # 64-bit ints are strings in proto3 JSON
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(attrs: Mapping[str, Any]) -> list[dict[str, Any]]:
    return [{"key": k, "value": _any_value(v)} for k, v in sorted(attrs.items())]


def spans_to_otlp(
    spans: Iterable,
    *,
    origin_ns: int = 0,
    base_unix_nano: int | None = None,
    service_name: str = "repro",
    scope_name: str = "repro.observability",
    scope_version: str = "1",
) -> dict[str, Any]:
    """Convert finished spans into one OTLP/JSON export request dict.

    ``origin_ns`` is the tracer's monotonic origin (span start offsets are
    relative to it); ``base_unix_nano`` anchors that origin on the wall
    clock and defaults to "now minus elapsed-since-origin", computed once.
    """
    span_list = list(spans)
    if base_unix_nano is None:
        base_unix_nano = time.time_ns() - (time.perf_counter_ns() - origin_ns)
    by_id = {s.span_id: s for s in span_list}
    root_cache: dict[int, int] = {}

    def root_of(span) -> int:
        chain: list[int] = []
        cur = span
        while True:
            cached = root_cache.get(cur.span_id)
            if cached is not None:
                root = cached
                break
            chain.append(cur.span_id)
            parent = (
                by_id.get(cur.parent_id) if cur.parent_id is not None else None
            )
            if parent is None or parent.span_id in chain:
                root = cur.span_id
                break
            cur = parent
        for sid in chain:
            root_cache[sid] = root
        return root

    def trace_for(span) -> str:
        # A span carrying an explicit trace id (a local root, anything
        # that inherited one, or a remote-parented span resumed from a
        # ``traceparent``) exports under it verbatim; only id-less spans
        # fall back to the root-walk derivation.
        explicit = getattr(span, "trace_id", None)
        if explicit is not None:
            return trace_id_hex(explicit)
        return trace_id_hex(root_of(span))

    otlp_spans: list[dict[str, Any]] = []
    for span in span_list:
        start = base_unix_nano + (span.start_ns - origin_ns)
        end = base_unix_nano + (span.end_ns - origin_ns)
        record: dict[str, Any] = {
            "traceId": trace_for(span),
            "spanId": span_id_hex(span.span_id),
            "parentSpanId": (
                span_id_hex(span.parent_id) if span.parent_id is not None else ""
            ),
            "name": span.name,
            "kind": SPAN_KIND_INTERNAL,
            "startTimeUnixNano": str(start),
            "endTimeUnixNano": str(end),
            "attributes": _attributes(span.attributes),
        }
        if "error" in span.attributes:
            record["status"] = {
                "code": STATUS_CODE_ERROR,
                "message": str(span.attributes["error"]),
            }
        else:
            record["status"] = {}
        otlp_spans.append(record)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": scope_name, "version": scope_version},
                        "spans": otlp_spans,
                    }
                ],
            }
        ]
    }


def tracer_to_otlp(tracer, **kwargs: Any) -> dict[str, Any]:
    """Convert every finished span of a tracer (uses its monotonic origin)."""
    return spans_to_otlp(tracer.spans, origin_ns=tracer.origin_ns, **kwargs)


def write_otlp_json(tracer, path: str | Path, **kwargs: Any) -> int:
    """Write one OTLP/JSON document for the tracer; returns the span count."""
    document = tracer_to_otlp(tracer, **kwargs)
    Path(path).write_text(
        json.dumps(document, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    return len(document["resourceSpans"][0]["scopeSpans"][0]["spans"])


def read_otlp_json(path: str | Path) -> list[dict[str, Any]]:
    """Parse an OTLP/JSON file back into its flat span dicts (round-trip)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    spans: list[dict[str, Any]] = []
    for resource_spans in document.get("resourceSpans", ()):
        for scope_spans in resource_spans.get("scopeSpans", ()):
            spans.extend(scope_spans.get("spans", ()))
    return spans


class TraceSampler:
    """Deterministic ratio sampling with an always-on-error escape hatch.

    ``ratio`` is the fraction of traces to record.  The decision is
    counter-based — trace ``n`` is kept when ``floor(n·ratio)`` advances —
    so a 0.25 ratio records exactly every fourth trace, reproducibly,
    with no randomness (and therefore no seed to manage).

    ``always_on_error=True`` records any span that exits with an error
    even inside an unsampled trace: the trace's context is lost but the
    failure itself is never dropped.
    """

    def __init__(self, ratio: float = 1.0, *, always_on_error: bool = True) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"sampling ratio must be in [0, 1], got {ratio!r}")
        self.ratio = ratio
        self.always_on_error = always_on_error
        self._lock = threading.Lock()
        self.traces_started = 0
        self.traces_sampled = 0
        self.spans_rescued = 0

    def sample(self) -> bool:
        """Decide whether the next root span starts a recorded trace."""
        with self._lock:
            self.traces_started += 1
            n = self.traces_started
            keep = math.floor(n * self.ratio) > math.floor((n - 1) * self.ratio)
            if keep:
                self.traces_sampled += 1
            return keep

    def rescue(self) -> None:
        """Count one error span recorded from an unsampled trace."""
        with self._lock:
            self.spans_rescued += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceSampler(ratio={self.ratio}, "
            f"sampled={self.traces_sampled}/{self.traces_started})"
        )


# -- push-based export ------------------------------------------------------------


class ExportError(RuntimeError):
    """A sink refused (or failed to deliver) one pushed payload."""


class FileSink:
    """Appends each pushed payload as one JSON line — the durable sink
    tests and the CI smoke read back with :func:`read_push_file`."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.emitted = 0

    def emit(self, payload: Mapping[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self.emitted += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FileSink({str(self.path)!r}, emitted={self.emitted})"


def read_push_file(path: str | Path) -> list[dict[str, Any]]:
    """Parse a :class:`FileSink` file back into payload dicts."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out


class HTTPSink:
    """POSTs each payload as JSON over stdlib :mod:`http.client`.

    One connection per emit keeps the sink state-free (a collector
    restart between pushes costs nothing); a non-2xx answer or a socket
    error raises :class:`ExportError`, which the
    :class:`PushExporter`'s retry policy backs off on.
    """

    def __init__(
        self,
        host: str,
        port: int = 4318,
        path: str = "/v1/traces",
        *,
        timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.path = path
        self.timeout = timeout
        self.emitted = 0

    def emit(self, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                self.path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            if not 200 <= response.status < 300:
                raise ExportError(
                    f"http://{self.host}:{self.port}{self.path} answered "
                    f"{response.status} {response.reason}"
                )
        except OSError as exc:
            raise ExportError(
                f"push to http://{self.host}:{self.port}{self.path} failed: {exc}"
            ) from exc
        finally:
            connection.close()
        self.emitted += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HTTPSink(http://{self.host}:{self.port}{self.path})"


class PushExporter:
    """A bounded queue drained into a sink by a background flusher.

    ``submit`` never blocks: a full queue sheds the incoming payload
    into :attr:`dropped`.  The flusher wakes every ``interval`` seconds
    (or on :meth:`flush`) and pushes each payload through ``retry``
    (a :class:`~repro.robustness.retry.RetryPolicy`; exhausted retries
    count into :attr:`failures` and the payload is abandoned — push
    telemetry is lossy-by-design under a dead collector).  Use as a
    context manager: ``with SpanPusher(tracer, sink):`` starts the
    thread and drains on exit.
    """

    def __init__(
        self,
        sink: Any,
        *,
        interval: float = 0.25,
        max_queue: int = 1024,
        retry: Any = None,
        metrics: Any = None,
        name: str = "push",
    ) -> None:
        if max_queue < 1:
            raise ValueError("push queue needs room for at least one payload")
        if interval <= 0:
            raise ValueError("flush interval must be positive")
        if retry is None:
            from repro.robustness.retry import RetryPolicy

            retry = RetryPolicy(max_attempts=3, base_delay=0.05)
        self.sink = sink
        self.interval = interval
        self.max_queue = max_queue
        self.retry = retry
        self.name = name
        self._metrics = metrics
        self._lock = threading.Lock()
        self._queue: deque[Mapping[str, Any]] = deque()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.pushed = 0
        self.dropped = 0
        self.failures = 0

    def _metrics_now(self) -> Any:
        from . import runtime as _obs

        return self._metrics if self._metrics is not None else _obs.current_metrics()

    # -- producing ---------------------------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> bool:
        """Queue one payload; ``False`` (plus a drop counter) when full."""
        with self._lock:
            if len(self._queue) >= self.max_queue:
                self.dropped += 1
                full = True
            else:
                self._queue.append(payload)
                full = False
        if full:
            metrics = self._metrics_now()
            if metrics.enabled:
                metrics.counter(
                    "export.push.dropped", {"exporter": self.name}
                ).inc()
        return not full

    def collect(self) -> None:
        """Gather fresh telemetry into the queue (subclass hook); the
        flusher calls it before every drain."""

    # -- flushing ----------------------------------------------------------------

    def flush(self) -> int:
        """Collect, then drain the queue synchronously; returns how many
        payloads the sink accepted."""
        self.collect()
        with self._lock:
            batch = list(self._queue)
            self._queue.clear()
        delivered = 0
        failed = 0
        for payload in batch:
            try:
                self.retry.call(self.sink.emit, payload)
            except Exception:
                failed += 1
            else:
                delivered += 1
        if delivered or failed:
            with self._lock:
                self.pushed += delivered
                self.failures += failed
            metrics = self._metrics_now()
            if metrics.enabled:
                if delivered:
                    metrics.counter(
                        "export.push.pushed", {"exporter": self.name}
                    ).inc(delivered)
                if failed:
                    metrics.counter(
                        "export.push.failures", {"exporter": self.name}
                    ).inc(failed)
        return delivered

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    def start(self) -> "PushExporter":
        """Start the background flusher (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name=f"repro-{self.name}-flusher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, flush: bool = True) -> None:
        """Stop the flusher; by default drain what is still queued."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if flush:
            self.flush()

    def __enter__(self) -> "PushExporter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def stats(self) -> dict[str, Any]:
        """Queue depth plus lifetime pushed/dropped/failed counts."""
        with self._lock:
            return {
                "name": self.name,
                "queued": len(self._queue),
                "pushed": self.pushed,
                "dropped": self.dropped,
                "failures": self.failures,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.sink!r}, queued={len(self._queue)}, "
            f"pushed={self.pushed}, dropped={self.dropped})"
        )


class SpanPusher(PushExporter):
    """Pushes each tick's *new* finished spans as one OTLP-JSON document.

    The pusher remembers how many spans it has shipped; a tick with no
    new spans pushes nothing.  ``tracer.clear()`` resets the tracer's
    list, so the cursor clamps to it rather than skipping ahead.
    """

    def __init__(self, tracer: Any, sink: Any, **kwargs: Any) -> None:
        kwargs.setdefault("name", "otlp")
        super().__init__(sink, **kwargs)
        self.tracer = tracer
        self._seen = 0
        self._anchor: int | None = None

    def collect(self) -> None:
        spans = self.tracer.spans
        if self._seen and (
            len(spans) < self._seen
            # A truncation to the *same* length would fool a bare count
            # cursor; the last shipped span's id anchors the position.
            or spans[self._seen - 1].span_id != self._anchor
        ):
            self._seen = 0  # the tracer was cleared under us
        new = spans[self._seen:]
        self._seen = len(spans)
        if new:
            self._anchor = new[-1].span_id
            self.submit(
                spans_to_otlp(new, origin_ns=self.tracer.origin_ns)
            )


class MetricsPusher(PushExporter):
    """Pushes a timestamped metrics snapshot every tick."""

    def __init__(self, metrics_source: Any, sink: Any, **kwargs: Any) -> None:
        kwargs.setdefault("name", "metrics")
        super().__init__(sink, **kwargs)
        self.metrics_source = metrics_source

    def collect(self) -> None:
        self.submit(
            {
                "type": "metrics",
                "at": round(time.time(), 6),
                "snapshot": self.metrics_source.snapshot(),
            }
        )
