"""OTLP-JSON span export and trace sampling.

The tracer's native export is JSONL (one flat span dict per line, an
internal shape).  Real collectors — an OpenTelemetry Collector, Jaeger,
Tempo — ingest OTLP; this module converts finished :class:`Span` trees
into the OTLP/JSON ``ExportTraceServiceRequest`` dict shape:

``resourceSpans[].scopeSpans[].spans[]`` with 32-hex-char trace ids,
16-hex-char span ids, ``parentSpanId`` links, and nanosecond Unix
timestamps (64-bit values encoded as strings, per the proto3 JSON
mapping).  Each *root* span and its descendants share one trace id
(derived from the root's span id), so one tracer export may carry many
traces.

Span timings are monotonic (``perf_counter_ns``); the exporter rebases
them onto the wall clock with one ``time.time_ns()`` anchor taken at
export time, so ordering and durations are exact and absolute times are
as accurate as one clock read.

:class:`TraceSampler` makes production tracing affordable: a
deterministic ratio sampler (every ``1/ratio``-th root span starts a
recorded trace) with an *always-on-error* escape hatch — a span that
exits with an error is recorded even when its trace was not sampled, so
failures are never invisible.  Wire it with ``Tracer(sampler=...)`` or
the CLI's ``--trace-sample R``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "SPAN_KIND_INTERNAL",
    "STATUS_CODE_ERROR",
    "TraceSampler",
    "span_id_hex",
    "trace_id_hex",
    "spans_to_otlp",
    "tracer_to_otlp",
    "write_otlp_json",
    "read_otlp_json",
]

#: OTLP ``SpanKind.SPAN_KIND_INTERNAL`` — all library spans are internal.
SPAN_KIND_INTERNAL = 1

#: OTLP ``StatusCode.STATUS_CODE_ERROR``.
STATUS_CODE_ERROR = 2


def span_id_hex(span_id: int) -> str:
    """An 8-byte span id as 16 lowercase hex characters."""
    return format(span_id & (2**64 - 1), "016x")


def trace_id_hex(root_span_id: int) -> str:
    """A 16-byte trace id as 32 lowercase hex characters.

    Derived deterministically from the trace's root span id, so repeated
    conversions of the same span tree agree.
    """
    return format(root_span_id & (2**128 - 1), "032x")


def _any_value(value: Any) -> dict[str, Any]:
    """One attribute value in OTLP ``AnyValue`` JSON shape."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # 64-bit ints are strings in proto3 JSON
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(attrs: Mapping[str, Any]) -> list[dict[str, Any]]:
    return [{"key": k, "value": _any_value(v)} for k, v in sorted(attrs.items())]


def spans_to_otlp(
    spans: Iterable,
    *,
    origin_ns: int = 0,
    base_unix_nano: int | None = None,
    service_name: str = "repro",
    scope_name: str = "repro.observability",
    scope_version: str = "1",
) -> dict[str, Any]:
    """Convert finished spans into one OTLP/JSON export request dict.

    ``origin_ns`` is the tracer's monotonic origin (span start offsets are
    relative to it); ``base_unix_nano`` anchors that origin on the wall
    clock and defaults to "now minus elapsed-since-origin", computed once.
    """
    span_list = list(spans)
    if base_unix_nano is None:
        base_unix_nano = time.time_ns() - (time.perf_counter_ns() - origin_ns)
    by_id = {s.span_id: s for s in span_list}
    root_cache: dict[int, int] = {}

    def root_of(span) -> int:
        chain: list[int] = []
        cur = span
        while True:
            cached = root_cache.get(cur.span_id)
            if cached is not None:
                root = cached
                break
            chain.append(cur.span_id)
            parent = (
                by_id.get(cur.parent_id) if cur.parent_id is not None else None
            )
            if parent is None or parent.span_id in chain:
                root = cur.span_id
                break
            cur = parent
        for sid in chain:
            root_cache[sid] = root
        return root

    otlp_spans: list[dict[str, Any]] = []
    for span in span_list:
        start = base_unix_nano + (span.start_ns - origin_ns)
        end = base_unix_nano + (span.end_ns - origin_ns)
        record: dict[str, Any] = {
            "traceId": trace_id_hex(root_of(span)),
            "spanId": span_id_hex(span.span_id),
            "parentSpanId": (
                span_id_hex(span.parent_id) if span.parent_id is not None else ""
            ),
            "name": span.name,
            "kind": SPAN_KIND_INTERNAL,
            "startTimeUnixNano": str(start),
            "endTimeUnixNano": str(end),
            "attributes": _attributes(span.attributes),
        }
        if "error" in span.attributes:
            record["status"] = {
                "code": STATUS_CODE_ERROR,
                "message": str(span.attributes["error"]),
            }
        else:
            record["status"] = {}
        otlp_spans.append(record)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": scope_name, "version": scope_version},
                        "spans": otlp_spans,
                    }
                ],
            }
        ]
    }


def tracer_to_otlp(tracer, **kwargs: Any) -> dict[str, Any]:
    """Convert every finished span of a tracer (uses its monotonic origin)."""
    return spans_to_otlp(tracer.spans, origin_ns=tracer.origin_ns, **kwargs)


def write_otlp_json(tracer, path: str | Path, **kwargs: Any) -> int:
    """Write one OTLP/JSON document for the tracer; returns the span count."""
    document = tracer_to_otlp(tracer, **kwargs)
    Path(path).write_text(
        json.dumps(document, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    return len(document["resourceSpans"][0]["scopeSpans"][0]["spans"])


def read_otlp_json(path: str | Path) -> list[dict[str, Any]]:
    """Parse an OTLP/JSON file back into its flat span dicts (round-trip)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    spans: list[dict[str, Any]] = []
    for resource_spans in document.get("resourceSpans", ()):
        for scope_spans in resource_spans.get("scopeSpans", ()):
            spans.extend(scope_spans.get("spans", ()))
    return spans


class TraceSampler:
    """Deterministic ratio sampling with an always-on-error escape hatch.

    ``ratio`` is the fraction of traces to record.  The decision is
    counter-based — trace ``n`` is kept when ``floor(n·ratio)`` advances —
    so a 0.25 ratio records exactly every fourth trace, reproducibly,
    with no randomness (and therefore no seed to manage).

    ``always_on_error=True`` records any span that exits with an error
    even inside an unsampled trace: the trace's context is lost but the
    failure itself is never dropped.
    """

    def __init__(self, ratio: float = 1.0, *, always_on_error: bool = True) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"sampling ratio must be in [0, 1], got {ratio!r}")
        self.ratio = ratio
        self.always_on_error = always_on_error
        self._lock = threading.Lock()
        self.traces_started = 0
        self.traces_sampled = 0
        self.spans_rescued = 0

    def sample(self) -> bool:
        """Decide whether the next root span starts a recorded trace."""
        with self._lock:
            self.traces_started += 1
            n = self.traces_started
            keep = math.floor(n * self.ratio) > math.floor((n - 1) * self.ratio)
            if keep:
                self.traces_sampled += 1
            return keep

    def rescue(self) -> None:
        """Count one error span recorded from an unsampled trace."""
        with self._lock:
            self.spans_rescued += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceSampler(ratio={self.ratio}, "
            f"sampled={self.traces_sampled}/{self.traces_started})"
        )
