"""The process-wide default tracer and metrics registry.

Every instrumented class takes explicit ``tracer=`` / ``metrics=``
parameters for tests; when those are ``None`` (the default everywhere),
the hot path falls back to the process-wide pair held here.  That pair
starts as the null objects (:data:`~repro.observability.tracing.NULL_TRACER`,
:data:`~repro.observability.metrics.NULL_METRICS`), whose ``enabled``
flags are ``False`` — so until :func:`enable` is called, instrumentation
costs one attribute load and one bool check per *phase*, never per row.

:func:`instrumented` is the scoped form the CLI and tests use::

    with instrumented() as (tracer, metrics):
        engine.execute(query)          # uninjected code records here
    report = metrics.render_prometheus()   # dump after the scope closes
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .metrics import MetricsRegistry, NULL_METRICS
from .tracing import NULL_TRACER, Tracer

__all__ = [
    "enable",
    "disable",
    "enabled",
    "current_tracer",
    "current_metrics",
    "instrumented",
]

_tracer = NULL_TRACER
_metrics = NULL_METRICS


def enable(
    *, tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> tuple[Tracer, MetricsRegistry]:
    """Install a process-wide tracer and metrics registry.

    Missing arguments get fresh instances.  Returns the installed pair so
    the caller can read them back later.
    """
    global _tracer, _metrics
    _tracer = tracer if tracer is not None else Tracer()
    _metrics = metrics if metrics is not None else MetricsRegistry()
    return _tracer, _metrics


def disable() -> None:
    """Restore the null (no-op-cheap) defaults."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS


def enabled() -> bool:
    """Whether process-wide instrumentation is currently on."""
    return _tracer.enabled or _metrics.enabled


def current_tracer():
    """The process-wide tracer (the null tracer unless enabled)."""
    return _tracer


def current_metrics():
    """The process-wide registry (the null registry unless enabled)."""
    return _metrics


@contextmanager
def instrumented(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Enable instrumentation for a scope, restoring the previous pair after.

    Yields the active ``(tracer, metrics)`` so the caller can inspect
    spans and dump metrics once the scope closes.
    """
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    pair = enable(tracer=tracer, metrics=metrics)
    try:
        yield pair
    finally:
        _tracer, _metrics = previous
