"""Change-data-capture over the WAL plus the in-process event bus.

The write-ahead journal already *is* a total order of everything that
happened — every evolution operator, fact load, relational write and
restore point, stamped with an LSN and fenced by ``begin``/``commit``
records.  This module turns that order into a live surface:

* :class:`ChangeStream` tails **committed** records in commit-LSN order.
  It reads through :func:`~repro.robustness.wal.read_chain`, so a tail
  is transparent across compaction boundaries (archived
  ``<wal>.NNNN.seg`` segments chain seamlessly into the live journal),
  resumable from any LSN (``from_lsn`` / :attr:`ChangeStream.cursor`),
  and filterable by record kind.  Records of a transaction surface
  *only once its commit record is durable*, atomically, in journal
  order — an aborted or still-open transaction is invisible, exactly as
  it is to recovery.
* :class:`EventBus` fans events — committed change events and the
  server tier's audit events — out to registered subscribers.  Each
  subscription owns a **bounded** queue: a slow subscriber loses events
  (counted per subscriber, surfaced in metrics) instead of ever
  blocking the committing writer.
* :class:`AuditEvent` / :class:`AuditLog` — the structured JSONL audit
  trail the server writes, keyed by tenant and session (auth
  success/failure, statement execution, evolve, admission rejection,
  drain), with the commit LSN attached where one exists so ``repro
  doctor`` can cross-check the trail against the journal.

The robustness imports happen lazily inside functions: this package is
imported *by* :mod:`repro.robustness.wal` (for the runtime defaults), so
a module-level import here would be a cycle.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from . import runtime as _obs

__all__ = [
    "CDC_KINDS",
    "AUDIT_ACTIONS",
    "ChangeEvent",
    "ChangeStream",
    "committed_events",
    "last_committed_lsn",
    "EventBus",
    "Subscription",
    "publish_commits",
    "AuditEvent",
    "AuditLog",
    "read_audit_log",
]

#: Record kinds a change stream delivers.  ``begin``/``commit``/``abort``
#: are transaction plumbing (folded into :attr:`ChangeEvent.commit_lsn`)
#: and ``checkpoint`` is a recovery baseline, not a change.
CDC_KINDS = ("op", "fact", "catalog", "dml", "restore_point")

#: Actions the server-tier audit trail records.
AUDIT_ACTIONS = (
    "auth",
    "auth_failed",
    "statement",
    "evolve",
    "rejected",
    "drain",
)


def _normalize_kinds(kinds: Iterable[str] | None) -> frozenset[str] | None:
    if kinds is None:
        return None
    selected = frozenset(kinds)
    unknown = selected - set(CDC_KINDS)
    if unknown:
        raise ValueError(
            f"unknown change-stream kind(s) {', '.join(sorted(unknown))!s} "
            f"(choose from {', '.join(CDC_KINDS)})"
        )
    return selected


@dataclass(frozen=True)
class ChangeEvent:
    """One committed WAL record, as delivered by a :class:`ChangeStream`.

    ``lsn`` is the record's own position; ``commit_lsn`` is the LSN of
    the commit record that made it durable (for ``restore_point``
    records — durable on append, outside any transaction — the two are
    equal).  ``record`` is the raw journal record, byte-equivalent to
    what :func:`~repro.robustness.wal.read_chain` returns.
    """

    lsn: int
    commit_lsn: int
    txid: int | None
    kind: str
    record: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view (what ``repro tail`` prints)."""
        return {
            "lsn": self.lsn,
            "commit_lsn": self.commit_lsn,
            "txid": self.txid,
            "kind": self.kind,
            "record": dict(self.record),
        }


def committed_events(
    records: Iterable[Mapping[str, Any]],
    *,
    kinds: Iterable[str] | None = None,
) -> list[ChangeEvent]:
    """Fold a journal record sequence into committed change events.

    Uses the same positional commit resolution as recovery
    (:func:`repro.robustness.recovery._resolve_commits`): txids can be
    reused across compaction generations, so a ``commit`` record commits
    exactly the records accumulated since its transaction's most recent
    ``begin`` — never those of an earlier same-id instance.  Events come
    out in strict commit-LSN order (payload records grouped under their
    commit, in journal order; restore points at their own LSN).
    """
    selected = _normalize_kinds(kinds)
    events: list[ChangeEvent] = []
    open_records: dict[int, list[Mapping[str, Any]]] = {}
    for record in records:
        kind = record["kind"]
        if kind == "restore_point":
            events.append(
                ChangeEvent(
                    lsn=record["lsn"],
                    commit_lsn=record["lsn"],
                    txid=None,
                    kind=kind,
                    record=record,
                )
            )
            continue
        txid = record.get("txid")
        if not isinstance(txid, int):
            continue  # checkpoints carry no txid
        if kind == "begin":
            open_records[txid] = []
        elif kind == "commit":
            for owned in open_records.pop(txid, ()):
                events.append(
                    ChangeEvent(
                        lsn=owned["lsn"],
                        commit_lsn=record["lsn"],
                        txid=txid,
                        kind=owned["kind"],
                        record=owned,
                    )
                )
        elif kind == "abort":
            open_records.pop(txid, None)
        else:
            open_records.setdefault(txid, []).append(record)
    if selected is None:
        return events
    return [event for event in events if event.kind in selected]


def last_committed_lsn(path: str | Path) -> int:
    """The LSN of the newest ``commit`` record in a journal's full chain
    (0 when nothing ever committed) — the doctor's cross-check anchor."""
    from repro.robustness.wal import read_chain

    last = 0
    for record in read_chain(path):
        if record["kind"] == "commit":
            last = record["lsn"]
    return last


class ChangeStream:
    """Tails committed WAL records in commit-LSN order.

    A stream is a *cursor* over the journal's full history: ``poll()``
    returns every event whose commit LSN is beyond the cursor and
    advances it, so interleaving polls with writer commits — or with
    compactions that archive the records into segment files — yields
    exactly the sequence a cold replay over
    :func:`~repro.robustness.wal.read_chain` would.  ``from_lsn``
    resumes a previous tail: events with ``commit_lsn <= from_lsn`` are
    skipped (a transaction's records are delivered atomically, so the
    commit LSN is the natural resume token; :attr:`cursor` after any
    poll is exactly what to persist).

    The stream is read-only and opens no append handle — tailing a
    journal another process is writing is safe.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        from_lsn: int = 0,
        kinds: Iterable[str] | None = None,
        metrics: Any = None,
    ) -> None:
        self.path = Path(path)
        self.kinds = _normalize_kinds(kinds)
        self._cursor = int(from_lsn)
        self._metrics = metrics

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    @property
    def cursor(self) -> int:
        """The commit LSN the stream has delivered through — persist it
        and pass as ``from_lsn`` to resume."""
        return self._cursor

    def poll(self) -> list[ChangeEvent]:
        """Every committed event beyond the cursor, advancing it.

        The cursor advances past commits the kind filter swallowed
        entirely, so a filtered stream never re-scans them.
        """
        from repro.robustness.wal import read_chain

        fresh = [
            event
            for event in committed_events(read_chain(self.path))
            if event.commit_lsn > self._cursor
        ]
        if fresh:
            self._cursor = fresh[-1].commit_lsn
        if self.kinds is not None:
            fresh = [event for event in fresh if event.kind in self.kinds]
        metrics = self._metrics_now()
        if metrics.enabled and fresh:
            metrics.counter("events.stream.delivered").inc(len(fresh))
        return fresh

    def follow(
        self,
        *,
        poll_interval: float = 0.05,
        stop: Callable[[], bool] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Iterator[ChangeEvent]:
        """Yield events forever (or until ``stop()`` turns true), polling
        between batches — the ``repro tail --follow`` loop."""
        while True:
            yield from self.poll()
            if stop is not None and stop():
                return
            sleep(poll_interval)


# -- the in-process event bus -----------------------------------------------------


class Subscription:
    """One subscriber's bounded view of the bus.

    Events queue up until :meth:`drain`; when the queue is full the
    *incoming* event is dropped (the backlog the subscriber has not read
    yet stays intact) and :attr:`dropped` counts it.  Publishing never
    blocks.
    """

    __slots__ = ("name", "topics", "maxlen", "dropped", "delivered", "_queue", "_bus")

    def __init__(
        self,
        bus: "EventBus",
        name: str,
        topics: frozenset[str] | None,
        maxlen: int,
    ) -> None:
        self._bus = bus
        self.name = name
        self.topics = topics
        self.maxlen = maxlen
        self.dropped = 0
        self.delivered = 0
        self._queue: deque[tuple[str, Any]] = deque()

    def _offer(self, topic: str, event: Any) -> bool:
        if self.topics is not None and topic not in self.topics:
            return False
        if len(self._queue) >= self.maxlen:
            self.dropped += 1
            return False
        self._queue.append((topic, event))
        self.delivered += 1
        return True

    def drain(self) -> list[tuple[str, Any]]:
        """Take every queued ``(topic, event)`` pair, oldest first."""
        with self._bus._lock:
            out = list(self._queue)
            self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        """Unsubscribe from the bus."""
        self._bus.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subscription({self.name!r}, queued={len(self._queue)}, "
            f"dropped={self.dropped})"
        )


class EventBus:
    """Fans events out to bounded subscriber queues; never blocks.

    ``publish`` offers the event to every matching subscription under
    one lock — a commit hook or an audit point pays a few deque appends,
    no subscriber code runs inline.  Slow subscribers shed load into
    their own drop counters (``events.bus.dropped{subscriber=}`` in the
    metrics registry) instead of back-pressuring the publisher.
    """

    DEFAULT_QUEUE = 1024

    def __init__(self, *, metrics: Any = None, max_queue: int = DEFAULT_QUEUE) -> None:
        if max_queue < 1:
            raise ValueError("event-bus queues need room for at least one event")
        self.max_queue = max_queue
        self._metrics = metrics
        self._lock = threading.Lock()
        self._subscriptions: list[Subscription] = []
        self._next_name = 1
        self.published = 0

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    def subscribe(
        self,
        name: str | None = None,
        *,
        topics: Iterable[str] | None = None,
        max_queue: int | None = None,
    ) -> Subscription:
        """Register a subscriber; ``topics=None`` receives everything."""
        maxlen = self.max_queue if max_queue is None else max_queue
        if maxlen < 1:
            raise ValueError("event-bus queues need room for at least one event")
        with self._lock:
            if name is None:
                name = f"subscriber-{self._next_name}"
            self._next_name += 1
            subscription = Subscription(
                self,
                name,
                frozenset(topics) if topics is not None else None,
                maxlen,
            )
            self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription (idempotent)."""
        with self._lock:
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

    @property
    def subscribers(self) -> tuple[Subscription, ...]:
        """Every live subscription."""
        with self._lock:
            return tuple(self._subscriptions)

    def publish(self, topic: str, event: Any) -> int:
        """Offer ``event`` to every matching subscriber; returns how many
        accepted it (the rest dropped or filtered)."""
        accepted = 0
        drops: list[str] = []
        with self._lock:
            self.published += 1
            for subscription in self._subscriptions:
                before = subscription.dropped
                if subscription._offer(topic, event):
                    accepted += 1
                elif subscription.dropped > before:
                    drops.append(subscription.name)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("events.bus.published", {"topic": topic}).inc()
            for name in drops:
                metrics.counter("events.bus.dropped", {"subscriber": name}).inc()
        return accepted

    def stats(self) -> dict[str, Any]:
        """Publish/drop totals plus one row per subscriber."""
        with self._lock:
            return {
                "published": self.published,
                "dropped": sum(s.dropped for s in self._subscriptions),
                "subscribers": {
                    s.name: {
                        "queued": len(s._queue),
                        "delivered": s.delivered,
                        "dropped": s.dropped,
                        "topics": sorted(s.topics) if s.topics is not None else None,
                    }
                    for s in self._subscriptions
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventBus(subscribers={len(self._subscriptions)}, "
            f"published={self.published})"
        )


def publish_commits(
    transactions: Any, bus: EventBus, *, topic: str = "commit"
) -> Callable[[Any], None]:
    """Wire a :class:`~repro.robustness.transactions.TransactionManager`
    into the bus: every durable commit publishes ``{"txid", "commit_lsn"}``
    (the hook returned can be removed from ``postcommit_hooks`` later)."""

    def hook(txn: Any) -> None:
        bus.publish(topic, {"txid": txn.txid, "commit_lsn": txn.commit_lsn})

    transactions.postcommit_hooks.append(hook)
    return hook


# -- the server audit trail -------------------------------------------------------


@dataclass(frozen=True)
class AuditEvent:
    """One auditable server-tier action, keyed by tenant and session."""

    action: str
    tenant: str | None = None
    session: str | None = None
    ok: bool = True
    lsn: int | None = None
    detail: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action not in AUDIT_ACTIONS:
            raise ValueError(
                f"unknown audit action {self.action!r} "
                f"(choose from {', '.join(AUDIT_ACTIONS)})"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "action": self.action,
            "tenant": self.tenant,
            "session": self.session,
            "ok": self.ok,
        }
        if self.lsn is not None:
            out["lsn"] = self.lsn
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


class AuditLog:
    """An append-only JSONL audit trail.

    Each :meth:`record` call appends one line — wall-clock timestamp
    plus the event fields — and (optionally) republishes the event on an
    :class:`EventBus` under the ``"audit"`` topic.  Commit-carrying
    events keep their ``lsn`` field, so :meth:`last_lsn` gives ``repro
    doctor`` something to compare against the journal.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        bus: EventBus | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.bus = bus
        self._clock = clock
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, event: AuditEvent) -> dict[str, Any]:
        """Append one event; returns the entry as written."""
        entry = {"at": round(self._clock(), 6), **event.to_dict()}
        line = json.dumps(entry, separators=(",", ":"))
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self.recorded += 1
        if self.bus is not None:
            self.bus.publish("audit", entry)
        metrics = _obs.current_metrics()
        if metrics.enabled:
            metrics.counter(
                "server.audit_events",
                {"action": event.action, "tenant": event.tenant or ""},
            ).inc()
        return entry

    def entries(
        self, *, tenant: str | None = None, action: str | None = None
    ) -> list[dict[str, Any]]:
        """Read the trail back, optionally filtered."""
        return read_audit_log(self.path, tenant=tenant, action=action)

    def last_lsn(self) -> int:
        """The newest commit LSN the trail witnessed (0 when none)."""
        last = 0
        for entry in self.entries():
            lsn = entry.get("lsn")
            if isinstance(lsn, int) and lsn > last:
                last = lsn
        return last


def read_audit_log(
    path: str | Path,
    *,
    tenant: str | None = None,
    action: str | None = None,
) -> list[dict[str, Any]]:
    """Parse an audit JSONL file (missing file → empty trail); a torn
    final line — crash mid-append — is dropped, like the WAL's."""
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text(encoding="utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    out: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                break
            raise ValueError(f"{path}:{i + 1}: corrupt audit entry") from None
        if tenant is not None and entry.get("tenant") != tenant:
            continue
        if action is not None and entry.get("action") != action:
            continue
        out.append(entry)
    return out
