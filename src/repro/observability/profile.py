"""Query profiling: an EXPLAIN-ANALYZE-style report over one query.

:func:`profile_query` runs a query three ways under a *fresh* tracer and
metrics registry (the process-wide defaults are untouched):

1. **serial** — one :class:`~repro.core.query.QueryEngine` pass, yielding
   the per-phase timings (resolve / collect_contributions / finalize);
2. **sharded** (when ``shards > 1``) — a
   :class:`~repro.concurrency.sharding.ShardedExecutor` pass, yielding
   per-shard row counts and timings plus the merge time;
3. **per structure version** — the same query in every presentation mode,
   each against its own registry, yielding rows scanned / matched and
   cells emitted per mode (the §4.1 modes are exactly the structure
   versions plus ``tcm``, so this is the per-version cost breakdown).

The result is a :class:`QueryProfile`; ``to_text()`` renders the report
the ``repro profile`` CLI command prints, and ``tracer`` keeps every span
recorded along the way for ``--trace-out`` export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.multiversion import MultiVersionFactTable
from repro.core.query import Query, QueryEngine

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "PhaseTiming",
    "ShardTiming",
    "ModeStats",
    "QueryProfile",
    "profile_query",
]


@dataclass(frozen=True)
class PhaseTiming:
    """One serial execution phase and its wall time."""

    name: str
    seconds: float
    detail: str = ""


@dataclass(frozen=True)
class ShardTiming:
    """One shard's phase-one pass: rows scanned and wall time."""

    index: int
    rows: int
    seconds: float


@dataclass(frozen=True)
class ModeStats:
    """Scan/emit counts for one presentation mode (structure version)."""

    mode: str
    rows_scanned: int
    rows_matched: int
    cells_emitted: int
    result_rows: int


@dataclass
class QueryProfile:
    """The assembled profile report for one query."""

    mode: str
    statement: str | None = None
    total_seconds: float = 0.0
    result_rows: int = 0
    phases: list[PhaseTiming] = field(default_factory=list)
    shards: list[ShardTiming] = field(default_factory=list)
    merge_seconds: float | None = None
    modes: list[ModeStats] = field(default_factory=list)
    cache: dict[str, int] | None = None
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering of the report."""
        return {
            "mode": self.mode,
            "statement": self.statement,
            "total_seconds": self.total_seconds,
            "result_rows": self.result_rows,
            "phases": [
                {"name": p.name, "seconds": p.seconds, "detail": p.detail}
                for p in self.phases
            ],
            "shards": [
                {"shard": s.index, "rows": s.rows, "seconds": s.seconds}
                for s in self.shards
            ],
            "merge_seconds": self.merge_seconds,
            "cache": self.cache,
            "modes": [
                {
                    "mode": m.mode,
                    "rows_scanned": m.rows_scanned,
                    "rows_matched": m.rows_matched,
                    "cells_emitted": m.cells_emitted,
                    "result_rows": m.result_rows,
                }
                for m in self.modes
            ],
        }

    def to_text(self) -> str:
        """The EXPLAIN-style report ``repro profile`` prints."""
        lines: list[str] = []
        header = f"QUERY PROFILE  mode={self.mode}"
        if self.statement:
            header += f"  [{self.statement}]"
        lines.append(header)
        lines.append(
            f"  total {self.total_seconds * 1000:.3f} ms"
            f" -> {self.result_rows} result rows"
        )
        lines.append("  phases:")
        for phase in self.phases:
            suffix = f"  ({phase.detail})" if phase.detail else ""
            lines.append(
                f"    {phase.name:<24} {phase.seconds * 1000:>9.3f} ms{suffix}"
            )
        if self.shards:
            lines.append(f"  shards ({len(self.shards)}):")
            for shard in self.shards:
                lines.append(
                    f"    shard {shard.index:<3} rows={shard.rows:<8}"
                    f" {shard.seconds * 1000:>9.3f} ms"
                )
            if self.merge_seconds is not None:
                lines.append(
                    f"    merge      {'':<13}{self.merge_seconds * 1000:>9.3f} ms"
                )
        if self.cache is not None:
            lines.append(
                f"  cache: hits={self.cache['hits']}"
                f" misses={self.cache['misses']}"
                f" bypassed={self.cache['bypassed']}"
            )
        if self.modes:
            lines.append("  per structure version:")
            lines.append(
                "    mode    rows_scanned  rows_matched  cells_emitted  result_rows"
            )
            for stats in self.modes:
                lines.append(
                    f"    {stats.mode:<7} {stats.rows_scanned:>12}"
                    f"  {stats.rows_matched:>12}  {stats.cells_emitted:>13}"
                    f"  {stats.result_rows:>11}"
                )
        return "\n".join(lines)


def _span_seconds(span: Span | None) -> float:
    return span.duration_s if span is not None and span.finished else 0.0


def _first(tracer: Tracer, name: str) -> Span | None:
    found = tracer.find(name)
    return found[0] if found else None


def profile_query(
    mvft: MultiVersionFactTable,
    query: Query,
    *,
    shards: int | None = None,
    statement: str | None = None,
    all_modes: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cache: Any = None,
) -> QueryProfile:
    """Profile ``query`` against ``mvft`` and return the report.

    ``shards > 1`` adds a sharded pass (per-shard row counts and merge
    time); ``all_modes=False`` skips the per-structure-version sweep.
    ``tracer``/``metrics`` inject pre-configured instruments (the CLI
    passes a sampler-equipped tracer for ``--trace-sample``); by default
    the run uses private instruments only — the process-wide defaults of
    :mod:`repro.observability.runtime` are neither read nor written.

    ``cache`` (a :class:`~repro.cache.VersionedResultCache`) wires the
    serial pass through the result cache and adds a ``cache`` section to
    the report: this run's hit/miss counts, plus whether the query
    *bypassed* the cache entirely (a query with no canonical digest —
    e.g. one carrying a ``coordinate_filter`` — is uncacheable).  Note a
    hit short-circuits the engine, so a hot profile shows the cached
    path's timings, not the engine's.
    """
    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    engine = QueryEngine(mvft, tracer=tracer, metrics=metrics, cache=cache)
    before = cache.stats() if cache is not None else None
    table = engine.execute(query)

    profile = QueryProfile(
        mode=table.mode,
        statement=statement,
        tracer=tracer,
        metrics=metrics,
        result_rows=len(table),
        total_seconds=_span_seconds(_first(tracer, "query.execute")),
    )
    if cache is not None:
        after = cache.stats()
        profile.cache = {
            "hits": int(after["hits"] - before["hits"]),
            "misses": int(after["misses"] - before["misses"]),
            "bypassed": int(cache.key_for(mvft, query) is None),
        }
    collect_span = _first(tracer, "query.collect_contributions")
    finalize_span = _first(tracer, "query.finalize")
    for name, span in (
        ("resolve", _first(tracer, "query.resolve")),
        ("collect_contributions", collect_span),
        ("finalize", finalize_span),
    ):
        if span is None:
            continue
        detail_bits = [
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        ]
        profile.phases.append(
            PhaseTiming(name, span.duration_s, ", ".join(detail_bits))
        )

    if shards is not None and shards > 1:
        from repro.concurrency.sharding import ShardedExecutor

        executor = ShardedExecutor(
            mvft, shards=shards, tracer=tracer, metrics=metrics
        )
        executor.execute(query)
        for span in tracer.find("shard.collect"):
            profile.shards.append(
                ShardTiming(
                    index=int(span.attributes.get("shard", 0)),
                    rows=int(span.attributes.get("rows", 0)),
                    seconds=span.duration_s,
                )
            )
        profile.shards.sort(key=lambda s: s.index)
        merge_span = _first(tracer, "shard.merge")
        if merge_span is not None:
            profile.merge_seconds = merge_span.duration_s

    if all_modes:
        for label in mvft.modes.labels:
            mode_metrics = MetricsRegistry()
            mode_engine = QueryEngine(mvft, metrics=mode_metrics)
            mode_table = mode_engine.execute(query.with_mode(label))
            snap = mode_metrics.snapshot()["counters"]
            labels = f'{{mode="{label}"}}'
            profile.modes.append(
                ModeStats(
                    mode=label,
                    rows_scanned=int(
                        snap.get(f"query.rows_scanned{labels}", 0)
                    ),
                    rows_matched=int(
                        snap.get(f"query.rows_matched{labels}", 0)
                    ),
                    cells_emitted=int(
                        snap.get(f"query.cells_emitted{labels}", 0)
                    ),
                    result_rows=len(mode_table),
                )
            )
    return profile
