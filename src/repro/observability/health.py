"""Operational health: slow-query log, alert rules, and the doctor report.

Three layers that turn the PR-3 telemetry into *decisions*:

* :class:`SlowQueryLog` — a ring buffer of queries that exceeded a
  latency threshold, each with its per-phase breakdown (resolve /
  collect / finalize, or collect / merge / finalize when sharded), the
  originating MVQL statement when one is known, and a short stable
  digest so repeated occurrences of the same statement group together.
  The engine records into it from the already-instrumented execute path,
  so a disabled or absent log costs one boolean test per query.

* :class:`AlertRule` — a declarative threshold over one metric series of
  a :class:`~repro.observability.metrics.MetricsRegistry` snapshot:
  ``AlertRule("fsync p99", metric="wal.fsync_seconds", stat="p99",
  op=">", threshold=0.05)``.  Histogram quantiles use Prometheus-style
  linear interpolation over the fixed cumulative buckets.

* :func:`run_doctor` — the ``repro doctor`` engine: evaluates alert
  rules, sweeps the schema with
  :class:`~repro.robustness.integrity.IntegrityChecker`, and summarises
  WAL/journal state into one pass / warn / fail report whose
  ``exit_code`` (0 / 1 / 2) the CLI returns.  The robustness imports
  happen lazily inside the function — ``repro.robustness.wal`` imports
  the observability runtime, so a module-level import here would cycle.
"""

from __future__ import annotations

import contextvars
import hashlib
import re
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "statement_digest",
    "SlowQueryRecord",
    "SlowQueryLog",
    "histogram_quantile",
    "AlertRule",
    "AlertResult",
    "evaluate_rules",
    "DEFAULT_RULES",
    "DoctorReport",
    "run_doctor",
]


def statement_digest(text: str) -> str:
    """A short stable digest of a normalised MVQL statement.

    Whitespace runs collapse and case folds before hashing, so the same
    logical statement typed differently groups under one digest.
    """
    normalized = " ".join(text.split()).lower()
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:12]


def _query_signature(query: Any) -> str:
    """A stable one-line description of a Query (for records without MVQL).

    ``coordinate_filter`` is deliberately excluded — a callable's repr
    embeds a memory address and would break digest grouping.
    """
    parts = [f"mode={query.mode}"]
    if getattr(query, "group_by", ()):
        parts.append(
            "by=" + ",".join(type(term).__name__ for term in query.group_by)
        )
    if getattr(query, "measures", ()):
        parts.append("measures=" + ",".join(query.measures))
    time_range = getattr(query, "time_range", None)
    if time_range is not None:
        parts.append(f"during={time_range}")
    if getattr(query, "level_filters", ()):
        parts.append(f"filters={len(query.level_filters)}")
    return " ".join(parts)


@dataclass(frozen=True)
class SlowQueryRecord:
    """One over-threshold query: what ran, how long, where the time went."""

    mode: str
    seconds: float
    phases: tuple[tuple[str, float], ...]
    statement: str | None
    digest: str
    tenant: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering."""
        return {
            "mode": self.mode,
            "seconds": self.seconds,
            "phases": dict(self.phases),
            "statement": self.statement,
            "digest": self.digest,
            "tenant": self.tenant,
        }

    def to_text(self) -> str:
        """One readable line plus the phase breakdown."""
        head = (
            f"{self.seconds * 1000:.1f}ms  mode={self.mode}  "
            f"digest={self.digest}"
        )
        if self.tenant:
            head += f"  tenant={self.tenant}"
        if self.statement:
            head += f"  {self.statement}"
        breakdown = "  ".join(f"{k}={v * 1000:.1f}ms" for k, v in self.phases)
        return f"{head}\n    phases: {breakdown}" if breakdown else head


class SlowQueryLog:
    """A bounded, thread-safe log of queries slower than ``threshold``.

    ``threshold`` is in seconds; ``capacity`` bounds memory (oldest
    records fall off).  The MVQL layer publishes the statement text for
    the engine-level record through :meth:`statement` — a
    *context-local* (:mod:`contextvars`) context manager, so concurrent
    sessions sharing one log never mislabel each other's queries: worker
    threads are isolated exactly as with a thread-local, and concurrent
    asyncio statements on one event-loop thread (the server's shape) are
    isolated per task instead of cross-contaminating.
    """

    def __init__(self, threshold: float = 0.1, capacity: int = 128) -> None:
        if threshold < 0:
            raise ValueError("slow-query threshold must be >= 0 seconds")
        if capacity < 1:
            raise ValueError("slow-query capacity must be >= 1")
        self.enabled = True
        self.threshold = threshold
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._statement_var: contextvars.ContextVar[str | None] = (
            contextvars.ContextVar("repro-slow-query-statement", default=None)
        )
        self._tenant_var: contextvars.ContextVar[str | None] = (
            contextvars.ContextVar("repro-slow-query-tenant", default=None)
        )
        self.total_queries = 0
        self.total_slow = 0

    # -- statement context -------------------------------------------------------

    @contextmanager
    def statement(self, text: str) -> Iterator[None]:
        """Label engine-level records inside the block with this MVQL text."""
        token = self._statement_var.set(" ".join(text.split()))
        try:
            yield
        finally:
            self._statement_var.reset(token)

    @property
    def current_statement(self) -> str | None:
        """The MVQL text published in this context, if any."""
        return self._statement_var.get()

    @contextmanager
    def tenant(self, name: str) -> Iterator[None]:
        """Attribute records inside the block to a tenant.

        A server session wraps each statement with this, so one shared
        log serving interleaved tenants groups slow queries by *who* ran
        them, not just by statement shape.  Context-local like
        :meth:`statement`, so concurrent sessions never mislabel each
        other.
        """
        token = self._tenant_var.set(name)
        try:
            yield
        finally:
            self._tenant_var.reset(token)

    @property
    def current_tenant(self) -> str | None:
        """The tenant published in this context, if any."""
        return self._tenant_var.get()

    # -- recording (called by the query engine) ----------------------------------

    def record(
        self,
        *,
        mode: str,
        seconds: float,
        phases: Mapping[str, float] | None = None,
        query: Any = None,
    ) -> SlowQueryRecord | None:
        """Record one finished query; keeps it only when over threshold."""
        with self._lock:
            self.total_queries += 1
        if seconds < self.threshold:
            return None
        statement = self.current_statement
        if statement is None and query is not None:
            statement = _query_signature(query)
        record = SlowQueryRecord(
            mode=mode,
            seconds=seconds,
            phases=tuple((phases or {}).items()),
            statement=statement,
            digest=statement_digest(statement or mode),
            tenant=self._tenant_var.get(),
        )
        with self._lock:
            self.total_slow += 1
            self._records.append(record)
        return record

    # -- reading -----------------------------------------------------------------

    def records(self) -> list[SlowQueryRecord]:
        """The retained slow queries, oldest first."""
        with self._lock:
            return list(self._records)

    def slowest(self, n: int = 5) -> list[SlowQueryRecord]:
        """The ``n`` slowest retained queries, slowest first."""
        return sorted(self.records(), key=lambda r: -r.seconds)[:n]

    def by_digest(self) -> dict[str, int]:
        """Occurrence counts per statement digest."""
        out: dict[str, int] = {}
        for record in self.records():
            out[record.digest] = out.get(record.digest, 0) + 1
        return out

    def by_tenant(self) -> dict[str, dict[str, int]]:
        """Digest occurrence counts grouped by tenant.

        Records outside any :meth:`tenant` context land under ``""``.
        """
        out: dict[str, dict[str, int]] = {}
        for record in self.records():
            digests = out.setdefault(record.tenant or "", {})
            digests[record.digest] = digests.get(record.digest, 0) + 1
        return out

    def to_text(self) -> str:
        """A readable report of the retained slow queries."""
        records = self.records()
        head = (
            f"slow queries: {self.total_slow}/{self.total_queries} over "
            f"{self.threshold * 1000:g}ms (retained {len(records)})"
        )
        if not records:
            return head
        lines = [head]
        for record in sorted(records, key=lambda r: -r.seconds):
            lines.append("  " + record.to_text().replace("\n", "\n  "))
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop retained records and reset the counters."""
        with self._lock:
            self._records.clear()
            self.total_queries = 0
            self.total_slow = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlowQueryLog(threshold={self.threshold}, "
            f"slow={self.total_slow}/{self.total_queries})"
        )


# -- alert rules ------------------------------------------------------------------


def histogram_quantile(
    q: float, buckets: Sequence[tuple[str, int]]
) -> float | None:
    """Prometheus-style quantile from cumulative fixed buckets.

    ``buckets`` is the snapshot shape: ``(upper-bound label, cumulative
    count)`` pairs ending at ``+Inf``.  Linear interpolation within the
    winning bucket; a quantile landing in ``+Inf`` reports the largest
    finite bound (all that is knowable).  ``None`` when empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if not buckets:
        return None
    total = buckets[-1][1]
    if total == 0:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_count = 0
    for label, cumulative in buckets:
        if label == "+Inf":
            return previous_bound if previous_bound else None
        bound = float(label)
        if cumulative >= rank:
            in_bucket = cumulative - previous_count
            if in_bucket == 0:  # pragma: no cover - defensive
                return bound
            fraction = (rank - previous_count) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = bound
        previous_count = cumulative
    return previous_bound  # pragma: no cover - +Inf always terminates


_PERCENTILE_RE = re.compile(r"p(\d{1,2}(?:\.\d+)?)\Z")

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold over a metrics-snapshot series.

    ``metric`` names the instrument (``wal.fsync_seconds``); series with
    labels aggregate (counters/gauges sum; histograms merge buckets).
    ``stat`` selects what to compare: ``value`` for counters/gauges,
    ``count``/``sum``/``mean`` or a percentile like ``p99`` for
    histograms.  ``severity`` decides whether a firing rule degrades the
    doctor report to *warn* or *fail*.
    """

    name: str
    metric: str
    op: str
    threshold: float
    stat: str = "value"
    severity: str = "warn"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"unknown comparison {self.op!r}; use one of {sorted(_OPS)}"
            )
        if self.severity not in ("warn", "fail"):
            raise ValueError(
                f"severity must be 'warn' or 'fail', got {self.severity!r}"
            )
        if self.stat not in ("value", "count", "sum", "mean") and not (
            _PERCENTILE_RE.match(self.stat)
        ):
            raise ValueError(
                f"unknown stat {self.stat!r}; use value/count/sum/mean/pNN"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AlertRule":
        """Build a rule from a plain dict (the ``--rules`` JSON shape)."""
        known = {"name", "metric", "op", "threshold", "stat", "severity"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown alert-rule fields: {sorted(unknown)}")
        missing = {"name", "metric", "op", "threshold"} - set(payload)
        if missing:
            raise ValueError(f"alert rule missing fields: {sorted(missing)}")
        return cls(
            name=str(payload["name"]),
            metric=str(payload["metric"]),
            op=str(payload["op"]),
            threshold=float(payload["threshold"]),
            stat=str(payload.get("stat", "value")),
            severity=str(payload.get("severity", "warn")),
        )

    def evaluate(self, snapshot: Mapping[str, Any]) -> "AlertResult":
        """Check this rule against one ``MetricsRegistry.snapshot()``."""
        observed = self._observe(snapshot)
        if observed is None:
            return AlertResult(rule=self, fired=False, observed=None)
        fired = _OPS[self.op](observed, self.threshold)
        return AlertResult(rule=self, fired=fired, observed=observed)

    # -- internals ---------------------------------------------------------------

    def _series(self, table: Mapping[str, Any]) -> list[Any]:
        prefix = self.metric + "{"
        return [
            value
            for key, value in table.items()
            if key == self.metric or key.startswith(prefix)
        ]

    def _observe(self, snapshot: Mapping[str, Any]) -> float | None:
        if self.stat == "value":
            values = self._series(snapshot.get("counters", {}))
            if not values:
                values = self._series(snapshot.get("gauges", {}))
            return float(sum(values)) if values else None
        series = self._series(snapshot.get("histograms", {}))
        if not series:
            return None
        if self.stat in ("count", "sum"):
            return float(sum(entry[self.stat] for entry in series))
        if self.stat == "mean":
            count = sum(entry["count"] for entry in series)
            total = sum(entry["sum"] for entry in series)
            return total / count if count else None
        match = _PERCENTILE_RE.match(self.stat)
        assert match is not None  # __post_init__ guarantees it
        merged = _merge_buckets(series)
        return histogram_quantile(float(match.group(1)) / 100.0, merged)


def _merge_buckets(series: Sequence[Mapping[str, Any]]) -> list[tuple[str, int]]:
    """Element-wise sum of same-name histogram series' cumulative buckets."""
    merged: dict[str, int] = {}
    order: list[str] = []
    for entry in series:
        for label, cumulative in entry.get("buckets", ()):
            if label not in merged:
                merged[label] = 0
                order.append(label)
            merged[label] += cumulative
    return [(label, merged[label]) for label in order]


@dataclass(frozen=True)
class AlertResult:
    """One rule's outcome against one snapshot."""

    rule: AlertRule
    fired: bool
    observed: float | None

    def to_text(self) -> str:
        """One readable status line."""
        if self.observed is None:
            return f"-    {self.rule.name}: no data for {self.rule.metric!r}"
        marker = self.rule.severity.upper() if self.fired else "ok"
        return (
            f"{marker:<4} {self.rule.name}: "
            f"{self.rule.metric}.{self.rule.stat} = {self.observed:g} "
            f"({self.rule.op} {self.rule.threshold:g}"
            f"{' fired' if self.fired else ''})"
        )


def evaluate_rules(
    rules: Iterable[AlertRule], snapshot: Mapping[str, Any]
) -> list[AlertResult]:
    """Evaluate every rule against one snapshot, in rule order."""
    return [rule.evaluate(snapshot) for rule in rules]


#: The doctor's built-in rules: fsync tail latency and MVCC conflict volume.
DEFAULT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        name="wal fsync p99",
        metric="wal.fsync_seconds",
        stat="p99",
        op=">",
        threshold=0.05,
        severity="warn",
    ),
    AlertRule(
        name="snapshot conflicts",
        metric="snapshot.conflicts",
        stat="value",
        op=">",
        threshold=0,
        severity="warn",
    ),
)


# -- doctor -----------------------------------------------------------------------


@dataclass
class DoctorReport:
    """The consolidated pass / warn / fail health report."""

    alerts: list[AlertResult] = field(default_factory=list)
    integrity: Any = None
    wal_stats: dict[str, Any] | None = None
    audit_stats: dict[str, Any] | None = None
    cache_stats: dict[str, Any] | None = None
    usage_stats: dict[str, Any] | None = None
    slow_queries: list[SlowQueryRecord] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        """``pass``, ``warn`` or ``fail`` (the worst observed)."""
        if self.integrity is not None and not self.integrity.ok:
            return "fail"
        if any(a.fired and a.rule.severity == "fail" for a in self.alerts):
            return "fail"
        if any(a.fired for a in self.alerts) or self.slow_queries:
            return "warn"
        return "pass"

    @property
    def exit_code(self) -> int:
        """0 pass, 1 warn, 2 fail — what ``repro doctor`` returns."""
        return {"pass": 0, "warn": 1, "fail": 2}[self.status]

    def to_dict(self) -> dict[str, Any]:
        """The machine-readable report — what ``repro doctor --format
        json`` prints and the server's readiness op embeds, so external
        probes consume structure instead of scraping text."""
        integrity = None
        if self.integrity is not None:
            integrity = {
                "ok": self.integrity.ok,
                "violations": [
                    {
                        "code": v.code,
                        "subject": v.subject,
                        "message": v.message,
                    }
                    for v in self.integrity.violations
                ],
            }
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "alerts": [
                {
                    "name": result.rule.name,
                    "metric": result.rule.metric,
                    "stat": result.rule.stat,
                    "op": result.rule.op,
                    "threshold": result.rule.threshold,
                    "severity": result.rule.severity,
                    "fired": result.fired,
                    "observed": result.observed,
                }
                for result in self.alerts
            ],
            "integrity": integrity,
            "wal": self.wal_stats,
            "audit": self.audit_stats,
            "cache": self.cache_stats,
            "usage": self.usage_stats,
            "slow_queries": [r.to_dict() for r in self.slow_queries],
            "notes": list(self.notes),
        }

    def to_text(self) -> str:
        """The full readable report."""
        lines = [f"doctor: {self.status.upper()}"]
        if self.alerts:
            lines.append("alerts:")
            for result in self.alerts:
                lines.append(f"  {result.to_text()}")
        if self.integrity is not None:
            lines.append(self.integrity.to_text())
        if self.wal_stats is not None:
            lines.append("wal:")
            for key, value in self.wal_stats.items():
                lines.append(f"  {key}: {value}")
        if self.audit_stats is not None:
            lines.append("audit:")
            for key, value in self.audit_stats.items():
                lines.append(f"  {key}: {value}")
        if self.cache_stats is not None:
            lines.append("cache:")
            for key, value in self.cache_stats.items():
                lines.append(f"  {key}: {value}")
        if self.usage_stats is not None:
            lines.append("usage:")
            for key, value in self.usage_stats.items():
                if key == "tenants":
                    for tenant, totals in value.items():
                        summary = "  ".join(
                            f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                            for k, v in totals.items()
                        )
                        lines.append(f"  tenant {tenant}: {summary}")
                else:
                    lines.append(f"  {key}: {value}")
        if self.slow_queries:
            lines.append(f"slow queries ({len(self.slow_queries)}):")
            for record in self.slow_queries:
                lines.append("  " + record.to_text().replace("\n", "\n  "))
        for note in self.notes:
            lines.append(note)
        return "\n".join(lines)


def run_doctor(
    schema: Any = None,
    *,
    metrics: Any = None,
    rules: Iterable[AlertRule] | None = None,
    wal_path: Any = None,
    slow_log: SlowQueryLog | None = None,
    audit_log: Any = None,
    exporters: Iterable[Any] = (),
    bus: Any = None,
    cache: Any = None,
    usage: Any = None,
    flight: Any = None,
    flight_dir: Any = None,
) -> DoctorReport:
    """One health sweep: alerts + integrity + WAL stats + slow queries.

    Every input is optional; absent subsystems are skipped with a note,
    so the doctor runs identically on a bare schema and on a fully wired
    deployment.

    The events sweep covers the CDC/audit layer: ``audit_log`` (a path)
    is cross-checked against ``wal_path`` — an audit trail that names a
    commit LSN the journal does not know about, or that never saw the
    journal's last commit, means the two diverged (wrong file, truncated
    journal, or a crash between the WAL append and the audit append) and
    warns.  ``exporters`` (objects with ``.stats()``, e.g.
    :class:`~repro.observability.export.PushExporter`) and ``bus`` (an
    :class:`~repro.observability.events.EventBus`) warn when they have
    dropped events or exhausted push retries — the telemetry pipeline is
    lossy by design, and the doctor is where the loss becomes visible.

    ``cache`` (a :class:`~repro.cache.VersionedResultCache`, or anything
    with a ``stats()`` dict) adds a residency/hit-rate section.  Cache
    numbers are purely informational — a cold or thrashing cache is a
    performance fact, not a health fault — so they never move ``status``.

    ``usage`` (a :class:`~repro.observability.usage.UsageMeter`) adds a
    per-tenant attribution section — like the cache section it informs
    and never moves ``status``.  ``flight`` (a
    :class:`~repro.observability.flight.FlightRecorder`) arms the
    post-mortem path: when the sweep lands on FAIL the recorder dumps a
    checksummed debug bundle into ``flight_dir`` (default
    ``debug-bundle``) and the report notes where it went — the moment
    the doctor says "something is wrong" is exactly when the recent
    spans/audit trail should stop scrolling away.
    """
    # Imported lazily: repro.robustness.wal imports the observability
    # runtime, so a module-level import here would be a cycle.
    from repro.robustness import IntegrityChecker, WALError, WriteAheadJournal

    report = DoctorReport()
    active_rules = DEFAULT_RULES if rules is None else tuple(rules)
    if metrics is not None:
        report.alerts = evaluate_rules(active_rules, metrics.snapshot())
    else:
        report.notes.append("metrics: none attached (alert rules skipped)")
    if schema is not None:
        report.integrity = IntegrityChecker(schema).run()
    else:
        report.notes.append("schema: none given (integrity sweep skipped)")
    if wal_path is not None:
        from repro.robustness.wal import sweep_journal

        sweep = sweep_journal(wal_path)
        for severity, message in sweep["problems"]:
            report.alerts.append(
                AlertResult(
                    rule=AlertRule(
                        name=f"wal sweep: {message}",
                        metric="wal",
                        op=">",
                        threshold=0,
                        severity=severity,
                    ),
                    fired=True,
                    observed=1.0,
                )
            )
        if metrics is not None and getattr(metrics, "enabled", False):
            if sweep["checksum_failures"]:
                metrics.counter("wal.checksum_failures").inc(
                    sweep["checksum_failures"]
                )
            metrics.gauge("wal.archive_segments").set(sweep["archive_segments"])
    if wal_path is not None and any(
        severity == "fail" for severity, _ in sweep["problems"]
    ):
        # The sweep found unreadable or checksum-mismatched records: a
        # strict open would either raise or (policy-dependent) rewrite the
        # journal, and the doctor must never mutate what it diagnoses.
        report.wal_stats = {
            "path": str(wal_path),
            "records": sweep["records"],
            "checksum_failures": sweep["checksum_failures"],
            "archive_segments": sweep["archive_segments"],
            "archived_records": sweep["archived_records"],
            "error": "; ".join(msg for _, msg in sweep["problems"]),
        }
    elif wal_path is not None:
        try:
            with WriteAheadJournal(wal_path) as journal:
                records = journal.records()
                kinds: dict[str, int] = {}
                for record in records:
                    kind = record.get("kind", "?")
                    kinds[kind] = kinds.get(kind, 0) + 1
                open_txids = {
                    r["txid"] for r in records if r.get("kind") == "begin"
                } - {
                    r["txid"]
                    for r in records
                    if r.get("kind") in ("commit", "abort")
                }
                report.wal_stats = {
                    "path": str(wal_path),
                    "size_bytes": journal.size_bytes,
                    "last_lsn": journal.last_lsn,
                    "records": len(records),
                    "kinds": dict(sorted(kinds.items())),
                    "open_transactions": len(open_txids),
                    "checksum_failures": sweep["checksum_failures"],
                    "archive_segments": sweep["archive_segments"],
                    "archived_records": sweep["archived_records"],
                }
                if open_txids:
                    # A begin without commit/abort means a crash tore the
                    # journal mid-transaction: recovery would discard it.
                    report.alerts.append(
                        AlertResult(
                            rule=AlertRule(
                                name="wal open transactions",
                                metric="wal",
                                op=">",
                                threshold=0,
                            ),
                            fired=True,
                            observed=float(len(open_txids)),
                        )
                    )
        except WALError as exc:
            report.wal_stats = {"path": str(wal_path), "error": str(exc)}
            report.alerts.append(
                AlertResult(
                    rule=AlertRule(
                        name="wal readable",
                        metric="wal",
                        op=">",
                        threshold=0,
                        severity="fail",
                    ),
                    fired=True,
                    observed=1.0,
                )
            )
    if audit_log is not None:
        _sweep_audit(report, audit_log, wal_path)
    for exporter in exporters:
        stats = exporter.stats()
        for counter in ("dropped", "failures"):
            if stats.get(counter, 0) > 0:
                report.alerts.append(
                    AlertResult(
                        rule=AlertRule(
                            name=(
                                f"push exporter "
                                f"{stats.get('name', '?')} {counter}"
                            ),
                            metric="export.push",
                            op=">",
                            threshold=0,
                        ),
                        fired=True,
                        observed=float(stats[counter]),
                    )
                )
    if bus is not None:
        for name, stats in bus.stats()["subscribers"].items():
            if stats.get("dropped", 0) > 0:
                report.alerts.append(
                    AlertResult(
                        rule=AlertRule(
                            name=f"event bus subscriber {name} dropped",
                            metric="events.bus",
                            op=">",
                            threshold=0,
                        ),
                        fired=True,
                        observed=float(stats["dropped"]),
                    )
                )
    if cache is not None:
        report.cache_stats = dict(
            cache if isinstance(cache, Mapping) else cache.stats()
        )
    if usage is not None:
        report.usage_stats = dict(
            usage if isinstance(usage, Mapping) else usage.stats()
        )
    if slow_log is not None:
        report.slow_queries = slow_log.slowest(5)
    if flight is not None and report.status == "fail":
        target = flight_dir if flight_dir is not None else "debug-bundle"
        try:
            manifest = flight.dump(target)
        except OSError as exc:  # pragma: no cover - environment-dependent
            report.notes.append(f"flight recorder: dump failed ({exc})")
        else:
            spans = manifest["files"]["spans.otlp.json"]["entries"]
            report.notes.append(
                f"flight recorder: dumped {spans} spans to {target}"
            )
    return report


def _sweep_audit(report: DoctorReport, audit_log: Any, wal_path: Any) -> None:
    """Cross-check the audit trail against the journal's commit history."""
    from repro.observability.events import last_committed_lsn, read_audit_log

    try:
        entries = read_audit_log(audit_log)
    except (OSError, ValueError) as exc:
        report.audit_stats = {"path": str(audit_log), "error": str(exc)}
        report.alerts.append(
            AlertResult(
                rule=AlertRule(
                    name="audit log readable",
                    metric="audit",
                    op=">",
                    threshold=0,
                    severity="fail",
                ),
                fired=True,
                observed=1.0,
            )
        )
        return
    audit_lsn = max(
        (entry["lsn"] for entry in entries if "lsn" in entry), default=None
    )
    report.audit_stats = {
        "path": str(audit_log),
        "entries": len(entries),
        "last_lsn": audit_lsn,
    }
    if wal_path is None:
        report.notes.append("audit: no journal given (LSN cross-check skipped)")
        return
    wal_lsn = last_committed_lsn(wal_path)
    report.audit_stats["wal_last_committed_lsn"] = wal_lsn
    if audit_lsn is None:
        return
    if wal_lsn is None or audit_lsn != wal_lsn:
        report.alerts.append(
            AlertResult(
                rule=AlertRule(
                    name=(
                        f"audit/journal LSN divergence (audit {audit_lsn}, "
                        f"journal {wal_lsn})"
                    ),
                    metric="audit",
                    op=">",
                    threshold=0,
                ),
                fired=True,
                observed=float(audit_lsn),
            )
        )
