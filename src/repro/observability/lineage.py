"""Per-cell query lineage: *why* does a cell hold this value and confidence?

The paper's whole point is that a cell of a comparison-mode result is
*derived*: produced by routing facts along mapping relationships, applying
per-measure mapping functions, and folding confidences with the ``⊗cf``
algebra (§3.1, Definition 12).  The §5.2 prototype promises the user
"direct access to very precise information on the way the data were
calculated" — this module delivers that promise for the query layer.

A :class:`LineageRecorder` attached to a
:class:`~repro.core.query.QueryEngine` (or reached through the
``explain=`` surface of :class:`~repro.mvql.session.MVQLSession` and
:class:`~repro.olap.cube.Cube`) captures, per result cell:

* the **contributing MultiVersion rows** — member-version coordinates,
  fact time, per-measure value and confidence, and the provenance strings
  the fact-table builder recorded (naming the exact mapping relationship
  endpoints and the mapping function applied per measure);
* the **⊗cf reduction steps** — the fold ``sd ⊗cf am -> am; am ⊗cf sd ->
  am`` that produced the cell's confidence, in the engine's exact fold
  order (shard merges included, since finalize folds the merged lists).

:meth:`LineageRecorder.explain_cell` returns a :class:`CellLineage` whose
``to_text()`` renders a readable tree; ``repro lineage "<mvql select>"``
is the CLI surface.

:data:`NULL_LINEAGE` is the disabled counterpart (the same null-object
pattern as :data:`~repro.observability.tracing.NULL_TRACER`): every hook
is a no-op and ``enabled`` is ``False``, so the engine's hot loop pays one
hoisted boolean test per matched row and nothing else.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "LineageContribution",
    "CellLineage",
    "LineageRecorder",
    "NullLineage",
    "NULL_LINEAGE",
]


@dataclass(frozen=True)
class LineageContribution:
    """One MultiVersion row's contribution to a result cell.

    ``coordinates`` are the (dimension, member-version id) pairs of the
    contributing row — the *exact member versions* behind the cell;
    ``provenance`` carries the fact-table builder's route descriptions
    (mapping relationship endpoints and the applied mapping function per
    measure, e.g. ``"idE -> idB via {'amount': 'x -> 0.4*x'}"``).
    """

    coordinates: tuple[tuple[str, str], ...]
    t: Any
    value: float | None
    confidence: str | None
    provenance: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering."""
        return {
            "coordinates": dict(self.coordinates),
            "t": str(self.t),
            "value": self.value,
            "confidence": self.confidence,
            "provenance": list(self.provenance),
        }


@dataclass(frozen=True)
class CellLineage:
    """The full derivation of one result cell.

    ``value``/``confidence`` are exactly what the query returned for the
    cell (finalize records them as it folds); ``fold_steps`` spell the
    ``⊗cf`` reduction one combine at a time.
    """

    mode: str
    group: tuple[object, ...]
    measure: str
    value: float | None
    confidence: str | None
    contributions: tuple[LineageContribution, ...]
    fold_steps: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering."""
        return {
            "mode": self.mode,
            "group": [None if g is None else str(g) for g in self.group],
            "measure": self.measure,
            "value": self.value,
            "confidence": self.confidence,
            "contributions": [c.to_dict() for c in self.contributions],
            "fold_steps": list(self.fold_steps),
        }

    def to_text(self) -> str:
        """The readable derivation tree ``repro lineage`` prints."""
        label = ", ".join("(none)" if g is None else str(g) for g in self.group)
        value = "?" if self.value is None else f"{self.value:g}"
        cf = self.confidence if self.confidence else "-"
        lines = [f"cell ({label}) · {self.measure} = {value} ({cf})  [mode {self.mode}]"]
        lines.append(f"  contributions ({len(self.contributions)}):")
        for i, contribution in enumerate(self.contributions, start=1):
            coords = ", ".join(f"{d}={m}" for d, m in contribution.coordinates)
            cvalue = "?" if contribution.value is None else f"{contribution.value:g}"
            ccf = contribution.confidence if contribution.confidence else "-"
            lines.append(
                f"    {i}. {coords}  t={contribution.t}  "
                f"{self.measure}={cvalue} ({ccf})"
            )
            for step in contribution.provenance:
                lines.append(f"       via {step}")
        if self.fold_steps:
            lines.append("  ⊗cf reduction:")
            for step in self.fold_steps:
                lines.append(f"    {step}")
        elif self.contributions:
            lines.append("  ⊗cf reduction: single contribution (no fold)")
        return "\n".join(lines)


def _coordinate_key(contribution: LineageContribution) -> tuple:
    return (str(contribution.t), contribution.coordinates)


class LineageRecorder:
    """Captures per-cell provenance while a query executes.

    Attach one to a :class:`~repro.core.query.QueryEngine` (``lineage=``)
    or build a session/cube with ``explain=True``.  Thread-safe: shard
    workers of a :class:`~repro.concurrency.sharding.ShardedExecutor`
    record through the same instance; contributions are sorted by
    ``(t, coordinates)`` at explain time so the rendered tree is
    deterministic regardless of shard completion order.

    Set :attr:`enabled` to ``False`` to pause capture without detaching
    the recorder (the benchmark's "disabled" configuration).
    """

    def __init__(self) -> None:
        self.enabled = True
        self._lock = threading.Lock()
        # (mode, group) -> contributing MV rows, appended during collect.
        self._contributions: dict[tuple[str, tuple], list] = {}
        # (mode, group, measure) -> CellLineage, written during finalize.
        self._cells: dict[tuple[str, tuple, str], CellLineage] = {}

    # -- capture hooks (called by the query engine) ------------------------------

    def begin(self, mode: str) -> None:
        """Forget the given mode's previous capture (one query's worth)."""
        with self._lock:
            for key in [k for k in self._contributions if k[0] == mode]:
                del self._contributions[key]
            for key in [k for k in self._cells if k[0] == mode]:
                del self._cells[key]

    def add_contribution(self, mode: str, group: tuple, row) -> None:
        """Record one MV row contributing to ``group`` (collect phase)."""
        with self._lock:
            self._contributions.setdefault((mode, group), []).append(row)

    def record_cell(
        self,
        mode: str,
        group: tuple,
        measure: str,
        value: float | None,
        confidence,
        contributions: Sequence[tuple],
        aggregator,
    ) -> None:
        """Record one folded cell (finalize phase).

        ``contributions`` is the engine's merged ``(value, confidence)``
        list in exact fold order; the ``⊗cf`` steps are re-derived with
        the schema's own ``aggregator`` so the recorded reduction is the
        one the engine actually performed.
        """
        steps: list[str] = []
        pairs = list(contributions)
        if len(pairs) > 1:
            acc = pairs[0][1]
            for _value, cf in pairs[1:]:
                nxt = aggregator.combine(acc, cf)
                steps.append(f"{acc.symbol} ⊗cf {cf.symbol} -> {nxt.symbol}")
                acc = nxt
        with self._lock:
            rows = list(self._contributions.get((mode, group), ()))
        entries = tuple(
            sorted(
                (
                    LineageContribution(
                        coordinates=tuple(sorted(row.coordinates.items())),
                        t=row.t,
                        value=row.value(measure),
                        confidence=row.confidence(measure).symbol,
                        provenance=tuple(row.provenance),
                    )
                    for row in rows
                ),
                key=_coordinate_key,
            )
        )
        cell = CellLineage(
            mode=mode,
            group=group,
            measure=measure,
            value=value,
            confidence=confidence.symbol if confidence is not None else None,
            contributions=entries,
            fold_steps=tuple(steps),
        )
        with self._lock:
            self._cells[(mode, group, measure)] = cell

    # -- reading -----------------------------------------------------------------

    def cells(self) -> list[tuple[str, tuple, str]]:
        """Every recorded ``(mode, group, measure)`` key, sorted."""
        with self._lock:
            keys = list(self._cells)
        return sorted(keys, key=lambda k: (k[0], tuple(str(g) for g in k[1]), k[2]))

    def explain_cell(
        self,
        group: Sequence[object] | object,
        measure: str | None = None,
        *,
        mode: str | None = None,
    ) -> CellLineage | list[CellLineage]:
        """The derivation of the cell(s) at a group key.

        ``group`` is the result row's group tuple (a bare scalar is
        wrapped); labels match either exactly or by string rendering, so
        ``("2002", "Sales")`` finds the cell however the engine typed its
        labels.  With ``measure`` the single :class:`CellLineage` is
        returned; without it, one per recorded measure.  ``mode``
        disambiguates when several modes were captured.
        """
        if isinstance(group, (list, tuple)):
            wanted = tuple(group)
        else:
            wanted = (group,)
        with self._lock:
            items = list(self._cells.items())

        def group_matches(recorded: tuple) -> bool:
            if recorded == wanted:
                return True
            if len(recorded) != len(wanted):
                return False
            return all(
                str(r) == str(w) for r, w in zip(recorded, wanted)
            )

        hits = [
            cell
            for (cell_mode, cell_group, cell_measure), cell in items
            if group_matches(cell_group)
            and (measure is None or cell_measure == measure)
            and (mode is None or cell_mode == mode)
        ]
        if not hits:
            known = ", ".join(
                f"{m}:{tuple(str(g) for g in grp)}/{meas}"
                for m, grp, meas in self.cells()[:8]
            )
            raise KeyError(
                f"no lineage recorded for cell {wanted!r}"
                + (f" measure {measure!r}" if measure else "")
                + (f" mode {mode!r}" if mode else "")
                + (f" (recorded: {known} ...)" if known else " (nothing recorded)")
            )
        if measure is not None and len(hits) == 1:
            return hits[0]
        if measure is not None:
            if mode is None and len({h.mode for h in hits}) > 1:
                raise KeyError(
                    f"cell {wanted!r} recorded in several modes "
                    f"({sorted({h.mode for h in hits})}); pass mode="
                )
            return hits[0]
        return hits

    def to_text(self) -> str:
        """Every recorded cell's derivation tree, concatenated."""
        blocks = []
        for key in self.cells():
            with self._lock:
                cell = self._cells[key]
            blocks.append(cell.to_text())
        return "\n\n".join(blocks)

    def clear(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            self._contributions.clear()
            self._cells.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LineageRecorder(cells={len(self._cells)}, "
            f"enabled={self.enabled})"
        )


class NullLineage:
    """The disabled recorder: every hook is a shared no-op."""

    enabled = False

    def begin(self, mode: str) -> None:
        return None

    def add_contribution(self, mode: str, group: tuple, row) -> None:
        return None

    def record_cell(self, *args: Any, **kwargs: Any) -> None:
        return None

    def cells(self) -> list:
        return []

    def explain_cell(self, *args: Any, **kwargs: Any):
        raise KeyError(
            "lineage capture is disabled — attach a LineageRecorder "
            "(lineage=...) or build the session/cube with explain=True"
        )

    def to_text(self) -> str:
        return ""

    def clear(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullLineage()"


NULL_LINEAGE = NullLineage()
