"""Counters, gauges and fixed-bucket histograms with a Prometheus dump.

A :class:`MetricsRegistry` hands out named instruments, optionally
carrying a small label set (``counter("query.rows_scanned",
{"mode": "tcm"})``) — the label that makes per-structure-version query
cost visible, the key operational signal for evolution-heavy workloads.
``snapshot()`` returns a plain dict for assertions and JSON dumps;
``render_prometheus()`` emits the text exposition format ``repro stats``
prints.

Instruments share one registry lock on mutation, so counts from
shard/ETL worker threads never lose increments.  Instrumented hot loops
are expected to accumulate *local* integers and push them into a counter
once per phase — never to call ``counter()`` (a dict lookup) per row.

:data:`NULL_METRICS` is the disabled counterpart: every instrument it
returns is a shared no-op singleton, and its ``enabled`` flag is the
single guard hot paths check before doing any metrics work at all.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LabelledMetrics",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]

Labels = Mapping[str, str] | None

#: Default latency buckets (seconds): 100µs .. 5s, roughly ×2.5 apart.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (sizes, open-cursor counts)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = lock

    def set(self, value: float) -> None:
        """Set the current value."""
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram (upper bounds; +Inf is implicit)."""

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum", "_lock")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self.count = 0
        self.sum: float = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    def cumulative(self) -> list[tuple[str, int]]:
        """``(upper-bound label, cumulative count)`` pairs, ending at +Inf."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((_format_bound(bound), running))
        out.append(("+Inf", running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


def _format_bound(bound: float) -> str:
    text = f"{bound:.10f}".rstrip("0").rstrip(".")
    return text if text else "0"


def _label_key(labels: Labels) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# Dotted/dashed names are accepted (``_prom_name`` maps them to underscores
# at exposition time); anything else would render as invalid exposition.
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:.\-]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _validate_series(name: str, labels: tuple[tuple[str, str], ...]) -> None:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:.-]* (dots/dashes become underscores "
            "in the Prometheus exposition)"
        )
    for key, _value in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(
                f"invalid label name {key!r} on metric {name!r}: must "
                "match [a-zA-Z_][a-zA-Z0-9_]*"
            )


def _escape_label_value(value: str) -> str:
    # Exposition-format escaping: backslash, double quote, newline.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


class MetricsRegistry:
    """A process- or test-scoped set of named instruments."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple], Counter] = {}
        self._gauges: dict[tuple[str, tuple], Gauge] = {}
        self._histograms: dict[tuple[str, tuple], Histogram] = {}

    # -- instrument access -------------------------------------------------------

    def counter(self, name: str, labels: Labels = None) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            _validate_series(name, key[1])
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, key[1], self._lock)
                )
        return instrument

    def gauge(self, name: str, labels: Labels = None) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            _validate_series(name, key[1])
            with self._lock:
                instrument = self._gauges.setdefault(
                    key, Gauge(name, key[1], self._lock)
                )
        return instrument

    def histogram(
        self,
        name: str,
        labels: Labels = None,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            _validate_series(name, key[1])
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, key[1], self._lock, buckets)
                )
        return instrument

    # -- reading -----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with labels rendered into the key."""
        with self._lock:
            counters = {
                _series_key(c.name, c.labels): c.value
                for c in self._counters.values()
            }
            gauges = {
                _series_key(g.name, g.labels): g.value
                for g in self._gauges.values()
            }
            histograms = {
                _series_key(h.name, h.labels): {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "buckets": h.cumulative(),
                }
                for h in self._histograms.values()
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """The text exposition format, one ``# TYPE`` block per metric name."""
        lines: list[str] = []
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
        ):
            seen: set[str] = set()
            for (name, _labels), instrument in sorted(table.items()):
                pname = _prom_name(name)
                if pname not in seen:
                    lines.append(f"# TYPE {pname} {kind}")
                    seen.add(pname)
                value = instrument.value
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(
                    f"{pname}{_render_labels(instrument.labels)} {rendered}"
                )
        seen_h: set[str] = set()
        for (name, _labels), hist in sorted(self._histograms.items()):
            pname = _prom_name(name)
            if pname not in seen_h:
                lines.append(f"# TYPE {pname} histogram")
                seen_h.add(pname)
            for bound, cumulative in hist.cumulative():
                le = 'le="%s"' % bound
                lines.append(
                    f"{pname}_bucket{_render_labels(hist.labels, le)} {cumulative}"
                )
            lines.append(
                f"{pname}_sum{_render_labels(hist.labels)} {hist.sum:g}"
            )
            lines.append(
                f"{pname}_count{_render_labels(hist.labels)} {hist.count}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def _series_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    return name + _render_labels(labels)


class LabelledMetrics:
    """A registry view that stamps fixed labels onto every instrument.

    Wrapping a shared registry with ``LabelledMetrics(registry,
    {"tenant": "acme"})`` gives a tenant's engines their own label
    dimension on every counter/gauge/histogram they touch while the data
    still lands in the one shared registry — the mechanism behind
    per-tenant attribution of ``query.rows_scanned`` and friends.  The
    stamped labels win over same-named call-site labels, so a series can
    never escape its attribution.
    """

    def __init__(self, registry: Any, labels: Mapping[str, str]) -> None:
        self._registry = registry
        self.labels = {str(k): str(v) for k, v in labels.items()}

    @property
    def enabled(self) -> bool:
        return bool(getattr(self._registry, "enabled", False))

    @property
    def registry(self) -> Any:
        """The underlying shared registry."""
        return self._registry

    def _merge(self, labels: Labels) -> dict[str, str]:
        if not labels:
            return self.labels
        return {**labels, **self.labels}

    def counter(self, name: str, labels: Labels = None) -> Any:
        return self._registry.counter(name, self._merge(labels))

    def gauge(self, name: str, labels: Labels = None) -> Any:
        return self._registry.gauge(name, self._merge(labels))

    def histogram(self, name: str, labels: Labels = None, **kwargs: Any) -> Any:
        return self._registry.histogram(name, self._merge(labels), **kwargs)

    def snapshot(self) -> dict[str, Any]:
        return self._registry.snapshot()

    def render_prometheus(self) -> str:
        return self._registry.render_prometheus()

    def reset(self) -> None:
        self._registry.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LabelledMetrics({self._registry!r}, {self.labels!r})"


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        return None

    def dec(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every instrument is one shared no-op."""

    enabled = False

    def counter(self, name: str, labels: Labels = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labels: Labels = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labels: Labels = None, **_kw: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render_prometheus(self) -> str:
        return ""

    def reset(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullMetrics()"


NULL_METRICS = NullMetrics()
