"""repro.observability — tracing, metrics and query profiling.

The ROADMAP's production north-star needs one thing before any further
perf work can be judged: knowing *where time goes*.  This package
provides the three primitives and the process-wide wiring:

* :class:`~repro.observability.tracing.Tracer` — context-manager spans
  forming a tree (thread-local nesting, explicit ``parent=`` for worker
  threads), monotonic-clock timings, JSONL export;
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges and fixed-bucket histograms with a Prometheus-style text dump
  and a plain-dict ``snapshot()``;
* :class:`~repro.observability.profile.QueryProfile` — an EXPLAIN-style
  per-phase / per-shard / per-structure-version breakdown of one query
  (:func:`~repro.observability.profile.profile_query`).

Instrumented classes (:class:`~repro.core.query.QueryEngine`,
:class:`~repro.concurrency.sharding.ShardedExecutor`,
:class:`~repro.robustness.transactions.TransactionManager`,
:class:`~repro.warehouse.etl.ETLPipeline`, …) accept explicit
``tracer=`` / ``metrics=`` parameters; without them they route through
the process-wide defaults here, which are no-op-cheap until
:func:`enable` (or the scoped :func:`instrumented`) is called.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from .runtime import (
    current_metrics,
    current_tracer,
    disable,
    enable,
    enabled,
    instrumented,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "enable",
    "disable",
    "enabled",
    "current_tracer",
    "current_metrics",
    "instrumented",
    "QueryProfile",
    "profile_query",
]


def __getattr__(name: str):
    # profile.py imports the query engine, which imports this package —
    # resolving the profiling surface lazily keeps the import acyclic.
    if name in ("QueryProfile", "profile_query"):
        from . import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
