"""repro.observability — tracing, metrics and query profiling.

The ROADMAP's production north-star needs one thing before any further
perf work can be judged: knowing *where time goes*.  This package
provides the three primitives and the process-wide wiring:

* :class:`~repro.observability.tracing.Tracer` — context-manager spans
  forming a tree (thread-local nesting, explicit ``parent=`` for worker
  threads), monotonic-clock timings, JSONL export;
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges and fixed-bucket histograms with a Prometheus-style text dump
  and a plain-dict ``snapshot()``;
* :class:`~repro.observability.profile.QueryProfile` — an EXPLAIN-style
  per-phase / per-shard / per-structure-version breakdown of one query
  (:func:`~repro.observability.profile.profile_query`);
* :class:`~repro.observability.lineage.LineageRecorder` — per-cell
  provenance for comparison-mode queries (contributing member versions,
  mapping functions, ``⊗cf`` reduction steps), the ``explain_cell``
  surface;
* :mod:`~repro.observability.export` — OTLP-JSON span export for real
  collectors plus :class:`~repro.observability.export.TraceSampler`
  (deterministic ratio sampling, always-on-error), and the *push* side:
  :class:`~repro.observability.export.PushExporter` background flushers
  (:class:`~repro.observability.export.SpanPusher` /
  :class:`~repro.observability.export.MetricsPusher`) draining into
  file or ``http.client`` sinks under retry backoff;
* :mod:`~repro.observability.events` — change-data-capture over the
  WAL: :class:`~repro.observability.events.ChangeStream` tails
  committed records in commit-LSN order across compaction boundaries,
  :class:`~repro.observability.events.EventBus` fans change and audit
  events to bounded subscriber queues, and
  :class:`~repro.observability.events.AuditLog` is the server tier's
  JSONL audit trail (``repro tail`` / ``repro audit --log``);
* :mod:`~repro.observability.health` — the slow-query log, declarative
  :class:`~repro.observability.health.AlertRule` thresholds over metric
  snapshots, and :func:`~repro.observability.health.run_doctor` behind
  ``repro doctor``.

Instrumented classes (:class:`~repro.core.query.QueryEngine`,
:class:`~repro.concurrency.sharding.ShardedExecutor`,
:class:`~repro.robustness.transactions.TransactionManager`,
:class:`~repro.warehouse.etl.ETLPipeline`, …) accept explicit
``tracer=`` / ``metrics=`` parameters; without them they route through
the process-wide defaults here, which are no-op-cheap until
:func:`enable` (or the scoped :func:`instrumented`) is called.
"""

from .events import (
    AUDIT_ACTIONS,
    AuditEvent,
    AuditLog,
    CDC_KINDS,
    ChangeEvent,
    ChangeStream,
    EventBus,
    Subscription,
    committed_events,
    last_committed_lsn,
    publish_commits,
    read_audit_log,
)
from .export import (
    ExportError,
    FileSink,
    HTTPSink,
    MetricsPusher,
    PushExporter,
    SpanPusher,
    TraceSampler,
    format_traceparent,
    parse_traceparent,
    read_otlp_json,
    read_push_file,
    spans_to_otlp,
    tracer_to_otlp,
    write_otlp_json,
)
from .flight import FlightRecorder, read_manifest
from .health import (
    AlertResult,
    AlertRule,
    DEFAULT_RULES,
    DoctorReport,
    SlowQueryLog,
    SlowQueryRecord,
    evaluate_rules,
    histogram_quantile,
    run_doctor,
    statement_digest,
)
from .lineage import (
    CellLineage,
    LineageContribution,
    LineageRecorder,
    NULL_LINEAGE,
    NullLineage,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelledMetrics,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from .runtime import (
    current_metrics,
    current_tracer,
    disable,
    enable,
    enabled,
    instrumented,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, read_jsonl
from .usage import UsageCharge, UsageMeter, UsageRecord, read_usage_log

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LabelledMetrics",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "TraceSampler",
    "format_traceparent",
    "parse_traceparent",
    "spans_to_otlp",
    "tracer_to_otlp",
    "write_otlp_json",
    "read_otlp_json",
    "ExportError",
    "FileSink",
    "HTTPSink",
    "PushExporter",
    "SpanPusher",
    "MetricsPusher",
    "read_push_file",
    "CDC_KINDS",
    "AUDIT_ACTIONS",
    "ChangeEvent",
    "ChangeStream",
    "committed_events",
    "last_committed_lsn",
    "EventBus",
    "Subscription",
    "publish_commits",
    "AuditEvent",
    "AuditLog",
    "read_audit_log",
    "LineageContribution",
    "CellLineage",
    "LineageRecorder",
    "NullLineage",
    "NULL_LINEAGE",
    "SlowQueryLog",
    "SlowQueryRecord",
    "statement_digest",
    "histogram_quantile",
    "AlertRule",
    "AlertResult",
    "evaluate_rules",
    "DEFAULT_RULES",
    "DoctorReport",
    "run_doctor",
    "UsageCharge",
    "UsageMeter",
    "UsageRecord",
    "read_usage_log",
    "FlightRecorder",
    "read_manifest",
    "enable",
    "disable",
    "enabled",
    "current_tracer",
    "current_metrics",
    "instrumented",
    "QueryProfile",
    "profile_query",
]


def __getattr__(name: str):
    # profile.py imports the query engine, which imports this package —
    # resolving the profiling surface lazily keeps the import acyclic.
    if name in ("QueryProfile", "profile_query"):
        from . import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
