"""Per-tenant usage metering: who is burning the engine's budget?

A multi-tenant warehouse whose structures keep evolving has a uniquely
slippery cost model — the same MVQL text can scan ten times the rows
after a ``Reclassify`` — so global counters are not enough; operators
need engine work *attributed*.  :class:`UsageMeter` does that without
touching the hot loops: the engines already push per-phase deltas into a
shared :class:`~repro.observability.metrics.MetricsRegistry`, and a
server session wraps that registry in
:class:`~repro.observability.metrics.LabelledMetrics` so every series it
touches carries a ``tenant`` label.  The meter then snapshots the
tenant's labelled series immediately before and after each statement;
the difference *is* that statement's bill (statements within one session
are sequential, and concurrent tenants write disjoint labelled series,
so the deltas never race).

Bills accumulate in a bounded ledger keyed by ``(tenant, session,
statement_digest)`` — the digest collapses repeated shapes of the same
statement, mirroring :class:`~repro.observability.health.SlowQueryLog`
grouping.  Every committed charge can also append one JSONL line
(:func:`read_usage_log` reads it back) and republish on an
:class:`~repro.observability.events.EventBus` under the ``"usage"``
topic, so the push/CDC plumbing from PR 8 carries billing events too.

The meter is surfaced four ways: the ``usage`` protocol op, the ``repro
usage`` CLI, a ``usage`` section on the doctor report, and the
flight-recorder debug bundle.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from .health import statement_digest

__all__ = ["UsageCharge", "UsageMeter", "UsageRecord", "read_usage_log"]

#: Engine counters the meter attributes, as ``(ledger field, metric name)``.
METERED_COUNTERS = (
    ("rows_scanned", "query.rows_scanned"),
    ("rows_matched", "query.rows_matched"),
    ("cells_emitted", "query.cells_emitted"),
    ("cache_hits", "query.cache_hits"),
    ("cache_misses", "query.cache_misses"),
)

_STATEMENT_PREVIEW = 120


@dataclass
class UsageRecord:
    """One ledger entry: everything a statement shape cost a tenant."""

    tenant: str
    session: str
    digest: str
    op: str
    statement: str | None = None
    statements: int = 0
    errors: int = 0
    seconds: float = 0.0
    wire_bytes: int = 0
    rows_scanned: float = 0.0
    rows_matched: float = 0.0
    cells_emitted: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "tenant": self.tenant,
            "session": self.session,
            "digest": self.digest,
            "op": self.op,
            "statements": self.statements,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
            "wire_bytes": self.wire_bytes,
        }
        for field_name, _metric in METERED_COUNTERS:
            out[field_name] = getattr(self, field_name)
        if self.statement:
            out["statement"] = self.statement
        return out


class UsageCharge:
    """The in-flight handle :meth:`UsageMeter.measure` yields.

    The server adds what the registry cannot see — bytes on the wire —
    before the context exits.
    """

    __slots__ = ("tenant", "session", "op", "statement", "wire_bytes")

    def __init__(
        self, tenant: str, session: str, op: str, statement: str | None
    ) -> None:
        self.tenant = tenant
        self.session = session
        self.op = op
        self.statement = statement
        self.wire_bytes = 0

    def add_wire_bytes(self, count: int) -> "UsageCharge":
        """Charge protocol bytes (request and/or response) to this call."""
        self.wire_bytes += int(count)
        return self


class UsageMeter:
    """Attributes engine counter deltas to ``(tenant, session, digest)``.

    ``metrics`` is the *shared* registry the server and every tenant's
    :class:`~repro.observability.metrics.LabelledMetrics` view write
    into.  ``path`` (optional) appends one JSONL line per committed
    charge; ``bus`` (optional) republishes the same event under the
    ``"usage"`` topic.  The ledger holds at most ``capacity`` entries,
    evicting the least-recently-charged — the JSONL trail, not the
    ledger, is the durable record.
    """

    def __init__(
        self,
        metrics: Any,
        *,
        capacity: int = 256,
        path: str | Path | None = None,
        bus: Any = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._metrics = metrics
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.bus = bus
        self._clock = clock
        self._lock = threading.Lock()
        self._ledger: OrderedDict[tuple[str, str, str], UsageRecord] = (
            OrderedDict()
        )
        self.charged = 0
        self.evicted = 0

    # -- measurement -------------------------------------------------------------

    _BY_METRIC = {metric: field_name for field_name, metric in METERED_COUNTERS}

    def _tenant_counters(self, tenant: str) -> dict[str, float]:
        """Current totals of this tenant's metered series.

        This runs twice per metered statement, so it reads the counter
        instruments directly instead of rendering a full ``snapshot()``
        (whose string keys would then need re-parsing).  Registries
        without the internal table — custom metrics facades — fall back
        to the snapshot scan.
        """
        totals = {field_name: 0.0 for field_name, _ in METERED_COUNTERS}
        registry = getattr(self._metrics, "registry", self._metrics)
        counters = getattr(registry, "_counters", None)
        if counters is None:
            return self._tenant_counters_from_snapshot(tenant, totals)
        tag = ("tenant", tenant)
        # list() under the registry lock: counter creation mutates the
        # table from engine threads mid-iteration otherwise.
        with registry._lock:
            instruments = list(counters.values())
        for instrument in instruments:
            field_name = self._BY_METRIC.get(instrument.name)
            if field_name is not None and tag in instrument.labels:
                totals[field_name] += instrument.value
        return totals

    def _tenant_counters_from_snapshot(
        self, tenant: str, totals: dict[str, float]
    ) -> dict[str, float]:
        snapshot = self._metrics.snapshot()["counters"]
        tag = f'tenant="{tenant}"'
        for key, value in snapshot.items():
            brace = key.find("{")
            if brace < 0:
                continue
            field_name = self._BY_METRIC.get(key[:brace])
            if field_name is not None and tag in key[brace:]:
                totals[field_name] += value
        return totals

    @contextmanager
    def measure(
        self,
        tenant: str,
        session: str,
        *,
        op: str = "query",
        statement: str | None = None,
    ) -> Iterator[UsageCharge]:
        """Meter one statement: snapshot-delta the tenant's series around
        the body and commit the bill on exit (errors included, flagged)."""
        before = self._tenant_counters(tenant)
        charge = UsageCharge(tenant, session, op, statement)
        started = time.perf_counter()
        failed = False
        try:
            yield charge
        except BaseException:
            failed = True
            raise
        finally:
            seconds = time.perf_counter() - started
            after = self._tenant_counters(tenant)
            deltas = {k: after[k] - before[k] for k in after}
            self._commit(charge, seconds, deltas, failed)

    def _commit(
        self,
        charge: UsageCharge,
        seconds: float,
        deltas: dict[str, float],
        failed: bool,
    ) -> None:
        digest = statement_digest(charge.statement or charge.op)
        key = (charge.tenant, charge.session, digest)
        with self._lock:
            record = self._ledger.get(key)
            if record is None:
                preview = (
                    charge.statement[:_STATEMENT_PREVIEW]
                    if charge.statement
                    else None
                )
                record = UsageRecord(
                    tenant=charge.tenant,
                    session=charge.session,
                    digest=digest,
                    op=charge.op,
                    statement=preview,
                )
                self._ledger[key] = record
                while len(self._ledger) > self.capacity:
                    self._ledger.popitem(last=False)
                    self.evicted += 1
            else:
                self._ledger.move_to_end(key)
            record.statements += 1
            record.errors += 1 if failed else 0
            record.seconds += seconds
            record.wire_bytes += charge.wire_bytes
            for field_name, delta in deltas.items():
                setattr(record, field_name, getattr(record, field_name) + delta)
            self.charged += 1
        event = {
            "at": round(self._clock(), 6),
            "tenant": charge.tenant,
            "session": charge.session,
            "digest": digest,
            "op": charge.op,
            "seconds": round(seconds, 6),
            "wire_bytes": charge.wire_bytes,
            "ok": not failed,
            **{k: v for k, v in deltas.items()},
        }
        if self.path is not None:
            # Billing must never fail the billed statement: a full disk
            # degrades the trail, not the workload.
            try:
                line = json.dumps(event, separators=(",", ":"))
                with self._lock:
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
            except OSError:  # pragma: no cover - environment-dependent
                pass
        if self.bus is not None:
            self.bus.publish("usage", event)

    # -- reading -----------------------------------------------------------------

    def records(self, tenant: str | None = None) -> list[UsageRecord]:
        """Ledger entries, most recently charged last."""
        with self._lock:
            records = list(self._ledger.values())
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return records

    def top(
        self,
        n: int = 10,
        *,
        by: str = "rows_scanned",
        tenant: str | None = None,
    ) -> list[UsageRecord]:
        """The ``n`` costliest entries by one metered field."""
        if by not in UsageRecord.__dataclass_fields__:
            raise ValueError(f"unknown usage field {by!r}")
        return sorted(
            self.records(tenant), key=lambda r: getattr(r, by), reverse=True
        )[:n]

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-tenant aggregation over the whole ledger."""
        out: dict[str, dict[str, float]] = {}
        for record in self.records():
            bucket = out.setdefault(
                record.tenant,
                {
                    "statements": 0,
                    "errors": 0,
                    "seconds": 0.0,
                    "wire_bytes": 0,
                    **{f: 0.0 for f, _ in METERED_COUNTERS},
                },
            )
            bucket["statements"] += record.statements
            bucket["errors"] += record.errors
            bucket["seconds"] = round(bucket["seconds"] + record.seconds, 6)
            bucket["wire_bytes"] += record.wire_bytes
            for field_name, _metric in METERED_COUNTERS:
                bucket[field_name] += getattr(record, field_name)
        return out

    def to_dicts(self, tenant: str | None = None) -> list[dict[str, Any]]:
        """The ledger as JSON-ready dicts (the wire/CLI shape)."""
        return [r.to_dict() for r in self.records(tenant)]

    def stats(self) -> dict[str, Any]:
        """The doctor's ``usage`` section: ledger health plus totals."""
        with self._lock:
            entries = len(self._ledger)
        return {
            "entries": entries,
            "capacity": self.capacity,
            "charged": self.charged,
            "evicted": self.evicted,
            "tenants": self.totals(),
        }

    def clear(self) -> None:
        """Drop the ledger (the JSONL trail is untouched)."""
        with self._lock:
            self._ledger.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UsageMeter(entries={len(self._ledger)}, "
            f"charged={self.charged})"
        )


def read_usage_log(
    path: str | Path, *, tenant: str | None = None
) -> list[dict[str, Any]]:
    """Read a usage JSONL trail back, optionally filtered by tenant."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        if tenant is None or entry.get("tenant") == tenant:
            out.append(entry)
    return out
