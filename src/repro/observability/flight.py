"""The flight recorder: a bounded ring of recent telemetry, dumpable.

When a warehouse misbehaves the operator's first question is "what just
happened?" — and by then the interesting spans have scrolled past any
live view.  :class:`FlightRecorder` keeps the recent past on hand in
bounded rings: finished spans pulled from a
:class:`~repro.observability.tracing.Tracer` (the same span-id-anchored
cursor :class:`~repro.observability.export.SpanPusher` uses, so a
``tracer.clear()`` never double-counts), audit events captured off an
:class:`~repro.observability.events.EventBus` subscription, and — read
fresh at dump time, since they already live in rings of their own — the
:class:`~repro.observability.health.SlowQueryLog` and the usage ledger.

:meth:`dump` writes one diagnostic directory:

``spans.otlp.json``
    the span ring as OTLP/JSON, re-importable via
    :func:`~repro.observability.export.read_otlp_json`;
``slow_queries.jsonl`` / ``audit.jsonl`` / ``usage.jsonl``
    one JSON object per line;
``metrics.json``
    a registry snapshot;
``MANIFEST.json``
    what was written, entry counts, and a SHA-256 per file — the bundle
    self-verifies, so a truncated copy is detectable.

``repro debug-bundle`` wires this to the shell, and ``run_doctor`` dumps
a bundle automatically when a sweep lands on FAIL.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

from .export import spans_to_otlp

__all__ = ["FlightRecorder", "read_manifest"]

MANIFEST_NAME = "MANIFEST.json"


class FlightRecorder:
    """Collects recent spans/audit events; dumps a checksummed bundle."""

    def __init__(
        self,
        *,
        tracer: Any = None,
        metrics: Any = None,
        slow_log: Any = None,
        usage: Any = None,
        bus: Any = None,
        capacity: int = 512,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.tracer = tracer
        self.metrics = metrics
        self.slow_log = slow_log
        self.usage = usage
        self.capacity = capacity
        self._clock = clock
        self._spans: deque[Any] = deque(maxlen=capacity)
        self._audit: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seen = 0
        self._anchor: int | None = None
        self._subscription = (
            bus.subscribe("flight-recorder", topics=["audit"], max_queue=capacity)
            if bus is not None
            else None
        )

    # -- collection --------------------------------------------------------------

    def collect(self) -> int:
        """Pull new finished spans and queued audit events into the rings;
        returns how many new spans arrived."""
        new_spans = 0
        if self.tracer is not None:
            spans = self.tracer.spans
            if self._seen and (
                len(spans) < self._seen
                or spans[self._seen - 1].span_id != self._anchor
            ):
                self._seen = 0  # the tracer was cleared under us
            fresh = spans[self._seen:]
            self._seen = len(spans)
            if fresh:
                self._anchor = fresh[-1].span_id
                self._spans.extend(fresh)
                new_spans = len(fresh)
        if self._subscription is not None:
            for _topic, event in self._subscription.drain():
                self.record_audit(event)
        return new_spans

    def record_audit(self, entry: dict[str, Any]) -> None:
        """Append one audit entry directly (for callers without a bus)."""
        self._audit.append(dict(entry))

    @property
    def spans(self) -> tuple[Any, ...]:
        return tuple(self._spans)

    @property
    def audit_events(self) -> tuple[dict[str, Any], ...]:
        return tuple(self._audit)

    # -- dumping -----------------------------------------------------------------

    def dump(self, directory: str | Path) -> dict[str, Any]:
        """Write the bundle; returns the manifest (also written as
        ``MANIFEST.json``)."""
        self.collect()
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        files: dict[str, dict[str, Any]] = {}

        def write(name: str, text: str, entries: int) -> None:
            path = target / name
            path.write_text(text, encoding="utf-8")
            files[name] = {
                "entries": entries,
                "bytes": len(text.encode("utf-8")),
                "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
            }

        spans = list(self._spans)
        origin = self.tracer.origin_ns if self.tracer is not None else 0
        document = spans_to_otlp(spans, origin_ns=origin)
        write(
            "spans.otlp.json",
            json.dumps(document, indent=2) + "\n",
            len(spans),
        )
        slow_records = (
            [r.to_dict() for r in self.slow_log.records()]
            if self.slow_log is not None
            else []
        )
        write("slow_queries.jsonl", _jsonl(slow_records), len(slow_records))
        audit = list(self._audit)
        write("audit.jsonl", _jsonl(audit), len(audit))
        usage_records = (
            self.usage.to_dicts() if self.usage is not None else []
        )
        write("usage.jsonl", _jsonl(usage_records), len(usage_records))
        snapshot = (
            self.metrics.snapshot()
            if self.metrics is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        write("metrics.json", json.dumps(snapshot, indent=2) + "\n", 1)

        manifest = {
            "at": round(self._clock(), 6),
            "capacity": self.capacity,
            "files": files,
        }
        (target / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return manifest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder(spans={len(self._spans)}, "
            f"audit={len(self._audit)}, capacity={self.capacity})"
        )


def _jsonl(records: list[dict[str, Any]]) -> str:
    if not records:
        return ""
    return (
        "\n".join(json.dumps(r, separators=(",", ":")) for r in records) + "\n"
    )


def read_manifest(directory: str | Path) -> dict[str, Any]:
    """Read a bundle's manifest back and verify every checksum.

    Raises ``ValueError`` when a listed file is missing or its SHA-256
    disagrees — a corrupt or truncated bundle announces itself.
    """
    target = Path(directory)
    manifest = json.loads((target / MANIFEST_NAME).read_text(encoding="utf-8"))
    for name, info in manifest["files"].items():
        path = target / name
        if not path.exists():
            raise ValueError(f"bundle file missing: {name}")
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        if digest != info["sha256"]:
            raise ValueError(f"bundle file corrupt: {name}")
    return manifest
