"""Context-manager tracing: spans forming a tree, exported as JSONL.

A :class:`Span` is one timed region of work — a query phase, a shard
scan, a WAL append burst, one ETL source.  Spans are opened with
``with tracer.span("query.execute"):`` and nest through a *context-local*
stack (:mod:`contextvars`), so a span opened inside another becomes its
child automatically; work fanned out to worker threads passes
``parent=`` explicitly instead (the worker's own stack then chains any
deeper spans under it).

The stack being a context variable (holding an immutable tuple, replaced
on push/pop) makes nesting correct under **asyncio concurrency** too:
each task runs in its own copied context, so two statements interleaving
on one event-loop thread never adopt each other's spans as parents — the
failure mode a plain thread-local stack has on a server.  Threads behave
exactly as before: a fresh thread starts from the default (empty) stack.

Timings use the monotonic clock (``time.perf_counter_ns``) — wall-clock
adjustments can never produce a negative duration.  Finished spans
accumulate on the tracer (thread-safe) and export as one JSON object per
line (:meth:`Tracer.write_jsonl`), the shape ``repro profile
--trace-out`` emits and the CLI tests parse back.

:data:`NULL_TRACER` is the disabled counterpart: ``span()`` hands back a
single shared no-op context manager — no object allocation, no clock
read — which is what every instrumented hot path sees until
:func:`repro.observability.enable` is called.
"""

from __future__ import annotations

import contextvars
import json
import random
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "format_traceparent",
    "parse_traceparent",
]

_TRACE_ID_MASK = (1 << 128) - 1
_SPAN_ID_MASK = (1 << 64) - 1


def format_traceparent(span: Any) -> str:
    """Render a span as a W3C ``traceparent`` header value.

    ``00-<32-hex traceId>-<16-hex spanId>-<flags>`` — the same 32/16-hex
    id scheme the OTLP exporter emits, so a trace stitched over the wire
    carries the ids a collector would show.  Flag ``01`` means the
    originating tracer sampled this trace; ``00`` tells the far side to
    drop its spans too.
    """
    trace_id = getattr(span, "trace_id", None)
    if trace_id is None:
        trace_id = span.span_id
    flags = "01" if getattr(span, "sampled", True) else "00"
    return (
        f"00-{trace_id & _TRACE_ID_MASK:032x}"
        f"-{span.span_id & _SPAN_ID_MASK:016x}-{flags}"
    )


def parse_traceparent(value: Any) -> tuple[int, int, bool] | None:
    """Parse a ``traceparent`` into ``(trace_id, parent_span_id, sampled)``.

    Returns ``None`` for anything malformed (wrong field widths, non-hex,
    all-zero ids, the reserved ``ff`` version) — per the W3C contract a
    bad header is *ignored*, never an error, so a confused client cannot
    break the server's own tracing.
    """
    if not isinstance(value, str):
        return None
    parts = value.split("-")
    if len(parts) != 4:
        return None
    version, trace_hex, span_hex, flag_hex = parts
    if (
        len(version) != 2
        or len(trace_hex) != 32
        or len(span_hex) != 16
        or len(flag_hex) != 2
    ):
        return None
    try:
        int(version, 16)
        trace_id = int(trace_hex, 16)
        span_id = int(span_hex, 16)
        flags = int(flag_hex, 16)
    except ValueError:
        return None
    if version == "ff" or trace_id == 0 or span_id == 0:
        return None
    return trace_id, span_id, bool(flags & 1)


class Span:
    """One timed region; a node of the trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "start_ns",
        "end_ns",
        "attributes",
        "sampled",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attributes: Mapping[str, Any] | None,
        sampled: bool = True,
        trace_id: int | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        # Local roots use their own span id as the trace id; children
        # inherit it, and a remote parent (``traceparent=``) overrides it
        # so spans on both sides of a socket export under one trace.
        self.trace_id = span_id if trace_id is None else trace_id
        self.start_ns = 0
        self.end_ns = 0
        self.sampled = sampled
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}

    # -- lifecycle (context manager) -------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._pop(self)
        self._tracer._record(self)

    # -- accessors --------------------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (chainable)."""
        self.attributes[key] = value
        return self

    @property
    def finished(self) -> bool:
        """Whether the span has exited."""
        return self.end_ns != 0

    @property
    def duration_ns(self) -> int:
        """Monotonic duration in nanoseconds (0 while still open)."""
        return self.end_ns - self.start_ns if self.finished else 0

    @property
    def duration_s(self) -> float:
        """Monotonic duration in seconds."""
        return self.duration_ns / 1e9

    def to_dict(self, origin_ns: int = 0) -> dict[str, Any]:
        """The JSONL record (start offset relative to ``origin_ns``)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "start_us": (self.start_ns - origin_ns) // 1000,
            "duration_us": self.duration_ns // 1000,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ns / 1e6:.3f}ms)"
        )


class Tracer:
    """Collects spans into a tree; thread-safe; exports JSONL.

    The active-span stack is context-local (a :class:`contextvars.ContextVar`
    holding an immutable tuple): spans opened in the same context nest;
    concurrent asyncio tasks each nest within their own copied context;
    spans opened on worker threads take ``parent=`` explicitly (see
    :class:`~repro.concurrency.sharding.ShardedExecutor` and the ETL
    fan-out).

    ``sampler`` (a :class:`~repro.observability.export.TraceSampler`)
    makes tracing cheap under volume: each *root* span asks the sampler
    whether its trace records, children inherit the decision, and
    unsampled spans are dropped at exit — unless they errored and the
    sampler is ``always_on_error`` (failures always record).
    """

    enabled = True

    def __init__(self, *, sampler: Any = None) -> None:
        self._origin_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        # Span ids count up from a per-tracer random 63-bit base: within
        # one tracer they stay sequential (cheap, ordered), while two
        # tracers whose spans meet in a single distributed trace (client
        # + server joined by a ``traceparent``) cannot collide.
        self._next_id = random.getrandbits(63) | 1
        self._finished: list[Span] = []
        # The stack holds an immutable tuple and is *replaced* on
        # push/pop: tasks sharing a copied context therefore never see
        # each other's mutations (a shared mutable list would leak).
        self._stack: contextvars.ContextVar[tuple[Span, ...]] = (
            contextvars.ContextVar("repro-tracer-stack", default=())
        )
        self.sampler = sampler

    @property
    def origin_ns(self) -> int:
        """The tracer's monotonic origin (span offsets are relative to it)."""
        return self._origin_ns

    # -- span creation -----------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        attributes: Mapping[str, Any] | None = None,
        traceparent: str | None = None,
    ) -> Span:
        """A new span; use as a context manager.

        ``parent`` overrides the context-local nesting (for work handed
        to another thread); by default the innermost open span of the
        current context is the parent.  ``traceparent`` resumes a trace
        started by a *remote* caller: the span adopts the wire trace id,
        names the remote span as its parent, and honours the caller's
        sampling decision (children then inherit all three through the
        context stack as usual).  A malformed ``traceparent`` is ignored.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        remote = parse_traceparent(traceparent) if traceparent else None
        trace_id: int | None = None
        if remote is not None:
            trace_id, parent_id, sampled = remote
        elif parent is not None:
            parent_id = parent.span_id
            sampled = getattr(parent, "sampled", True)
            trace_id = getattr(parent, "trace_id", None)
        else:
            stack = self._stack.get()
            if stack:
                parent_id = stack[-1].span_id
                sampled = stack[-1].sampled
                trace_id = stack[-1].trace_id
            else:
                parent_id = None
                sampled = self.sampler.sample() if self.sampler else True
        return Span(
            self, name, span_id, parent_id, attributes, sampled, trace_id
        )

    def _push(self, span: Span) -> None:
        self._stack.set(self._stack.get() + (span,))

    def _pop(self, span: Span) -> None:
        stack = self._stack.get()
        if stack and stack[-1] is span:
            self._stack.set(stack[:-1])
        elif span in stack:  # pragma: no cover - defensive
            self._stack.set(tuple(s for s in stack if s is not span))

    def _record(self, span: Span) -> None:
        if not span.sampled:
            sampler = self.sampler
            if (
                sampler is None
                or not sampler.always_on_error
                or "error" not in span.attributes
            ):
                return
            sampler.rescue()
        with self._lock:
            self._finished.append(span)

    # -- reading -----------------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every finished span, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def roots(self) -> list[Span]:
        """Finished spans with no parent, in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id is None),
            key=lambda s: s.start_ns,
        )

    def children(self, span: Span) -> list[Span]:
        """Finished children of ``span``, in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: s.start_ns,
        )

    def clear(self) -> None:
        """Drop every finished span (open spans keep recording)."""
        with self._lock:
            self._finished.clear()

    # -- rendering / export -------------------------------------------------------

    def tree_text(self) -> str:
        """The span tree rendered with indentation and millisecond timings."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = ""
            if span.attributes:
                attrs = " " + " ".join(
                    f"{k}={v}" for k, v in sorted(span.attributes.items())
                )
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"{span.duration_ns / 1e6:.3f}ms{attrs}"
            )
            for child in self.children(span):
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Every finished span as a JSON-ready dict, in completion order."""
        origin = self._origin_ns
        return [span.to_dict(origin) for span in self.spans]

    def write_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per span; returns the span count."""
        records = self.to_dicts()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        return len(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={len(self.spans)})"


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a span JSONL file back into dicts (the CLI round-trip)."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    trace_id = None
    sampled = True
    attributes: dict[str, Any] = {}
    duration_ns = 0
    duration_s = 0.0
    finished = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span()`` returns one shared no-op object."""

    enabled = False
    origin_ns = 0
    sampler = None

    def span(self, name: str, **_kwargs: Any) -> _NullSpan:
        """A shared no-op context manager — no allocation, no clock read."""
        return _NULL_SPAN

    spans: tuple[Span, ...] = ()

    def find(self, name: str) -> list[Span]:
        return []

    def roots(self) -> list[Span]:
        return []

    def to_dicts(self) -> list[dict[str, Any]]:
        return []

    def tree_text(self) -> str:
        return ""

    def clear(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


NULL_TRACER = NullTracer()
