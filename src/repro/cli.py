"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the case study and print every paper result table;
* ``mvql "<statement>"`` — execute one (or more) MVQL statements against
  the case study; with no statement, read them from stdin (one per line);
* ``audit`` — audit the case-study schema (a template for auditing your
  own; exits non-zero when the audit finds errors); with ``--log FILE``
  print a server's JSONL audit trail instead (``--tenant`` filters);
* ``graph`` — print the Figure-2 dimension graph;
* ``modes`` — list the temporal modes of presentation;
* ``integrity`` — run the structural invariant checker on the case-study
  schema (exits non-zero on violations);
* ``recover <wal> [--warehouse] [--to LSN|NAME]`` — replay a write-ahead
  journal and report what crash recovery restored (``--warehouse``
  replays the relational catalog/dml records instead of the schema
  operators; ``--to`` rewinds the journal to an LSN or restore point —
  point-in-time recovery);
* ``backup <wal> <dir>`` / ``restore <dir> <wal>`` — copy a journal plus
  its archive segments into a checksummed backup directory, and rebuild
  a journal from one;
* ``asof <wal> "<statement>" [--at LSN|NAME]`` — execute MVQL against
  the historical state the journal described at a past LSN or restore
  point (AS-OF time travel);
* ``tail <wal> [--from-lsn N] [--kinds K1,K2] [--follow]`` — stream the
  committed change events of a journal in commit-LSN order (change data
  capture; ``--follow`` keeps polling for new commits);
* ``snapshot [--wal PATH]`` — open an MVCC snapshot manager over the
  case study and print the current snapshot version, open-snapshot count
  and last checkpoint LSN;
* ``stats [--format prometheus|json]`` — run the demo workload fully
  instrumented and dump the collected metrics;
* ``profile "<mvql select>" [--shards N] [--trace-out FILE]`` — profile
  one MVQL SELECT: per-phase timings, per-shard row counts, and
  per-structure-version scan/emit counts;
* ``lineage "<mvql select>" [--cell "y,label" --measure m]`` — execute
  one SELECT with lineage capture and print each result cell's
  derivation: contributing member versions, mapping functions, and the
  ``⊗cf`` confidence reduction;
* ``doctor [--rules FILE] [--wal PATH] [--audit-log FILE]
  [--format text|json] [--bundle-dir DIR]`` — one health sweep: alert
  rules over the instrumented demo workload's metrics, an integrity
  check of the case-study schema, WAL stats, a per-tenant usage section,
  and (with both ``--wal`` and ``--audit-log``) a cross-check that the
  audit trail agrees with the journal on the last committed LSN; exits 0
  (pass), 1 (warn) or 2 (fail); on FAIL the armed flight recorder dumps
  a diagnostic bundle to ``--bundle-dir``; ``--format json`` prints the
  machine-readable :meth:`DoctorReport.to_dict` shape external probes
  consume;
* ``usage [--tenant T] [--top N] [--format text|json]`` — run the demo
  workload as two metered tenants and print the per-tenant usage
  ledger: statement counts, engine-counter deltas (rows scanned, cells
  emitted, cache hits/misses) and wall time, plus the top statements;
* ``debug-bundle [--out DIR]`` — run the demo workload under a flight
  recorder and dump the diagnostic bundle: recent spans as OTLP-JSON,
  slow-query/audit/usage JSONL, a metrics snapshot, and a checksummed
  ``MANIFEST.json``;
* ``serve --config FILE [--host H] [--port P] [--wal PATH]
  [--audit-log FILE]`` — run the warehouse server over the case study:
  authenticated multi-tenant sessions, MVQL/pivot statements pinned to
  MVCC snapshots, row-level security, admission control, and an
  append-only per-tenant audit trail; SIGTERM/SIGINT drains in-flight
  statements before exiting (``--write-demo-config FILE`` writes the
  two-tenant demo roster and exits);
* ``query --host H --port P --api-key KEY "<statement>" [--asof T]`` —
  execute MVQL against a running server through the client library.

``mvql`` and ``profile`` accept ``--trace-out FILE`` to export the spans
recorded during execution — as JSON Lines by default, or as one
OTLP-JSON document with ``--trace-format otlp`` (what real collectors
ingest); ``--trace-sample R`` keeps roughly a fraction ``R`` of traces
(errors always record).

The CLI is intentionally bound to the built-in case study: it is a
demonstration surface, not a server.  Applications embed the library
directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    audit_schema,
    rank_modes,
    ym,
)
from repro.core.errors import ReproError
from repro.mvql import MVQLSession
from repro.olap import render_dimension_graph
from repro.workloads.case_study import ORG, build_case_study

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multiversion OLAP demo CLI — 'Handling Evolutions in "
            "Multidimensional Structures' (ICDE 2003)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="reproduce the paper's result tables")
    mvql = sub.add_parser("mvql", help="execute MVQL statements")
    mvql.add_argument(
        "statement",
        nargs="*",
        help="MVQL statements (default: read one per line from stdin)",
    )
    _add_trace_options(mvql)
    audit = sub.add_parser(
        "audit",
        help="audit the case-study schema, or show a server audit trail "
        "with --log",
    )
    audit.add_argument(
        "--log",
        default=None,
        metavar="FILE",
        help="print the JSONL server audit trail at FILE instead of "
        "auditing the schema",
    )
    audit.add_argument(
        "--tenant",
        default=None,
        help="with --log: only show this tenant's entries",
    )
    sub.add_parser("graph", help="print the Figure-2 dimension graph")
    sub.add_parser("modes", help="list the temporal modes of presentation")
    sub.add_parser(
        "integrity", help="check the case-study schema's structural invariants"
    )
    recover = sub.add_parser(
        "recover", help="replay a write-ahead journal (crash recovery)"
    )
    recover.add_argument("wal", help="path to the JSONL write-ahead journal")
    recover.add_argument(
        "--warehouse",
        action="store_true",
        help="replay the relational catalog/dml records instead of the "
        "schema operators (row-level warehouse recovery)",
    )
    recover.add_argument(
        "--to",
        default=None,
        metavar="LSN|NAME",
        help="rewind the journal to this LSN or restore-point name "
        "(point-in-time recovery: forward history is dropped)",
    )
    backup = sub.add_parser(
        "backup", help="copy a journal and its archive segments to a backup"
    )
    backup.add_argument("wal", help="path to the JSONL write-ahead journal")
    backup.add_argument("destination", help="backup directory to create")
    restore = sub.add_parser(
        "restore", help="restore a journal from a backup directory"
    )
    restore.add_argument("backup", help="backup directory (from `repro backup`)")
    restore.add_argument("wal", help="journal path to create")
    asof = sub.add_parser(
        "asof", help="execute MVQL against a historical journal state"
    )
    asof.add_argument("wal", help="path to the JSONL write-ahead journal")
    asof.add_argument(
        "statement",
        nargs="*",
        help="MVQL statements (default: read one per line from stdin)",
    )
    asof.add_argument(
        "--at",
        default=None,
        metavar="LSN|NAME",
        help="the target LSN or restore-point name (default: journal head)",
    )
    tail = sub.add_parser(
        "tail", help="stream committed change events from a journal (CDC)"
    )
    tail.add_argument("wal", help="path to the JSONL write-ahead journal")
    tail.add_argument(
        "--from-lsn",
        type=int,
        default=0,
        metavar="N",
        help="resume after this commit LSN (default 0: full history)",
    )
    tail.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2",
        help="comma-separated record kinds to keep "
        "(op, fact, catalog, dml, restore_point)",
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling the journal for new commits (Ctrl-C to stop)",
    )
    snapshot = sub.add_parser(
        "snapshot", help="report the MVCC snapshot state of the case study"
    )
    snapshot.add_argument(
        "--wal",
        default=None,
        help="attach a write-ahead journal (the version clock uses its "
        "LSNs; without one a local counter stands in)",
    )
    stats = sub.add_parser(
        "stats", help="run the demo workload instrumented and dump metrics"
    )
    stats.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default=None,
        help="output shape (default: prometheus)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for compatibility)",
    )
    cache = sub.add_parser(
        "cache", help="versioned result cache: run the demo hot, show stats"
    )
    cache.add_argument(
        "action",
        choices=("stats",),
        help="'stats': run the demo workload twice through a cache-wired "
        "engine and report residency, hit rate and eviction counters",
    )
    cache.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output shape (default: text)",
    )
    profile = sub.add_parser(
        "profile", help="profile one MVQL SELECT (EXPLAIN-ANALYZE style)"
    )
    profile.add_argument("statement", help="an MVQL SELECT statement")
    profile.add_argument(
        "--shards",
        type=int,
        default=4,
        help="row shards for the sharded pass (default 4; 1 disables it)",
    )
    profile.add_argument(
        "--cache",
        action="store_true",
        help="wire the serial pass through a versioned result cache and "
        "report this run's hit/miss/bypass counts",
    )
    _add_trace_options(profile)
    lineage = sub.add_parser(
        "lineage", help="explain how each cell of one SELECT was derived"
    )
    lineage.add_argument("statement", help="an MVQL SELECT statement")
    lineage.add_argument(
        "--cell",
        default=None,
        help='restrict the explanation to one cell, as the comma-separated '
        'group labels of its result row (e.g. "2002,Sales")',
    )
    lineage.add_argument(
        "--measure",
        default=None,
        help="restrict the explanation to one measure",
    )
    doctor = sub.add_parser(
        "doctor", help="health sweep: alerts + integrity + WAL stats"
    )
    doctor.add_argument(
        "--rules",
        default=None,
        help="JSON file with a list of alert-rule objects "
        '({"name", "metric", "op", "threshold"[, "stat", "severity"]}); '
        "default: the built-in rules",
    )
    doctor.add_argument(
        "--wal",
        default=None,
        help="also inspect this write-ahead journal (record counts, "
        "open transactions)",
    )
    doctor.add_argument(
        "--audit-log",
        default=None,
        metavar="FILE",
        help="cross-check this server audit trail against the journal "
        "(warns when their last committed LSNs disagree; needs --wal)",
    )
    doctor.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report shape: readable text (default) or the DoctorReport "
        "JSON external probes consume",
    )
    doctor.add_argument(
        "--bundle-dir",
        default="debug-bundle",
        metavar="DIR",
        help="where the armed flight recorder dumps its diagnostic "
        "bundle when the sweep FAILs (default: debug-bundle)",
    )
    usage = sub.add_parser(
        "usage", help="per-tenant usage metering over the demo workload"
    )
    usage.add_argument(
        "--tenant", default=None, help="show only this tenant's ledger"
    )
    usage.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="how many top statements to list (default 5)",
    )
    usage.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output shape (default: text)",
    )
    bundle = sub.add_parser(
        "debug-bundle",
        help="dump a flight-recorder diagnostic bundle of the demo workload",
    )
    bundle.add_argument(
        "--out",
        default="debug-bundle",
        metavar="DIR",
        help="bundle directory (default: debug-bundle)",
    )
    serve = sub.add_parser(
        "serve", help="run the multi-tenant warehouse server (case study)"
    )
    serve.add_argument(
        "--config",
        default=None,
        help="tenant roster JSON ({'tenants': [...]}); required unless "
        "--write-demo-config",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--wal",
        default=None,
        help="journal evolutions to this write-ahead journal (also feeds "
        "the readiness sweep)",
    )
    serve.add_argument(
        "--audit-log",
        default=None,
        metavar="FILE",
        help="append per-tenant audit events (auth, statements, evolves, "
        "rejections, drain) to this JSONL file",
    )
    serve.add_argument(
        "--usage-log",
        default=None,
        metavar="FILE",
        help="meter per-tenant usage (engine-counter deltas per "
        "statement) and append the charges to this JSONL file; also "
        "enables the server's metrics registry",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        help="write 'host port' to this file once the socket is bound "
        "(lets scripts wait for startup)",
    )
    serve.add_argument(
        "--write-demo-config",
        default=None,
        metavar="FILE",
        help="write the two-tenant demo roster to FILE and exit",
    )
    query = sub.add_parser(
        "query", help="execute MVQL against a running warehouse server"
    )
    query.add_argument(
        "statement",
        nargs="*",
        help="MVQL statements (default: read one per line from stdin)",
    )
    query.add_argument("--host", default="127.0.0.1", help="server address")
    query.add_argument("--port", type=int, required=True, help="server port")
    query.add_argument("--api-key", required=True, help="tenant API key")
    query.add_argument(
        "--asof",
        default=None,
        metavar="LSN|NAME",
        help="execute against the historical state at this LSN or "
        "restore point (server-side AS-OF)",
    )
    query.add_argument(
        "--page-size", type=int, default=None, help="result page size"
    )
    return parser


def _add_trace_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace-out",
        default=None,
        help="write the recorded spans to FILE",
    )
    command.add_argument(
        "--trace-format",
        choices=("jsonl", "otlp"),
        default="jsonl",
        help="span export shape: JSON Lines (default) or one OTLP-JSON "
        "document",
    )
    command.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="R",
        help="record roughly this fraction of traces (errored spans always "
        "record); default 1.0",
    )


def _cmd_demo(out) -> int:
    study = build_case_study()
    engine = QueryEngine(study.schema.multiversion_facts())
    q1 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )
    q2 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
        time_range=Interval(ym(2002, 1), ym(2003, 12)),
    )
    for title, query, modes in (
        ("Q1 (Tables 4-6)", q1, ("tcm", "V1", "V2")),
        ("Q2 (Tables 8-10)", q2, ("tcm", "V2", "V3")),
    ):
        print(f"== {title} ==", file=out)
        for mode in modes:
            print(f"\n-- mode {mode}", file=out)
            print(engine.execute(query.with_mode(mode)).to_text(), file=out)
        print(file=out)
    print("== quality ranking for Q2 (§5.2) ==", file=out)
    for label, quality, _table in rank_modes(engine, q2):
        print(f"  {label:<4} Q = {quality:.3f}", file=out)
    return 0


def _make_tracer(trace_out: str | None, trace_sample: float):
    """A tracer for ``--trace-out`` (sampler-equipped when R < 1)."""
    from repro.observability import TraceSampler, Tracer

    if not trace_out:
        return None
    sampler = TraceSampler(trace_sample) if trace_sample < 1.0 else None
    return Tracer(sampler=sampler)


def _write_trace(tracer, trace_out: str, trace_format: str, out) -> None:
    if trace_format == "otlp":
        from repro.observability import write_otlp_json

        count = write_otlp_json(tracer, trace_out)
        print(f"wrote {count} spans to {trace_out} (OTLP-JSON)", file=out)
    else:
        count = tracer.write_jsonl(trace_out)
        print(f"wrote {count} spans to {trace_out}", file=out)


def _cmd_mvql(
    statements: list[str],
    out,
    trace_out: str | None = None,
    trace_format: str = "jsonl",
    trace_sample: float = 1.0,
) -> int:
    tracer = _make_tracer(trace_out, trace_sample)
    study = build_case_study()
    session = MVQLSession(study.schema.multiversion_facts(), tracer=tracer)
    if not statements:
        statements = [line.strip() for line in sys.stdin if line.strip()]
    status = 0
    for statement in statements:
        print(f"mvql> {statement}", file=out)
        try:
            print(session.execute_to_text(statement), file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            status = 1
        print(file=out)
    if tracer is not None and trace_out is not None:
        _write_trace(tracer, trace_out, trace_format, out)
    return status


def _cmd_audit(out, *, log: str | None = None, tenant: str | None = None) -> int:
    if log is not None:
        import os

        from repro.observability import read_audit_log

        if not os.path.exists(log):
            print(f"error: no audit log at {log}", file=out)
            return 2
        try:
            entries = read_audit_log(log, tenant=tenant)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read audit log {log}: {exc}", file=out)
            return 2
        for entry in entries:
            status = "ok" if entry.get("ok", True) else "FAILED"
            parts = [
                f"{entry.get('at', 0):.3f}",
                f"{entry.get('action', '?'):<10}",
                f"tenant={entry.get('tenant') or '-'}",
                f"session={entry.get('session') or '-'}",
                status,
            ]
            if "lsn" in entry:
                parts.append(f"lsn={entry['lsn']}")
            detail = entry.get("detail")
            if detail:
                parts.append(
                    " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
                )
            print("  ".join(parts), file=out)
        print(f"{len(entries)} audit entries", file=out)
        return 0
    study = build_case_study()
    report = audit_schema(study.schema)
    print(report.to_text(), file=out)
    return 0 if report.ok else 2


def _cmd_tail(
    wal: str, from_lsn: int, kinds: str | None, follow: bool, out
) -> int:
    import os

    from repro.observability import ChangeStream
    from repro.robustness import WALError

    if not follow and not os.path.exists(wal):
        # --follow legitimately waits for a journal that does not exist
        # yet; a one-shot tail of a missing path is a typo.
        print(f"error: no journal at {wal}", file=out)
        return 2
    kind_list = (
        [k.strip() for k in kinds.split(",") if k.strip()] if kinds else None
    )
    try:
        stream = ChangeStream(wal, from_lsn=from_lsn, kinds=kind_list)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2

    def emit(event) -> None:
        record = {
            k: v
            for k, v in event.record.items()
            if k not in ("lsn", "kind", "crc32")
        }
        print(
            f"lsn={event.lsn} commit={event.commit_lsn} txid={event.txid} "
            f"{event.kind} {record}",
            file=out,
        )

    count = 0
    try:
        if follow:
            for event in stream.follow():
                emit(event)
                count += 1
                out.flush()
        else:
            for event in stream.poll():
                emit(event)
                count += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    except WALError as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(f"{count} events (cursor lsn {stream.cursor})", file=out)
    return 0


def _cmd_graph(out) -> int:
    study = build_case_study()
    print(render_dimension_graph(study.org), file=out)
    return 0


def _cmd_modes(out) -> int:
    study = build_case_study()
    for mode in study.schema.presentation_modes():
        print(f"{mode.label}: {mode.describe()}", file=out)
    return 0


def _cmd_integrity(out) -> int:
    from repro.robustness import IntegrityChecker

    study = build_case_study()
    report = IntegrityChecker(study.schema).run()
    print(report.to_text(), file=out)
    return 0 if report.ok else 2


def _parse_target(text: str) -> int | str:
    """``--to``/``--at`` values: digits mean an LSN, anything else a name."""
    stripped = text.strip()
    return int(stripped) if stripped.isdigit() else stripped


def _cmd_recover(
    wal: str, out, *, warehouse: bool = False, to: str | None = None
) -> int:
    from repro.robustness import (
        IntegrityChecker,
        RecoveryError,
        WALError,
        recover_schema,
        recover_warehouse,
    )

    if to is not None:
        from repro.robustness import recover_to

        try:
            report = recover_to(wal, _parse_target(to))
        except (RecoveryError, WALError) as exc:
            print(f"recovery failed: {exc}", file=out)
            return 2
        print(report.to_text(), file=out)
        db = report.database
        for name in db.table_names:
            print(f"table {name}: {len(db.table(name))} rows", file=out)
        print(f"recovered: {report.schema!r}", file=out)
        return 0
    if warehouse:
        try:
            db, wh_report = recover_warehouse(wal)
        except (RecoveryError, WALError) as exc:
            print(f"recovery failed: {exc}", file=out)
            return 2
        print(wh_report.to_text(), file=out)
        for name in db.table_names:
            print(f"table {name}: {len(db.table(name))} rows", file=out)
        print(f"recovered: {db!r}", file=out)
        return 0
    try:
        schema, report = recover_schema(wal)
    except (RecoveryError, WALError) as exc:
        print(f"recovery failed: {exc}", file=out)
        return 2
    print(report.to_text(), file=out)
    print(IntegrityChecker(schema).run().to_text(), file=out)
    print(f"recovered: {schema!r}", file=out)
    return 0


def _cmd_backup(wal: str, destination: str, out) -> int:
    from repro.robustness import WALError, backup_journal

    try:
        report = backup_journal(wal, destination)
    except WALError as exc:
        print(f"backup failed: {exc}", file=out)
        return 2
    print(report.to_text(), file=out)
    return 0


def _cmd_restore(backup: str, wal: str, out) -> int:
    from repro.robustness import WALError, restore_backup

    try:
        report = restore_backup(backup, wal)
    except WALError as exc:
        print(f"restore failed: {exc}", file=out)
        return 2
    print(report.to_text(), file=out)
    return 0


def _cmd_asof(wal: str, statements: list[str], at: str | None, out) -> int:
    from repro.robustness import RecoveryError, WALError, open_as_of

    target = _parse_target(at) if at is not None else None
    try:
        snapshot = open_as_of(wal, target)
    except (RecoveryError, WALError) as exc:
        print(f"as-of failed: {exc}", file=out)
        return 2
    print(f"as of: lsn {snapshot.lsn}", file=out)
    session = snapshot.mvql_session()
    if not statements:
        statements = [line.strip() for line in sys.stdin if line.strip()]
    status = 0
    for statement in statements:
        print(f"mvql> {statement}", file=out)
        try:
            print(session.execute_to_text(statement), file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            status = 1
        print(file=out)
    return status


def _cmd_snapshot(wal: str | None, out) -> int:
    from repro.concurrency import SnapshotManager
    from repro.olap import snapshot_caption
    from repro.robustness import TransactionManager

    study = build_case_study()
    txm = TransactionManager(study.schema, wal=wal)
    manager = SnapshotManager(txm)
    with manager.open_cursor() as cursor:
        print(snapshot_caption(cursor), file=out)
        print(f"snapshot version: {manager.version}", file=out)
        print(
            f"open snapshots: {manager.open_snapshot_count} "
            f"(versions: {manager.open_versions()})",
            file=out,
        )
        checkpoint = manager.last_checkpoint_lsn
        if checkpoint is None:
            print("last checkpoint LSN: none (no journal attached)", file=out)
        else:
            print(f"last checkpoint LSN: {checkpoint}", file=out)
    return 0


def _cmd_stats(fmt: str, out) -> int:
    import json

    from repro.observability import MetricsRegistry, Tracer

    tracer = Tracer()
    metrics = MetricsRegistry()
    study = build_case_study()
    mvft = study.schema.multiversion_facts()
    engine = QueryEngine(mvft, tracer=tracer, metrics=metrics)
    session = MVQLSession(mvft, tracer=tracer, metrics=metrics)
    q1 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )
    q2 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
        time_range=Interval(ym(2002, 1), ym(2003, 12)),
    )
    for query in (q1, q2):
        for mode in mvft.modes.labels:
            engine.execute(query.with_mode(mode))
    session.execute("SELECT amount BY year, org.Division")
    if fmt == "json":
        print(json.dumps(metrics.snapshot(), indent=2, sort_keys=True), file=out)
    else:
        print(metrics.render_prometheus(), file=out)
    return 0


def _cmd_cache(fmt: str, out) -> int:
    import json

    from repro.cache import VersionedResultCache
    from repro.observability import MetricsRegistry

    metrics = MetricsRegistry()
    cache = VersionedResultCache(metrics=metrics)
    study = build_case_study()
    mvft = study.schema.multiversion_facts()
    engine = QueryEngine(mvft, metrics=metrics, cache=cache)
    q1 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )
    q2 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
        time_range=Interval(ym(2002, 1), ym(2003, 12)),
    )
    # Two passes: the first populates the cache, the second is all hits —
    # so the report shows a realistic steady-state hit rate.
    for _ in range(2):
        for query in (q1, q2):
            for mode in mvft.modes.labels:
                engine.execute(query.with_mode(mode))
    stats = cache.stats()
    if fmt == "json":
        print(json.dumps(stats, indent=2, sort_keys=True), file=out)
    else:
        print("versioned result cache", file=out)
        print(f"  policy: {stats['policy']}", file=out)
        print(
            f"  entries: {stats['entries']} "
            f"({stats['bytes']} / {stats['max_bytes']} bytes)",
            file=out,
        )
        print(
            f"  hits: {stats['hits']}  misses: {stats['misses']}  "
            f"hit rate: {stats['hit_rate']:.2f}",
            file=out,
        )
        print(
            f"  evictions: {stats['evictions']}  rejected: {stats['rejected']}",
            file=out,
        )
    return 0


def _cmd_profile(
    statement: str,
    shards: int,
    trace_out: str | None,
    out,
    trace_format: str = "jsonl",
    trace_sample: float = 1.0,
    cache: bool = False,
) -> int:
    from repro.mvql.ast import SelectStatement
    from repro.mvql.parser import parse
    from repro.observability import profile_query

    study = build_case_study()
    mvft = study.schema.multiversion_facts()
    session = MVQLSession(mvft)
    try:
        parsed = parse(statement)
        if not isinstance(parsed, SelectStatement):
            print(
                f"error: profile needs a SELECT statement, got "
                f"{type(parsed).__name__}",
                file=out,
            )
            return 1
        query = session.compile_select(parsed)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 1
    result_cache = None
    if cache:
        from repro.cache import VersionedResultCache

        result_cache = VersionedResultCache()
    profile = profile_query(
        mvft,
        query,
        shards=shards,
        statement=" ".join(statement.split()),
        tracer=_make_tracer(trace_out, trace_sample),
        cache=result_cache,
    )
    print(profile.to_text(), file=out)
    if trace_out is not None and profile.tracer is not None:
        _write_trace(profile.tracer, trace_out, trace_format, out)
    return 0


def _cmd_lineage(
    statement: str, cell: str | None, measure: str | None, out
) -> int:
    from repro.mvql.ast import SelectStatement
    from repro.mvql.parser import parse

    study = build_case_study()
    session = MVQLSession(study.schema.multiversion_facts(), explain=True)
    try:
        parsed = parse(statement)
        if not isinstance(parsed, SelectStatement):
            print(
                f"error: lineage needs a SELECT statement, got "
                f"{type(parsed).__name__}",
                file=out,
            )
            return 1
        table = session.engine.execute(session.compile_select(parsed))
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 1
    print(table.to_text(), file=out)
    print(file=out)
    if cell is not None:
        group = tuple(part.strip() for part in cell.split(","))
        try:
            explained = session.explain_cell(group, measure)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=out)
            return 1
        cells = explained if isinstance(explained, list) else [explained]
        print("\n\n".join(c.to_text() for c in cells), file=out)
        return 0
    print(session.lineage.to_text(), file=out)
    return 0


def _cmd_serve(
    config_path: str | None,
    host: str,
    port: int,
    wal: str | None,
    ready_file: str | None,
    write_demo_config: str | None,
    out,
    audit_log: str | None = None,
    usage_log: str | None = None,
) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.concurrency import SnapshotManager
    from repro.robustness import TransactionManager
    from repro.server import ConfigError, ServerConfig, WarehouseServer, demo_config

    if write_demo_config is not None:
        demo_config().dump(write_demo_config)
        print(f"wrote demo tenant roster to {write_demo_config}", file=out)
        return 0
    if config_path is None:
        print("error: serve needs --config (or --write-demo-config)", file=out)
        return 2
    try:
        config = ServerConfig.load(config_path)
    except ConfigError as exc:
        print(f"error: {exc}", file=out)
        return 2
    study = build_case_study()
    txm = TransactionManager(study.schema, wal=wal)
    manager = SnapshotManager(txm)
    # Metering needs a metrics registry to snapshot engine counters
    # from, so --usage-log switches one on.
    extra: dict = {}
    if usage_log is not None:
        from repro.observability import MetricsRegistry

        extra = {"metrics": MetricsRegistry(), "usage_log": usage_log}
    server = WarehouseServer(
        manager, config, host=host, port=port, wal_path=wal,
        audit_log=audit_log, **extra,
    )

    async def run() -> int:
        await server.start()
        print(
            f"serving on {server.host}:{server.port} "
            f"({len(config.tenants)} tenants)",
            file=out,
        )
        out.flush()
        if ready_file is not None:
            Path(ready_file).write_text(
                f"{server.host} {server.port}\n", encoding="utf-8"
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        drained = await server.shutdown()
        print(
            "shutdown: drained" if drained else "shutdown: drain timed out",
            file=out,
        )
        return 0 if drained else 1

    return asyncio.run(run())


def _cmd_query(
    statements: list[str],
    host: str,
    port: int,
    api_key: str,
    asof: str | None,
    page_size: int | None,
    out,
) -> int:
    from repro.server import RemoteError, RemoteTable, WarehouseClient

    target = _parse_target(asof) if asof is not None else None
    try:
        client = WarehouseClient(host, port, api_key=api_key)
    except OSError as exc:
        print(f"error: cannot connect to {host}:{port}: {exc}", file=out)
        return 2
    except RemoteError as exc:
        print(f"error: {exc} [{exc.code}]", file=out)
        return 2
    if not statements:
        statements = [line.strip() for line in sys.stdin if line.strip()]
    status = 0
    with client:
        session = client.session
        assert session is not None
        print(
            f"tenant {session['tenant']} @ version {session['version']}",
            file=out,
        )
        for statement in statements:
            print(f"mvql> {statement}", file=out)
            try:
                result = client.query(
                    statement, as_of=target, page_size=page_size
                )
            except RemoteError as exc:
                print(f"error: {exc} [{exc.code}]", file=out)
                status = 1
                continue
            if isinstance(result, RemoteTable):
                headers = [*result.columns, *result.measures]
                print("  ".join(headers), file=out)
                for row in result.rows:
                    labels = [
                        "(none)" if g is None else str(g) for g in row["group"]
                    ]
                    for cell in row["cells"]:
                        value = "?" if cell["value"] is None else f"{cell['value']:g}"
                        if cell["confidence"] is not None:
                            value += f" ({cell['confidence']})"
                        labels.append(value)
                    print("  ".join(labels), file=out)
            elif result and isinstance(result, list) and isinstance(
                result[0], dict
            ):
                for entry in result:
                    print(
                        f"{entry['mode']:<6} Q = {entry['quality']:.3f}",
                        file=out,
                    )
            else:
                for line in result:
                    print(line, file=out)
            print(file=out)
    return status


def _run_metered_demo(tracer=None, slow_log=None):
    """Run the demo queries as two metered tenants.

    Each tenant's statements execute through a tenant-labelled metrics
    view inside a :class:`UsageMeter` charge, so the shared registry
    ends up with per-tenant series and the meter with a per-tenant
    ledger — the same shape a live server produces."""
    from repro.observability import LabelledMetrics, MetricsRegistry, UsageMeter

    metrics = MetricsRegistry()
    meter = UsageMeter(metrics)
    study = build_case_study()
    mvft = study.schema.multiversion_facts()
    workload = (
        ("acme", "SELECT amount BY year, org.Division"),
        ("acme", "SELECT amount BY year"),
        ("ops", "SELECT amount BY year, org.Department"),
    )
    for tenant, statement in workload:
        session = MVQLSession(
            mvft,
            metrics=LabelledMetrics(metrics, {"tenant": tenant}),
            tracer=tracer,
            slow_log=slow_log,
        )
        with meter.measure(tenant, f"{tenant}-cli", statement=statement):
            session.execute(statement)
    return metrics, meter


def _cmd_usage(
    out, *, tenant: str | None = None, top: int = 5, fmt: str = "text"
) -> int:
    import json

    _, meter = _run_metered_demo()
    if fmt == "json":
        records = [record.to_dict() for record in meter.top(top, tenant=tenant)]
        print(
            json.dumps(
                {"totals": meter.totals(), "records": records},
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
        return 0
    print("per-tenant usage (demo workload)", file=out)
    for name, bill in sorted(meter.totals().items()):
        if tenant is not None and name != tenant:
            continue
        print(
            f"  tenant {name}: statements={bill['statements']} "
            f"errors={bill['errors']} "
            f"rows_scanned={bill['rows_scanned']:g} "
            f"cells_emitted={bill['cells_emitted']:g} "
            f"cache_hits={bill['cache_hits']:g} "
            f"wire_bytes={bill['wire_bytes']} "
            f"seconds={bill['seconds']:.3f}",
            file=out,
        )
    print(f"top {top} statements by rows_scanned:", file=out)
    for record in meter.top(top, tenant=tenant):
        statement = record.statement or record.op
        print(
            f"  {record.tenant:<8} {record.digest}  x{record.statements}  "
            f"rows_scanned={record.rows_scanned:g}  [{statement[:60]}]",
            file=out,
        )
    return 0


def _cmd_debug_bundle(out, *, directory: str = "debug-bundle") -> int:
    from repro.observability import FlightRecorder, SlowQueryLog, Tracer

    tracer = Tracer()
    slow_log = SlowQueryLog(threshold=0.0)
    metrics, meter = _run_metered_demo(tracer=tracer, slow_log=slow_log)
    recorder = FlightRecorder(
        tracer=tracer, metrics=metrics, slow_log=slow_log, usage=meter
    )
    manifest = recorder.dump(directory)
    print(f"debug bundle: {directory}", file=out)
    for name, info in sorted(manifest["files"].items()):
        print(
            f"  {name}: {info['entries']} entries, {info['bytes']} bytes, "
            f"sha256 {info['sha256'][:12]}",
            file=out,
        )
    return 0


def _cmd_doctor(
    rules_path: str | None,
    wal: str | None,
    out,
    *,
    fmt: str = "text",
    audit_log: str | None = None,
    bundle_dir: str = "debug-bundle",
) -> int:
    import json

    from repro.observability import (
        AlertRule,
        FlightRecorder,
        LabelledMetrics,
        MetricsRegistry,
        SlowQueryLog,
        Tracer,
        UsageMeter,
        run_doctor,
    )

    rules = None
    if rules_path is not None:
        try:
            payload = json.loads(Path(rules_path).read_text(encoding="utf-8"))
            if not isinstance(payload, list):
                raise ValueError("rules file must hold a JSON list")
            rules = [AlertRule.from_dict(item) for item in payload]
        except (OSError, ValueError) as exc:
            print(f"error: cannot load rules from {rules_path}: {exc}", file=out)
            return 2
    # Exercise the demo workload instrumented so the alert rules have
    # real metrics to look at (mirrors `repro stats`).
    from repro.cache import VersionedResultCache

    metrics = MetricsRegistry()
    slow_log = SlowQueryLog(threshold=1.0)
    tracer = Tracer()
    meter = UsageMeter(metrics)
    cache = VersionedResultCache(metrics=metrics)
    study = build_case_study()
    mvft = study.schema.multiversion_facts()
    engine = QueryEngine(
        mvft,
        tracer=tracer,
        # Tenant-labelled so the meter can attribute the engine-counter
        # deltas — the same view a server session gets.
        metrics=LabelledMetrics(metrics, {"tenant": "demo"}),
        slow_log=slow_log,
        cache=cache,
    )
    q1 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )
    for _ in range(2):  # second pass hits the cache, so the report shows both
        for mode in mvft.modes.labels:
            with meter.measure("demo", "doctor", statement=f"q1 [{mode}]"):
                engine.execute(q1.with_mode(mode))
    # The flight recorder is armed over everything the sweep observed —
    # if the report FAILs, run_doctor dumps the diagnostic bundle.
    flight = FlightRecorder(
        tracer=tracer, metrics=metrics, slow_log=slow_log, usage=meter
    )
    report = run_doctor(
        study.schema,
        metrics=metrics,
        rules=rules,
        wal_path=wal,
        slow_log=slow_log,
        audit_log=audit_log,
        cache=cache,
        usage=meter,
        flight=flight,
        flight_dir=bundle_dir,
    )
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.to_text(), file=out)
    return report.exit_code


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo(out)
    if args.command == "mvql":
        return _cmd_mvql(
            list(args.statement),
            out,
            trace_out=args.trace_out,
            trace_format=args.trace_format,
            trace_sample=args.trace_sample,
        )
    if args.command == "audit":
        return _cmd_audit(out, log=args.log, tenant=args.tenant)
    if args.command == "tail":
        return _cmd_tail(args.wal, args.from_lsn, args.kinds, args.follow, out)
    if args.command == "graph":
        return _cmd_graph(out)
    if args.command == "modes":
        return _cmd_modes(out)
    if args.command == "integrity":
        return _cmd_integrity(out)
    if args.command == "recover":
        return _cmd_recover(args.wal, out, warehouse=args.warehouse, to=args.to)
    if args.command == "backup":
        return _cmd_backup(args.wal, args.destination, out)
    if args.command == "restore":
        return _cmd_restore(args.backup, args.wal, out)
    if args.command == "asof":
        return _cmd_asof(args.wal, list(args.statement), args.at, out)
    if args.command == "snapshot":
        return _cmd_snapshot(args.wal, out)
    if args.command == "stats":
        fmt = args.format or ("json" if args.json else "prometheus")
        return _cmd_stats(fmt, out)
    if args.command == "cache":
        return _cmd_cache(args.format, out)
    if args.command == "profile":
        return _cmd_profile(
            args.statement,
            args.shards,
            args.trace_out,
            out,
            trace_format=args.trace_format,
            trace_sample=args.trace_sample,
            cache=args.cache,
        )
    if args.command == "lineage":
        return _cmd_lineage(args.statement, args.cell, args.measure, out)
    if args.command == "doctor":
        return _cmd_doctor(
            args.rules, args.wal, out, fmt=args.format,
            audit_log=args.audit_log,
            bundle_dir=args.bundle_dir,
        )
    if args.command == "usage":
        return _cmd_usage(
            out, tenant=args.tenant, top=args.top, fmt=args.format
        )
    if args.command == "debug-bundle":
        return _cmd_debug_bundle(out, directory=args.out)
    if args.command == "serve":
        return _cmd_serve(
            args.config,
            args.host,
            args.port,
            args.wal,
            args.ready_file,
            args.write_demo_config,
            out,
            audit_log=args.audit_log,
            usage_log=args.usage_log,
        )
    if args.command == "query":
        return _cmd_query(
            list(args.statement),
            args.host,
            args.port,
            args.api_key,
            args.asof,
            args.page_size,
            out,
        )
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
