"""Shard-parallel multiversion aggregation over immutable snapshots.

Snapshot isolation makes the inputs of a query — the MultiVersion fact
table rows and the structure versions behind them — immutable, so they
are trivially shareable across a ``concurrent.futures`` pool.
:class:`ShardedExecutor` exploits the two-phase split of
:class:`~repro.core.query.QueryEngine`:

1. the mode's row slice is partitioned into contiguous shards;
2. each worker runs phase one
   (:meth:`~repro.core.query.QueryEngine.collect_contributions`) over its
   shard, producing a partial group map;
3. partials are merged in shard order
   (:func:`~repro.core.query.merge_contributions`) — contribution lists
   concatenate, so the merged map is *identical* to the serial one, fold
   order included — and phase two
   (:meth:`~repro.core.query.QueryEngine.finalize`) folds ``⊕``/``⊗cf``
   once.

Determinism therefore does not depend on aggregate associativity: the
sharded result is byte-equal to the serial result by construction, which
``tests/concurrency/test_sharded_executor.py`` asserts on the §5 case
study.

Workers default to threads.  CPython's GIL means pure-Python shard work
only overlaps on multi-core interpreters with free-threading or when the
per-shard work releases the GIL; the benchmark records the measured
speedup honestly rather than assuming one (on a single-core container
the win is bounded to ~1×, on multicore builds it approaches the shard
count).  Process pools are deliberately not used: fact rows expose
``MappingProxyType`` views and do not pickle.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.multiversion import MultiVersionFactTable, MVFactRow
from repro.core.query import Query, QueryEngine, ResultTable, merge_contributions

__all__ = ["ShardedExecutor", "shard_rows"]


def shard_rows(
    rows: Sequence[MVFactRow], shards: int
) -> list[Sequence[MVFactRow]]:
    """Partition ``rows`` into at most ``shards`` contiguous, near-equal
    slices (empty slices are dropped; order is preserved)."""
    if shards < 1:
        raise ValueError("need at least one shard")
    n = len(rows)
    if n == 0:
        return []
    shards = min(shards, n)
    size, extra = divmod(n, shards)
    out: list[Sequence[MVFactRow]] = []
    start = 0
    for i in range(shards):
        end = start + size + (1 if i < extra else 0)
        out.append(rows[start:end])
        start = end
    return out


class ShardedExecutor:
    """Runs queries shard-parallel over one (snapshot) MVFT.

    Parameters
    ----------
    mvft:
        The MultiVersion fact table to execute against — open a
        :class:`~repro.concurrency.cursor.SnapshotCursor` and pass its
        ``mvft`` so the inputs are guaranteed immutable.
    max_workers:
        Pool width; defaults to ``os.cpu_count()`` (minimum 2 so the
        sharded path is exercised even on single-core containers).
    shards:
        How many row shards each query is split into; defaults to the
        pool width.
    """

    def __init__(
        self,
        mvft: MultiVersionFactTable,
        *,
        max_workers: int | None = None,
        shards: int | None = None,
        tracer=None,
        metrics=None,
        lineage=None,
        slow_log=None,
        cache=None,
        cache_policy_digest=None,
    ) -> None:
        self.mvft = mvft
        self.engine = QueryEngine(
            mvft,
            tracer=tracer,
            metrics=metrics,
            lineage=lineage,
            slow_log=slow_log,
            cache=cache,
            cache_policy_digest=cache_policy_digest,
        )
        self.max_workers = max_workers or max(2, os.cpu_count() or 1)
        self.shards = shards or self.max_workers

    def execute(self, query: Query) -> ResultTable:
        """Execute ``query`` shard-parallel; byte-equal to the serial path.

        With a cache attached to the shared engine the sharded path
        consults it under the same keys the serial path uses — a result
        computed serially serves sharded readers and vice versa.
        """
        cache = self.engine.cache
        key = None
        if cache is not None and not self.engine.lineage.enabled:
            key = cache.key_for(
                self.mvft, query, self.engine._cache_policy_digest
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
        table = self._execute(query)
        if key is not None:
            cache.put(key, table)
        return table

    def _execute(self, query: Query) -> ResultTable:
        mode, _ = self.engine.resolve(query)
        rows = self.mvft.slice(mode.label)
        parts = shard_rows(rows, self.shards)
        if len(parts) <= 1:
            return self.engine.execute(query)
        # Shard workers record through the shared engine (thread-safe);
        # finalize folds the merged lists, so the recorded ⊗cf steps match
        # the serial fold order exactly.
        if self.engine.lineage.enabled:
            self.engine.lineage.begin(mode.label)
        slow = self.engine.slow_log
        slow_on = slow is not None and slow.enabled
        tracer, metrics = self.engine._observability()
        if not (tracer.enabled or metrics.enabled or slow_on):
            return self._execute_sharded(query, parts)
        with tracer.span(
            "shard.execute",
            attributes={
                "mode": mode.label,
                "shards": len(parts),
                "rows": len(rows),
            },
        ) as root:
            # Workers run on pool threads, so the shard spans name their
            # parent explicitly instead of relying on thread-local nesting.
            def collect(indexed):
                index, part = indexed
                with tracer.span(
                    "shard.collect",
                    parent=root,
                    attributes={"shard": index, "rows": len(part)},
                ):
                    return self.engine.collect_contributions(query, part)

            started = time.perf_counter()
            partials = [collect((0, parts[0]))]
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                partials.extend(pool.map(collect, enumerate(parts[1:], start=1)))
            merge_start = time.perf_counter()
            with tracer.span("shard.merge", parent=root) as merge_span:
                merged = merge_contributions(partials)
                merge_span.set("groups", len(merged))
            merged_at = time.perf_counter()
            metrics.histogram("shard.merge_seconds").observe(merged_at - merge_start)
            with tracer.span("shard.finalize", parent=root):
                table = self.engine.finalize(query, merged)
            finished = time.perf_counter()
        metrics.counter("shard.queries").inc()
        metrics.counter("shard.shards_run").inc(len(parts))
        if slow_on:
            slow.record(
                mode=mode.label,
                seconds=finished - started,
                phases={
                    "collect": merge_start - started,
                    "merge": merged_at - merge_start,
                    "finalize": finished - merged_at,
                },
                query=query,
            )
        return table

    def _execute_sharded(
        self, query: Query, parts: list[Sequence[MVFactRow]]
    ) -> ResultTable:
        """The uninstrumented fan-out (identical work, zero tracing cost)."""
        # Warm the engine's structure caches serially on the first shard:
        # the per-(mode, dimension, t) snapshot cache is shared across
        # workers and dict writes are atomic, so concurrent misses are
        # safe, merely redundant.
        partials = [self.engine.collect_contributions(query, parts[0])]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            partials.extend(
                pool.map(
                    lambda part: self.engine.collect_contributions(query, part),
                    parts[1:],
                )
            )
        return self.engine.finalize(query, merge_contributions(partials))

    def execute_serial(self, query: Query) -> ResultTable:
        """The serial reference path (same engine, whole slice at once)."""
        return self.engine.execute(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedExecutor(shards={self.shards}, "
            f"max_workers={self.max_workers}, rows={len(self.mvft)})"
        )
