"""MVCC snapshot isolation for the evolving multidimensional schema.

The paper's premise is that analysis continues *while* the structure
evolves; this package makes that literal.  On top of the transactional
engine (:mod:`repro.robustness.transactions`) it provides:

* :mod:`~repro.concurrency.snapshot` — copy-on-write
  :class:`SchemaSnapshot` versions, cloned in O(containers) because all
  leaf objects are immutable;
* :mod:`~repro.concurrency.manager` — :class:`SnapshotManager`, which
  stamps commits with WAL LSNs (the version clock), publishes a fresh
  snapshot per commit and enforces first-committer-wins validation per
  touched dimension (:class:`WriteConflictError` on loss);
* :mod:`~repro.concurrency.cursor` — read-only :class:`SnapshotCursor`
  objects through which MVQL sessions, OLAP cubes and warehouses read a
  pinned version instead of the live schema;
* :mod:`~repro.concurrency.sharding` — :class:`ShardedExecutor`, which
  partitions a snapshot's fact rows across a worker pool and merges
  partial aggregations deterministically (sharded == serial, byte for
  byte).

See ``docs/concurrency.md`` for an executable walkthrough.
"""

from .cursor import SnapshotCursor
from .errors import ConcurrencyError, SnapshotError, WriteConflictError
from .manager import SnapshotManager
from .sharding import ShardedExecutor, shard_rows
from .snapshot import SchemaSnapshot, clone_schema

__all__ = [
    "ConcurrencyError",
    "SnapshotError",
    "WriteConflictError",
    "SchemaSnapshot",
    "clone_schema",
    "SnapshotCursor",
    "SnapshotManager",
    "ShardedExecutor",
    "shard_rows",
]
