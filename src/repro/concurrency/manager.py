"""The MVCC snapshot manager: one writer, many isolated readers.

:class:`SnapshotManager` wraps a
:class:`~repro.robustness.transactions.TransactionManager` and turns its
single-writer transactions into snapshot-isolated ones:

* **version clock** — every commit is stamped with the WAL LSN of its
  commit record (a local counter stands in when no journal is attached),
  so versions are monotonic and crash-recoverable for free;
* **publication** — a post-commit hook clones the schema
  (:func:`~repro.concurrency.snapshot.clone_schema`, copy-on-write) and
  publishes it as the new current :class:`SchemaSnapshot`; readers that
  opened a :class:`~repro.concurrency.cursor.SnapshotCursor` earlier
  keep their version untouched;
* **first-committer-wins** — a pre-commit hook compares, per dimension
  the transaction touched, the last committed version against the
  transaction's ``base_version`` (the snapshot its decisions were based
  on); a newer committed version raises
  :class:`~repro.concurrency.errors.WriteConflictError`, the surrounding
  ``transaction()`` context rolls back, and the loser retries against a
  fresh snapshot — the optimistic protocol of Kung & Robinson, scoped to
  the paper's evolution granularity (dimensions);
* **optional commit-time integrity** — ``verify_commits=True`` runs the
  :class:`~repro.robustness.integrity.IntegrityChecker` scoped to the
  touched dimensions before the commit record is written.

Writers serialize on an internal lock (the underlying engine mutates in
place and forbids nesting); readers never take it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.core.operations import EvolutionManager
from repro.observability import runtime as _obs
from repro.robustness.integrity import IntegrityChecker
from repro.robustness.retry import RetryPolicy
from repro.robustness.transactions import Transaction, TransactionManager

from .cursor import SnapshotCursor
from .errors import SnapshotError, WriteConflictError
from .snapshot import SchemaSnapshot, clone_schema

__all__ = ["SnapshotManager"]


class SnapshotManager:
    """Snapshot isolation over one :class:`TransactionManager`."""

    def __init__(
        self,
        txm: TransactionManager,
        *,
        verify_commits: bool = False,
        metrics: Any = None,
        result_cache: Any = None,
    ) -> None:
        self.txm = txm
        self.schema = txm.schema
        self.verify_commits = verify_commits
        self._metrics = metrics
        # One versioned result cache per warehouse: every cursor, MVQL
        # session, cube and server session opened through this manager
        # shares it (keys bind snapshot + structure versions, so sharing
        # is always sound; RLS-scoped sessions add their policy digest).
        if result_cache is None:
            from repro.cache import VersionedResultCache

            result_cache = VersionedResultCache(metrics=metrics)
        self.result_cache = result_cache
        self._write_lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._dim_versions: dict[str, int] = {}
        self._cursors: list[SnapshotCursor] = []
        initial = txm.wal.last_lsn if txm.wal is not None else 0
        self._version = initial
        self._current = SchemaSnapshot(clone_schema(self.schema), initial)
        txm.precommit_hooks.append(self._validate_first_committer)
        txm.postcommit_hooks.append(self._publish)

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    # -- read side -----------------------------------------------------------------

    @property
    def version(self) -> int:
        """The version stamp of the current published snapshot."""
        return self._current.version

    def snapshot(self) -> SchemaSnapshot:
        """The current published snapshot (never the live schema)."""
        return self._current

    def open_cursor(self) -> SnapshotCursor:
        """Open a read-only cursor pinned to the current snapshot."""
        with self._state_lock:
            cursor = SnapshotCursor(self, self._current)
            self._cursors.append(cursor)
            open_count = len(self._cursors)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("mvcc.cursors_opened").inc()
            metrics.gauge("mvcc.open_cursors").set(open_count)
        return cursor

    def _release_cursor(self, cursor: SnapshotCursor) -> None:
        with self._state_lock:
            try:
                self._cursors.remove(cursor)
            except ValueError:  # pragma: no cover - double close is idempotent
                pass
            open_count = len(self._cursors)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.gauge("mvcc.open_cursors").set(open_count)

    @property
    def open_snapshot_count(self) -> int:
        """How many cursors are currently open."""
        return len(self._cursors)

    def open_versions(self) -> list[int]:
        """The versions pinned by open cursors, ascending (with repeats)."""
        with self._state_lock:
            return sorted(c.version for c in self._cursors)

    def open_as_of_cursor(self, target: Any = None):
        """Open a read-only view pinned to a *historical* journal state.

        ``target`` is an LSN, a restore-point name, or ``None`` for the
        journal head.  Unlike :meth:`open_cursor` (which pins the current
        in-memory snapshot), this materializes the schema the journal
        described at ``target`` via
        :func:`repro.robustness.pitr.open_as_of` and returns the
        resulting :class:`~repro.robustness.pitr.AsOfSnapshot` — it
        mirrors the cursor's query surface (``mvft``, ``query_engine``,
        ``mvql_session``, ``cube``, ``warehouse``) but is a detached
        copy, so it needs no release and never blocks the writer.
        """
        if self.txm.wal is None:
            raise SnapshotError(
                "AS-OF cursors need a journaled manager; this "
                "TransactionManager has no write-ahead journal attached"
            )
        from repro.robustness.pitr import open_as_of

        snapshot = open_as_of(self.txm.wal, target)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("mvcc.asof_cursors_opened").inc()
        return snapshot

    @property
    def last_checkpoint_lsn(self) -> int | None:
        """LSN of the journal's most recent checkpoint (``None`` without
        a WAL or before the first checkpoint)."""
        if self.txm.wal is None:
            return None
        return self.txm.wal.last_checkpoint_lsn

    # -- write side ----------------------------------------------------------------

    @staticmethod
    def _resolve_base(base: Any) -> int | None:
        if base is None:
            return None
        if isinstance(base, int):
            return base
        if isinstance(base, SchemaSnapshot):
            return base.version
        if isinstance(base, SnapshotCursor):
            return base.version
        raise SnapshotError(
            f"cannot interpret {base!r} as a base version; pass a version "
            f"number, a SchemaSnapshot or a SnapshotCursor"
        )

    @contextmanager
    def transaction(self, *, base: Any = None) -> Iterator[Transaction]:
        """``with manager.transaction():`` — a snapshot-validated write.

        ``base`` declares which snapshot the writer's decisions were read
        from (a version number, :class:`SchemaSnapshot` or
        :class:`SnapshotCursor`); it defaults to the version current at
        entry.  If, by commit time, another transaction has committed a
        newer version of any dimension this one touched, the commit fails
        with :class:`WriteConflictError` and everything rolls back.
        """
        base_version = self._resolve_base(base)
        with self._write_lock:
            if base_version is None:
                base_version = self.version
            with self.txm.transaction() as txn:
                txn.base_version = base_version
                yield txn

    def run_write(
        self,
        fn: Callable[[EvolutionManager], Any],
        *,
        base: Any = None,
        retry: RetryPolicy | None = None,
    ) -> Any:
        """Run ``fn(evolution_manager)`` in one snapshot-validated transaction.

        With a ``retry`` policy (typically
        ``RetryPolicy(retry_on=(WriteConflictError,))``), a conflicted
        attempt is re-run against a *fresh* base — the canonical
        optimistic-concurrency loop.
        """
        first = True

        def attempt() -> Any:
            nonlocal first
            if not first:
                metrics = self._metrics_now()
                if metrics.enabled:
                    metrics.counter("mvcc.retries").inc()
            attempt_base = base if first else None
            first = False
            with self.transaction(base=attempt_base):
                return fn(self.txm.evolution)

        if retry is None:
            return attempt()
        return retry.call(attempt)

    # -- hooks (installed on the TransactionManager) ---------------------------------

    def _validate_first_committer(self, txn: Transaction) -> None:
        base = getattr(txn, "base_version", None)
        if base is not None and txn.touched:
            newest = max(
                (self._dim_versions.get(did, 0) for did in txn.touched),
                default=0,
            )
            if newest > base:
                losers = {
                    did
                    for did in txn.touched
                    if self._dim_versions.get(did, 0) > base
                }
                metrics = self._metrics_now()
                if metrics.enabled:
                    metrics.counter("mvcc.conflicts").inc()
                raise WriteConflictError(losers, base, newest)
        if self.verify_commits:
            scope = set(txn.touched) or None
            report = IntegrityChecker(self.schema).run(scope=scope)
            if not report.ok:
                raise SnapshotError(
                    "commit rejected by integrity check:\n" + report.to_text()
                )

    def _publish(self, txn: Transaction) -> None:
        with self._state_lock:
            version = (
                txn.commit_lsn
                if txn.commit_lsn is not None
                else self._version + 1
            )
            self._version = version
            for did in txn.touched:
                self._dim_versions[did] = version
            self._current = SchemaSnapshot(clone_schema(self.schema), version)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("mvcc.commits").inc()
            metrics.gauge("mvcc.version").set(version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SnapshotManager(version={self.version}, "
            f"open_cursors={self.open_snapshot_count})"
        )
