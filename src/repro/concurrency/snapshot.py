"""Copy-on-write schema snapshots — the MVCC version store.

Everything a reader dereferences through a Temporal Multidimensional
Schema bottoms out in immutable objects — :class:`MemberVersion`,
:class:`TemporalRelationship`, :class:`FactRow` and
:class:`MappingRelationship` are all frozen — so a *version* of the
schema is fully described by shallow copies of the mutable containers
that hold them.  :func:`clone_schema` exploits exactly that:

* each dimension is rebuilt from ``capture_state()`` (one dict copy, one
  list copy per dimension — see
  :meth:`~repro.core.dimension.TemporalDimension.capture_state`);
* the mapping catalog re-registers the shared relationship objects;
* the fact table :meth:`~repro.core.facts.TemporallyConsistentFactTable.adopt`\\ s
  the shared rows.

The result is byte-identical under serialization to the source at clone
time (container order included) and — because every later write on the
live schema replaces container entries rather than mutating the shared
objects — permanently immune to them.  Cost is O(members + facts)
pointer copies, no deep copies anywhere.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any

from repro.core.dimension import TemporalDimension
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.serialization import schema_to_dict

__all__ = ["clone_schema", "SchemaSnapshot"]


def clone_schema(
    schema: TemporalMultidimensionalSchema,
) -> TemporalMultidimensionalSchema:
    """A copy-on-write structural clone of ``schema``.

    The clone shares every immutable object (member versions, temporal
    relationships, mapping relationships, fact rows, measures) with the
    source and owns fresh containers, so mutating either side never
    shows through on the other.
    """
    dimensions = []
    for src in schema.dimensions.values():
        dim = TemporalDimension(src.did, src.name)
        dim.restore_state(src.capture_state())
        dimensions.append(dim)
    clone = TemporalMultidimensionalSchema(
        dimensions,
        list(schema.measures),
        cf_aggregator=schema.cf_aggregator,
    )
    for rel in schema.mappings:
        clone.mappings.add(rel)
    clone.facts.adopt(schema.facts.rows())
    return clone


class SchemaSnapshot:
    """One published version of the schema, tagged with its commit stamp.

    ``version`` is the WAL LSN of the commit that produced this state (0
    for the initial snapshot of a fresh manager; a local counter stands
    in when no journal is attached).  The wrapped ``schema`` is a
    :func:`clone_schema` product: readers may hold it indefinitely and
    will keep seeing this structure version regardless of later commits.
    """

    def __init__(self, schema: TemporalMultidimensionalSchema, version: int) -> None:
        self.schema = schema
        self.version = version
        self._mvft: Any = None
        self._mvft_lock = threading.Lock()

    def mvft(self):
        """The snapshot's MultiVersion fact table, inferred once.

        The snapshot is immutable, so the (expensive) Definition 11
        inference can run once and be shared by every cursor pinned to
        this version — and, because the table is stamped with the
        snapshot's commit version, result-cache entries computed by one
        session serve every other session on the same snapshot.
        """
        with self._mvft_lock:
            if self._mvft is None:
                mvft = self.schema.multiversion_facts()
                mvft.snapshot_version = self.version
                self._mvft = mvft
            return self._mvft

    def fingerprint(self) -> str:
        """SHA-256 over the canonical serialization of this version.

        Two snapshots of the same committed state fingerprint
        identically; the concurrency tests use this to assert reader
        isolation byte-for-byte.
        """
        payload: dict[str, Any] = schema_to_dict(self.schema)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SchemaSnapshot(version={self.version}, "
            f"dimensions={self.schema.dimension_ids}, "
            f"facts={len(self.schema.facts)})"
        )
