"""Exception types of the concurrency subsystem.

Everything derives from :class:`ConcurrencyError`, itself a
:class:`~repro.robustness.errors.RobustnessError`, so the library keeps a
single catch-all root (:class:`~repro.core.errors.ReproError`).
"""

from __future__ import annotations

from typing import Iterable

from repro.robustness.errors import RobustnessError

__all__ = ["ConcurrencyError", "SnapshotError", "WriteConflictError"]


class ConcurrencyError(RobustnessError):
    """Base class of every concurrency-subsystem error."""


class SnapshotError(ConcurrencyError):
    """Raised on snapshot protocol misuse — reading through a closed
    cursor, publishing from a schema the manager does not own."""


class WriteConflictError(ConcurrencyError):
    """First-committer-wins validation failed.

    A writer whose decisions were based on snapshot ``base_version``
    tried to commit changes to dimensions that another transaction has
    already re-versioned at ``committed_version > base_version``.  The
    loser's transaction is rolled back by the surrounding
    ``transaction()`` context; retrying against a fresh snapshot (e.g.
    through :class:`~repro.robustness.retry.RetryPolicy` with
    ``retry_on=(WriteConflictError,)``) is the intended recovery.
    """

    def __init__(
        self,
        dimensions: Iterable[str],
        base_version: int,
        committed_version: int,
    ) -> None:
        dims = sorted(dimensions)
        super().__init__(
            f"write-write conflict on dimension(s) {dims}: transaction read "
            f"version {base_version} but version {committed_version} has "
            f"already committed (first committer wins)"
        )
        self.dimensions = tuple(dims)
        self.base_version = base_version
        self.committed_version = committed_version
