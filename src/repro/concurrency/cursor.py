"""Read-only cursors over a published schema snapshot.

A :class:`SnapshotCursor` is what analysis sessions open instead of
touching the live schema: it pins one :class:`SchemaSnapshot`, derives
the MultiVersion fact table lazily (and caches it — Definition 11
inference is the expensive part of opening a reader) and hands out the
familiar read surfaces — a :class:`~repro.core.query.QueryEngine`, an
:class:`~repro.mvql.session.MVQLSession`, an :class:`~repro.olap.cube.Cube`
or a :class:`~repro.warehouse.multiversion_dw.MultiVersionDataWarehouse` —
all built over the pinned version.  Because the snapshot is immutable, a
cursor's query results are identical before, during and after any
concurrent writer's transaction.

Cursors are registered with their :class:`SnapshotManager` so operators
can see how many readers hold which versions (``repro snapshot`` on the
CLI); :meth:`close` (or the ``with`` form) deregisters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.query import QueryEngine

from .errors import SnapshotError
from .snapshot import SchemaSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import SnapshotManager

__all__ = ["SnapshotCursor"]


class SnapshotCursor:
    """A pinned, read-only view of one committed schema version."""

    def __init__(
        self, manager: "SnapshotManager", snapshot: SchemaSnapshot
    ) -> None:
        self._manager = manager
        self._snapshot = snapshot
        self._mvft: Any = None
        self._engine: QueryEngine | None = None
        self.closed = False

    # -- identity ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """The commit stamp of the pinned version."""
        return self._snapshot.version

    @property
    def snapshot(self) -> SchemaSnapshot:
        """The pinned snapshot object."""
        self._check_open()
        return self._snapshot

    @property
    def schema(self):
        """The pinned (cloned, immutable-by-convention) schema."""
        self._check_open()
        return self._snapshot.schema

    def fingerprint(self) -> str:
        """Fingerprint of the pinned version (see
        :meth:`SchemaSnapshot.fingerprint`)."""
        self._check_open()
        return self._snapshot.fingerprint()

    # -- derived read surfaces ---------------------------------------------------

    @property
    def mvft(self):
        """The MultiVersion fact table of the pinned version.

        Built (and version-stamped) once per *snapshot*, not per cursor —
        every cursor pinned to the same version shares one table, so
        their result-cache keys coincide and one session's computed
        results serve the others.
        """
        self._check_open()
        if self._mvft is None:
            self._mvft = self._snapshot.mvft()
        return self._mvft

    @property
    def result_cache(self):
        """The manager-wide versioned result cache (``None`` when the
        owning manager predates result caching)."""
        return getattr(self._manager, "result_cache", None)

    def query_engine(self) -> QueryEngine:
        """A query engine over the pinned MVFT (cached)."""
        self._check_open()
        if self._engine is None:
            self._engine = QueryEngine(self.mvft, cache=self.result_cache)
        return self._engine

    def mvql_session(self):
        """An MVQL session bound to the pinned version."""
        from repro.mvql.session import MVQLSession

        self._check_open()
        return MVQLSession(self.mvft, cache=self.result_cache)

    def cube(self, *, materialize: bool = False):
        """An OLAP cube bound to the pinned version."""
        from repro.olap.cube import Cube

        self._check_open()
        return Cube(self.mvft, materialize=materialize, cache=self.result_cache)

    def warehouse(self, **build_kwargs: Any):
        """A relational multiversion warehouse built from the pinned version."""
        from repro.warehouse.multiversion_dw import MultiVersionDataWarehouse

        self._check_open()
        return MultiVersionDataWarehouse.build(self.mvft, **build_kwargs)

    # -- lifecycle ----------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise SnapshotError(
                f"cursor over version {self._snapshot.version} is closed"
            )

    def close(self) -> None:
        """Release the cursor (idempotent); the manager's open count drops."""
        if not self.closed:
            self.closed = True
            self._manager._release_cursor(self)

    def __enter__(self) -> "SnapshotCursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return f"SnapshotCursor(version={self._snapshot.version}, {state})"
