"""An *updating model* baseline (§1.2, §2.2: Blaschka; Hurtado, Mendelzon
& Vaisman).

Updating models "focus on mapping data into the most recent version of the
structure": when a member is deleted its facts are dropped (or orphaned),
when members merge their facts are re-keyed to the merged member, when a
member splits its facts are re-distributed by some assumption — and the
old structure itself is gone, so there is exactly one way to look at the
data.  "Some data are corrupted, or even lost" and "working only with the
latest version hides the existence of evolution".

The implementation runs the same evolution stream our model handles, but
destructively, and counts what it loses/corrupts — the numbers the
baseline-comparison benchmark reports next to the multiversion model's.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["UpdatingModel"]


@dataclass
class _Fact:
    member: str
    t: int
    amount: float
    corrupted: bool = False


class UpdatingModel:
    """Map-everything-to-latest, destructively."""

    def __init__(self) -> None:
        self._group_of: dict[str, str] = {}
        self._facts: list[_Fact] = []
        self._lost: list[_Fact] = []
        self._structure_changes = 0

    # -- structure maintenance (destructive) -------------------------------------

    def add_member(self, member: str, group: str) -> None:
        """Introduce a member under a group."""
        self._group_of[member] = group

    def record_fact(self, member: str, t: int, amount: float) -> None:
        """Record a fact against a current member."""
        if member not in self._group_of:
            raise KeyError(f"unknown member {member!r}")
        self._facts.append(_Fact(member, t, amount))

    def reclassify(self, member: str, new_group: str) -> None:
        """Move the member; all its history silently moves with it."""
        if member not in self._group_of:
            raise KeyError(f"unknown member {member!r}")
        self._group_of[member] = new_group
        self._structure_changes += 1

    def delete_member(self, member: str) -> None:
        """Drop the member *and all its facts* — the data loss the paper
        warns about ('deletion of members that do not exist anymore')."""
        if member not in self._group_of:
            raise KeyError(f"unknown member {member!r}")
        del self._group_of[member]
        kept: list[_Fact] = []
        for f in self._facts:
            (self._lost if f.member == member else kept).append(f)
        self._facts = kept
        self._structure_changes += 1

    def merge_members(self, sources: list[str], merged: str, group: str) -> None:
        """Re-key all source facts to the merged member."""
        for src in sources:
            if src not in self._group_of:
                raise KeyError(f"unknown member {src!r}")
        self._group_of[merged] = group
        for src in sources:
            del self._group_of[src]
        for f in self._facts:
            if f.member in sources:
                f.member = merged
        self._structure_changes += 1

    def split_member(self, source: str, shares: dict[str, float], group: str) -> None:
        """Distribute the source's facts over the parts by share — each
        redistributed fact is *corrupted*: it is an estimate presented as
        if it were source data."""
        if source not in self._group_of:
            raise KeyError(f"unknown member {source!r}")
        del self._group_of[source]
        for part in shares:
            self._group_of[part] = group
        redistributed: list[_Fact] = []
        kept: list[_Fact] = []
        for f in self._facts:
            if f.member != source:
                kept.append(f)
                continue
            for part, share in shares.items():
                redistributed.append(
                    _Fact(part, f.t, f.amount * share, corrupted=True)
                )
        self._facts = kept + redistributed
        self._structure_changes += 1

    # -- queries --------------------------------------------------------------------

    def totals_by_group(self, bucket) -> dict[tuple[object, str], float]:
        """Totals per (bucket, group) — necessarily in the latest structure."""
        out: dict[tuple[object, str], float] = {}
        for f in self._facts:
            key = (bucket(f.t), self._group_of[f.member])
            out[key] = out.get(key, 0.0) + f.amount
        return out

    # -- the metrics the paper's critique predicts --------------------------------------

    @property
    def facts_lost(self) -> int:
        """Facts destroyed by deletions."""
        return len(self._lost)

    @property
    def facts_corrupted(self) -> int:
        """Facts silently replaced by estimates (splits)."""
        return sum(1 for f in self._facts if f.corrupted)

    def data_loss_fraction(self, total_recorded: int) -> float:
        """Fraction of recorded facts no longer present as source data."""
        if total_recorded == 0:
            return 0.0
        return (self.facts_lost + self.facts_corrupted) / total_recorded

    def history_retention(self) -> float:
        """Old structures are unrecoverable once anything changed."""
        return 0.0 if self._structure_changes else 1.0

    def available_presentations(self) -> int:
        """The updating model offers exactly one view of the data."""
        return 1
