"""Baseline models the paper positions itself against (§1.2, §2.2).

* :mod:`~repro.baselines.scd` — Kimball's SCD Types 1, 2 and 3;
* :mod:`~repro.baselines.updating` — a destructive map-to-latest updating
  model (Blaschka / Hurtado-Mendelzon-Vaisman family);
* :mod:`~repro.baselines.eder_koncilia` — structure versions with
  transformation matrices (COMET family);
* :mod:`~repro.baselines.mendelzon_vaisman` — timestamped elements with
  consistent/latest query modes (TOLAP family).

The comparison benchmark replays the same evolution streams through each
baseline and through the multiversion model and reports history
retention, cross-version comparability, data loss and the number of
available presentations.
"""

from .eder_koncilia import EKModel, EKStructureVersion
from .mendelzon_vaisman import MVTemporalModel
from .scd import SCDType1, SCDType2, SCDType3
from .updating import UpdatingModel

__all__ = [
    "SCDType1",
    "SCDType2",
    "SCDType3",
    "UpdatingModel",
    "EKModel",
    "EKStructureVersion",
    "MVTemporalModel",
]
