"""A Mendelzon & Vaisman-style temporal OLAP baseline (§2.2, [15]).

Their model timestamps the elements of the multidimensional database with
valid times (exactly like the paper's member versions and temporal
relationships) and lets TOLAP queries choose between a *temporally
consistent* representation and the *latest version*, with transition
links supporting merges and splits.

What it does **not** provide — the gap §2.2 calls out — is "the means of
reporting data in any other version than the latest one": there is no
mode per past structure version, and no confidence tagging on mapped
values.  The comparison benchmark counts the available presentations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ReproError

__all__ = ["MVTemporalModel"]


class MVError(ReproError):
    """Raised on inconsistent usage of the baseline."""


@dataclass
class _TimedElement:
    start: int
    end: int | None  # None == now

    def valid_at(self, t: int) -> bool:
        return self.start <= t and (self.end is None or t <= self.end)

    @property
    def current(self) -> bool:
        return self.end is None


@dataclass
class _Member(_TimedElement):
    name: str = ""


@dataclass
class _Rollup(_TimedElement):
    child: str = ""
    parent: str = ""


@dataclass
class _Fact:
    member: str
    t: int
    amount: float


@dataclass
class MVTemporalModel:
    """Timestamped dimension elements + consistent/latest query modes."""

    members: dict[str, _Member] = field(default_factory=dict)
    rollups: list[_Rollup] = field(default_factory=list)
    links: list[tuple[str, str, float]] = field(default_factory=list)
    facts: list[_Fact] = field(default_factory=list)

    # -- maintenance ----------------------------------------------------------

    def add_member(self, member: str, start: int, end: int | None = None) -> None:
        """Register a timestamped member."""
        if member in self.members:
            raise MVError(f"member {member!r} already exists")
        self.members[member] = _Member(start=start, end=end, name=member)

    def close_member(self, member: str, end: int) -> None:
        """End a member's validity."""
        self._member(member).end = end

    def add_rollup(
        self, child: str, parent: str, start: int, end: int | None = None
    ) -> None:
        """Register a timestamped rollup edge."""
        self._member(child)
        self._member(parent)
        self.rollups.append(_Rollup(start=start, end=end, child=child, parent=parent))

    def close_rollup(self, child: str, parent: str, end: int) -> None:
        """End a rollup's validity."""
        for rollup in self.rollups:
            if rollup.child == child and rollup.parent == parent and rollup.end is None:
                rollup.end = end
                return
        raise MVError(f"no open rollup {child!r} -> {parent!r}")

    def link(self, old: str, new: str, weight: float) -> None:
        """A transition link: ``weight`` of ``old``'s value flows to
        ``new`` when data is mapped to the latest structure."""
        self._member(old)
        self._member(new)
        self.links.append((old, new, weight))

    def record_fact(self, member: str, t: int, amount: float) -> None:
        """Record a fact against a member valid at ``t``."""
        if not self._member(member).valid_at(t):
            raise MVError(f"member {member!r} is not valid at {t}")
        self.facts.append(_Fact(member, t, amount))

    def _member(self, member: str) -> _Member:
        try:
            return self.members[member]
        except KeyError:
            raise MVError(f"unknown member {member!r}") from None

    # -- queries ---------------------------------------------------------------

    def _parent_at(self, member: str, t: int) -> str | None:
        for rollup in self.rollups:
            if rollup.child == member and rollup.valid_at(t):
                return rollup.parent
        return None

    def totals_consistent(self, bucket) -> dict[tuple[object, str], float]:
        """Totals per (bucket, parent) with each fact under the rollup
        valid at its own time — TOLAP's temporally consistent mode."""
        out: dict[tuple[object, str], float] = {}
        for fact in self.facts:
            parent = self._parent_at(fact.member, fact.t)
            if parent is None:
                continue
            key = (bucket(fact.t), parent)
            out[key] = out.get(key, 0.0) + fact.amount
        return out

    def _map_to_current(self, member: str, amount: float) -> list[tuple[str, float]]:
        """Push a value through transition links until current members."""
        if self._member(member).current:
            return [(member, amount)]
        out: list[tuple[str, float]] = []
        for old, new, weight in self.links:
            if old != member:
                continue
            out.extend(self._map_to_current(new, amount * weight))
        return out  # empty when the lineage dead-ends: the value is lost

    def totals_latest(self, bucket) -> dict[tuple[object, str], float]:
        """Totals per (bucket, parent) with every fact mapped into the
        *latest* structure — the only mapped mode the model offers."""
        out: dict[tuple[object, str], float] = {}
        for fact in self.facts:
            for member, amount in self._map_to_current(fact.member, fact.amount):
                parent = self._current_parent(member)
                if parent is None:
                    continue
                key = (bucket(fact.t), parent)
                out[key] = out.get(key, 0.0) + amount
        return out

    def _current_parent(self, member: str) -> str | None:
        for rollup in self.rollups:
            if rollup.child == member and rollup.current:
                return rollup.parent
        return None

    # -- the §2.2 gap, measured ----------------------------------------------------

    def available_presentations(self) -> int:
        """Consistent + latest: exactly two, regardless of how many
        structure versions history holds."""
        return 2

    def supports_past_version_mapping(self) -> bool:
        """The model cannot report data in a *past* version's structure."""
        return False

    def supports_confidence_tagging(self) -> bool:
        """Mapped values are indistinguishable from source values."""
        return False
