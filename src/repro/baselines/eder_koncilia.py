"""An Eder & Koncilia-style structure-version model (§2.2, [9]).

Eder and Koncilia's COMET model keeps explicit structure versions and
*transformation matrices* between temporally adjacent versions: entry
``M[i][j]`` says what fraction of old member ``i``'s value flows to new
member ``j``.  Mapping across non-adjacent versions multiplies the
matrices along the chain.

The model is a genuine precursor of the paper's mapping relationships —
but, as §2.2 notes, it "neither takes schema evolution and time consistent
presentation into account, nor considers complex dimension structures":
there is no ``tcm`` mode, no confidence tagging, and only linear
(matrix) conversions.  The comparison benchmark checks our model agrees
with it on the linear cases and exceeds it everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.errors import ReproError

__all__ = ["EKStructureVersion", "EKModel"]


class EKError(ReproError):
    """Raised on inconsistent Eder-Koncilia model usage."""


@dataclass
class EKStructureVersion:
    """One structure version: an ordered list of member names."""

    vsid: str
    members: list[str]

    def index(self, member: str) -> int:
        """Position of a member in this version."""
        try:
            return self.members.index(member)
        except ValueError:
            raise EKError(
                f"{member!r} is not a member of version {self.vsid!r}"
            ) from None


@dataclass
class EKModel:
    """Structure versions chained by transformation matrices."""

    versions: list[EKStructureVersion] = field(default_factory=list)
    # matrices[k] maps versions[k] values onto versions[k+1] members;
    # reverse_matrices[k] maps versions[k+1] values back onto versions[k].
    matrices: list[list[list[float]]] = field(default_factory=list)
    reverse_matrices: list[list[list[float]]] = field(default_factory=list)

    def add_version(
        self,
        vsid: str,
        members: Sequence[str],
        transformation: Mapping[str, Mapping[str, float]] | None = None,
        reverse_transformation: Mapping[str, Mapping[str, float]] | None = None,
    ) -> EKStructureVersion:
        """Append a version.

        ``transformation[old][new]`` gives the forward flow fraction from
        the previous version (identity by default for members present in
        both).  ``reverse_transformation[new][old]`` gives the backward
        flow; when omitted it defaults to the *support indicator* of the
        forward matrix — a new member's value reports fully to every old
        member that fed it, which reproduces EK's split semantics (each
        part of a split reports as-is into the old whole).  Merges, whose
        natural backward flow is a proportional share, should pass the
        reverse matrix explicitly.
        """
        version = EKStructureVersion(vsid, list(members))
        if self.versions:
            prev = self.versions[-1]
            matrix = [[0.0] * len(version.members) for _ in prev.members]
            spec = transformation or {}
            for i, old in enumerate(prev.members):
                if old in spec:
                    for new, fraction in spec[old].items():
                        matrix[i][version.index(new)] = fraction
                elif old in version.members:
                    matrix[i][version.index(old)] = 1.0
                # else: the member disappears; its row stays zero (loss).
            self.matrices.append(matrix)
            reverse = [[0.0] * len(prev.members) for _ in version.members]
            if reverse_transformation is not None:
                for new, flows in reverse_transformation.items():
                    j = version.index(new)
                    for old, fraction in flows.items():
                        reverse[j][prev.index(old)] = fraction
            else:
                for i in range(len(prev.members)):
                    for j in range(len(version.members)):
                        if matrix[i][j] > 0.0:
                            reverse[j][i] = 1.0
            self.reverse_matrices.append(reverse)
        elif transformation or reverse_transformation:
            raise EKError("the first version cannot have a transformation")
        self.versions.append(version)
        return version

    def _version_index(self, vsid: str) -> int:
        for i, v in enumerate(self.versions):
            if v.vsid == vsid:
                return i
        raise EKError(f"unknown version {vsid!r}")

    def _chain(self, start: int, end: int) -> list[list[float]]:
        """Multiply transformation matrices from version ``start`` to
        ``end`` (forward) or their transposes backwards."""
        if start == end:
            size = len(self.versions[start].members)
            return [
                [1.0 if i == j else 0.0 for j in range(size)] for i in range(size)
            ]
        if start < end:
            matrix = self.matrices[start]
            for k in range(start + 1, end):
                matrix = _matmul(matrix, self.matrices[k])
            return matrix
        # Backwards: chain the explicit reverse matrices.
        matrix = self.reverse_matrices[start - 1]
        for k in range(start - 2, end - 1, -1):
            matrix = _matmul(matrix, self.reverse_matrices[k])
        return matrix

    def map_vector(
        self, values: Mapping[str, float], from_vsid: str, to_vsid: str
    ) -> dict[str, float]:
        """Convert a per-member value vector between two versions."""
        start = self._version_index(from_vsid)
        end = self._version_index(to_vsid)
        matrix = self._chain(start, end)
        src = self.versions[start]
        dst = self.versions[end]
        vector = [values.get(m, 0.0) for m in src.members]
        out = [0.0] * len(dst.members)
        for i, value in enumerate(vector):
            for j in range(len(dst.members)):
                out[j] += value * matrix[i][j]
        return dict(zip(dst.members, out))

    def lost_members(self, from_vsid: str, to_vsid: str) -> list[str]:
        """Members of the source version whose value cannot reach the
        target version at all (an all-zero row in the chained matrix)."""
        start = self._version_index(from_vsid)
        end = self._version_index(to_vsid)
        matrix = self._chain(start, end)
        src = self.versions[start]
        return [
            member
            for i, member in enumerate(src.members)
            if all(f == 0.0 for f in matrix[i])
        ]


def _matmul(a: list[list[float]], b: list[list[float]]) -> list[list[float]]:
    rows, inner, cols = len(a), len(b), len(b[0]) if b else 0
    if a and len(a[0]) != inner:
        raise EKError("matrix dimensions do not match")
    out = [[0.0] * cols for _ in range(rows)]
    for i in range(rows):
        for k in range(inner):
            if a[i][k] == 0.0:
                continue
            for j in range(cols):
                out[i][j] += a[i][k] * b[k][j]
    return out

