"""Kimball's Slowly Changing Dimensions (§1.2) as comparison baselines.

Three classic strategies for a dimension whose members change:

* **Type 1** — overwrite the member row.  Queries always see the latest
  structure; history is destroyed ("avoids the real goal, which is the
  tracking of history").
* **Type 2** — insert a new member row (new surrogate key) at each change.
  History is tracked, but the versions are unlinked, so *comparisons
  across the transitions cannot be made*.
* **Type 3** — keep the change *inside* the member row (current + previous
  attribute columns).  Links exist but only one step of history survives,
  overlaps cannot be represented, and only attribute changes are handled.

Each baseline exposes the same tiny API (``assign``, ``record_fact``,
``totals_by_group``) plus the metrics the comparison benchmark reports:
``history_retention`` and ``cross_version_comparability``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SCDType1", "SCDType2", "SCDType3"]


@dataclass
class _Fact:
    member_key: str
    t: int
    amount: float


class SCDType1:
    """Overwrite-in-place: one row per member, no history."""

    def __init__(self) -> None:
        self._group_of: dict[str, str] = {}
        self._facts: list[_Fact] = []
        self._overwrites = 0

    def assign(self, member: str, group: str, t: int) -> None:
        """Set (or overwrite) the member's group as of ``t``."""
        if member in self._group_of and self._group_of[member] != group:
            self._overwrites += 1
        self._group_of[member] = group

    def record_fact(self, member: str, t: int, amount: float) -> None:
        """Record a fact against the member (keyed by natural key)."""
        if member not in self._group_of:
            raise KeyError(f"unknown member {member!r}")
        self._facts.append(_Fact(member, t, amount))

    def totals_by_group(self, bucket) -> dict[tuple[object, str], float]:
        """Totals per (time bucket, group) — always the *latest* grouping,
        whatever grouping held when the fact happened."""
        out: dict[tuple[object, str], float] = {}
        for f in self._facts:
            key = (bucket(f.t), self._group_of[f.member_key])
            out[key] = out.get(key, 0.0) + f.amount
        return out

    def history_retention(self) -> float:
        """Fraction of past states still reconstructible: 0 once any
        member has been overwritten."""
        return 0.0 if self._overwrites else 1.0

    def cross_version_comparability(self) -> float:
        """Type 1 *can* compare across time (everything is forced into one
        structure) — at the price of corrupting history."""
        return 1.0


@dataclass
class _SCD2Row:
    surrogate: int
    member: str
    group: str
    valid_from: int
    valid_to: int | None = None


class SCDType2:
    """Row-versioning: full history, no links across transitions."""

    def __init__(self) -> None:
        self._rows: list[_SCD2Row] = []
        self._facts: list[_Fact] = []  # member_key = surrogate as str
        self._next_surrogate = 1

    def assign(self, member: str, group: str, t: int) -> None:
        """Close the member's current row (if any) and open a new one."""
        current = self._current_row(member)
        if current is not None:
            if current.group == group:
                return  # no change
            current.valid_to = t - 1
        self._rows.append(
            _SCD2Row(self._next_surrogate, member, group, valid_from=t)
        )
        self._next_surrogate += 1

    def _current_row(self, member: str) -> _SCD2Row | None:
        for row in reversed(self._rows):
            if row.member == member and row.valid_to is None:
                return row
        return None

    def _row_at(self, member: str, t: int) -> _SCD2Row | None:
        for row in self._rows:
            if row.member == member and row.valid_from <= t and (
                row.valid_to is None or t <= row.valid_to
            ):
                return row
        return None

    def record_fact(self, member: str, t: int, amount: float) -> None:
        """Record a fact against the member version valid at ``t``."""
        row = self._row_at(member, t)
        if row is None:
            raise KeyError(f"no version of {member!r} valid at {t}")
        self._facts.append(_Fact(str(row.surrogate), t, amount))

    def totals_by_group(self, bucket) -> dict[tuple[object, str], float]:
        """Totals per (bucket, group) in *consistent time*: each fact
        stays with the grouping of its own version."""
        by_surrogate = {str(r.surrogate): r for r in self._rows}
        out: dict[tuple[object, str], float] = {}
        for f in self._facts:
            key = (bucket(f.t), by_surrogate[f.member_key].group)
            out[key] = out.get(key, 0.0) + f.amount
        return out

    def version_count(self, member: str) -> int:
        """How many rows the member accumulated."""
        return sum(1 for r in self._rows if r.member == member)

    def history_retention(self) -> float:
        """Type 2 keeps every state."""
        return 1.0

    def cross_version_comparability(self) -> float:
        """No links between a member's rows: a fact on surrogate k cannot
        be re-expressed against surrogate k+1's structure."""
        return 0.0


@dataclass
class _SCD3Row:
    member: str
    current_group: str
    previous_group: str | None = None
    changed_at: int | None = None
    change_count: int = 0


class SCDType3:
    """In-row history: current + previous attribute, one step deep."""

    def __init__(self) -> None:
        self._rows: dict[str, _SCD3Row] = {}
        self._facts: list[_Fact] = []

    def assign(self, member: str, group: str, t: int) -> None:
        """Record a change in the member's current/previous columns."""
        row = self._rows.get(member)
        if row is None:
            self._rows[member] = _SCD3Row(member, group)
            return
        if row.current_group == group:
            return
        row.previous_group = row.current_group
        row.current_group = group
        row.changed_at = t
        row.change_count += 1

    def record_fact(self, member: str, t: int, amount: float) -> None:
        """Record a fact against the member (single row per member)."""
        if member not in self._rows:
            raise KeyError(f"unknown member {member!r}")
        self._facts.append(_Fact(member, t, amount))

    def totals_by_group(
        self, bucket, *, use_previous: bool = False
    ) -> dict[tuple[object, str], float]:
        """Totals per (bucket, group) under the current — or, uniformly,
        the previous — grouping.  This is Type 3's whole power: exactly
        two alternative mappings, regardless of how many changes happened."""
        out: dict[tuple[object, str], float] = {}
        for f in self._facts:
            row = self._rows[f.member_key]
            group = (
                row.previous_group
                if use_previous and row.previous_group is not None
                else row.current_group
            )
            key = (bucket(f.t), group)
            out[key] = out.get(key, 0.0) + f.amount
        return out

    def history_retention(self) -> float:
        """Only the last transition survives: retention decays as soon as
        any member changes more than once."""
        rows = list(self._rows.values())
        if not rows:
            return 1.0
        changes = sum(r.change_count for r in rows)
        if changes == 0:
            return 1.0
        kept = sum(min(r.change_count, 1) for r in rows)
        return kept / changes

    def cross_version_comparability(self) -> float:
        """Comparisons are possible between exactly the two kept states —
        full comparability only while no member changed twice."""
        return self.history_retention()
