"""Admission control: per-tenant quotas, rate limits, and overload shed.

Every statement (query, pivot, AS-OF, evolve) passes through the
:class:`AdmissionController` before any engine work starts.  Three gates,
checked in order, each shedding load as a *typed protocol error* the
client can dispatch on — an overloaded server answers fast instead of
queueing into a hang:

1. **global concurrency** — a server-wide cap on in-flight statements
   (the executor pool's backlog guard); over it → ``shutting_down``-class
   pressure is reported as :class:`~.protocol.QuotaExceededError` with
   ``scope="server"``;
2. **tenant concurrency** — each tenant's ``max_concurrent`` from its
   :class:`~.auth.TenantConfig`; over it → ``quota_exceeded``;
3. **tenant rate** — a token bucket (``capacity`` burst, sustained
   ``refill_per_sec``); empty → ``rate_limited``.

Admissions and rejections feed the shared
:class:`~repro.observability.metrics.MetricsRegistry`
(``server.statements``, ``server.rejected{reason=}``,
``server.active_statements``), so the doctor's alert rules — and the
``stats`` protocol op — see admission pressure with no extra plumbing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.observability import runtime as _obs

from .auth import TenantConfig
from .protocol import QuotaExceededError, RateLimitedError

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A monotonic-clock token bucket; ``clock`` injectable for tests."""

    def __init__(
        self,
        capacity: float,
        refill_per_sec: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("token bucket capacity must be >= 1")
        if refill_per_sec < 0:
            raise ValueError("token bucket refill rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_sec = float(refill_per_sec)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_sec
            )
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens


class _TenantState:
    """Mutable per-tenant admission state."""

    __slots__ = ("config", "active", "bucket")

    def __init__(
        self, config: TenantConfig, clock: Callable[[], float]
    ) -> None:
        self.config = config
        self.active = 0
        self.bucket = (
            TokenBucket(
                config.rate_limit.capacity,
                config.rate_limit.refill_per_sec,
                clock=clock,
            )
            if config.rate_limit is not None
            else None
        )


class AdmissionController:
    """The statement gate: global cap, tenant quota, tenant rate."""

    def __init__(
        self,
        *,
        max_global_concurrent: int = 64,
        metrics: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_global_concurrent < 1:
            raise ValueError("max_global_concurrent must be >= 1")
        self.max_global_concurrent = max_global_concurrent
        self._metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self._active_total = 0

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    def register(self, config: TenantConfig) -> None:
        """Create (or refresh) one tenant's admission state."""
        with self._lock:
            self._tenants[config.tenant] = _TenantState(config, self._clock)

    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise QuotaExceededError(
                f"tenant {tenant!r} has no admission state registered"
            ) from None

    # -- the gate ----------------------------------------------------------------

    def try_admit(self, tenant: str) -> None:
        """Pass the three gates or raise the matching typed error.

        On success the statement is counted active until
        :meth:`release` — use :meth:`admit` for the paired form.
        """
        metrics = self._metrics_now()
        with self._lock:
            state = self._state(tenant)
            if self._active_total >= self.max_global_concurrent:
                if metrics.enabled:
                    metrics.counter(
                        "server.rejected",
                        {"tenant": tenant, "reason": "server_capacity"},
                    ).inc()
                raise QuotaExceededError(
                    f"server at capacity "
                    f"({self.max_global_concurrent} concurrent statements)",
                )
            if state.active >= state.config.max_concurrent:
                if metrics.enabled:
                    metrics.counter(
                        "server.rejected",
                        {"tenant": tenant, "reason": "concurrency"},
                    ).inc()
                raise QuotaExceededError(
                    f"tenant {tenant!r} at its concurrent-statement quota "
                    f"({state.config.max_concurrent})"
                )
            if state.bucket is not None and not state.bucket.try_acquire():
                if metrics.enabled:
                    metrics.counter(
                        "server.rejected",
                        {"tenant": tenant, "reason": "rate"},
                    ).inc()
                raise RateLimitedError(
                    f"tenant {tenant!r} over its statement rate "
                    f"({state.bucket.refill_per_sec:g}/s sustained, "
                    f"burst {state.bucket.capacity:g})"
                )
            state.active += 1
            self._active_total += 1
            active, total = state.active, self._active_total
        if metrics.enabled:
            metrics.counter("server.statements", {"tenant": tenant}).inc()
            metrics.gauge(
                "server.active_statements", {"tenant": tenant}
            ).set(active)
            metrics.gauge("server.active_statements_total").set(total)

    def release(self, tenant: str) -> None:
        """Return one admitted statement's slot."""
        with self._lock:
            state = self._state(tenant)
            state.active = max(0, state.active - 1)
            self._active_total = max(0, self._active_total - 1)
            active, total = state.active, self._active_total
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.gauge(
                "server.active_statements", {"tenant": tenant}
            ).set(active)
            metrics.gauge("server.active_statements_total").set(total)

    @contextmanager
    def admit(self, tenant: str) -> Iterator[None]:
        """``with controller.admit(tenant):`` — gate then auto-release."""
        self.try_admit(tenant)
        try:
            yield
        finally:
            self.release(tenant)

    # -- introspection -----------------------------------------------------------

    @property
    def active_total(self) -> int:
        """Statements currently in flight, server-wide."""
        return self._active_total

    def active_for(self, tenant: str) -> int:
        """Statements currently in flight for one tenant."""
        with self._lock:
            return self._state(tenant).active

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController(active={self._active_total}/"
            f"{self.max_global_concurrent}, tenants={len(self._tenants)})"
        )
