"""The wire protocol: newline-delimited JSON requests and responses.

One TCP connection carries a sequence of *messages*, each a single JSON
object on its own ``\\n``-terminated line (NDJSON).  Requests carry an
``op`` and an optional client-chosen ``id`` the response echoes back;
responses carry ``ok`` — ``true`` with the op's payload fields, or
``false`` with a typed ``error`` object::

    → {"id": 1, "op": "auth", "api_key": "acme-key"}
    ← {"id": 1, "ok": true, "tenant": "acme", "version": 7}
    → {"id": 2, "op": "query", "statement": "SELECT amount BY year"}
    ← {"id": 2, "ok": false,
       "error": {"code": "rate_limited", "message": "..."}}

Error *codes* are the protocol's contract — clients dispatch on them,
never on message text.  The full set is :data:`ERROR_CODES`; the server
maps engine exceptions onto codes with :func:`error_code_for`, and the
client maps codes back onto exception classes, so a
:class:`~repro.concurrency.errors.WriteConflictError` raised by a stale
write surfaces at the remote caller as a typed conflict, not a string.

The module also owns the JSON shapes of query results
(:func:`result_table_to_dict`, :func:`cube_view_to_dict`) so server and
client agree on one serialization.

Change-data-capture rides the same protocol: the ``tail`` op streams
committed WAL change events (``{"op": "tail", "from_lsn": 0}``) through
the ordinary page-cursor machinery, and its ``cursor_lsn`` payload field
is the resume token for the next call.

Telemetry rides the envelope too.  A statement request may carry a
W3C-style ``traceparent`` field
(``00-<32-hex trace id>-<16-hex span id>-<2-hex flags>``); the server
resumes that trace — same trace id, the client's span as remote parent,
the client's sampling decision — so one request is one connected trace
from client span to engine phase spans.  A malformed value is ignored,
never an error, per the W3C spec.  The ``usage`` op returns the server's
per-tenant usage ledger (``{"op": "usage", "tenant": "acme"}`` →
``{"enabled", "records", "totals"}``); read-only tenants are always
scoped to their own bill.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.errors import QueryError, ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "AuthRequiredError",
    "AuthFailedError",
    "ForbiddenError",
    "BadRequestError",
    "QuotaExceededError",
    "RateLimitedError",
    "ShuttingDownError",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "error_code_for",
    "result_row_to_dict",
    "result_table_to_dict",
    "cube_view_to_dict",
]

PROTOCOL_VERSION = 1
"""Bumped on any incompatible change to message shapes or error codes."""

MAX_LINE_BYTES = 8 * 1024 * 1024
"""Hard cap on one message line — oversized requests are a protocol error."""

#: Every error code a response may carry.
ERROR_CODES = (
    "bad_request",      # malformed JSON, unknown op, missing/invalid fields
    "auth_required",    # statement op before a successful auth
    "auth_failed",      # unknown API key
    "forbidden",        # authenticated but not allowed (e.g. read-only tenant)
    "parse_error",      # MVQL failed to lex/parse
    "compile_error",    # MVQL referenced unknown schema elements
    "query_error",      # the engine rejected or failed the query
    "conflict",         # a write lost first-committer-wins validation
    "quota_exceeded",   # tenant at its concurrent-statement quota
    "rate_limited",     # tenant over its statement rate limit
    "shutting_down",    # server is draining; retry elsewhere/later
    "internal",         # unexpected server-side failure
)


class ProtocolError(ReproError):
    """A request the server rejects with a typed error response.

    Subclasses fix ``code``; free-form server-side failures use the
    base class with an explicit one.
    """

    code = "bad_request"

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {self.code!r}")


class AuthRequiredError(ProtocolError):
    """A statement op arrived before a successful ``auth``."""

    code = "auth_required"


class AuthFailedError(ProtocolError):
    """The presented API key matches no configured tenant."""

    code = "auth_failed"


class ForbiddenError(ProtocolError):
    """The tenant is authenticated but not allowed to do this."""

    code = "forbidden"


class QuotaExceededError(ProtocolError):
    """The tenant is at its concurrent-statement quota."""

    code = "quota_exceeded"


class RateLimitedError(ProtocolError):
    """The tenant exceeded its sustained statement rate."""

    code = "rate_limited"


class ShuttingDownError(ProtocolError):
    """The server is draining and takes no new statements."""

    code = "shutting_down"


class BadRequestError(ProtocolError):
    """A structurally invalid request (missing fields, bad types)."""

    code = "bad_request"


# -- framing ----------------------------------------------------------------------


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One message as a compact, newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`BadRequestError` on oversized lines, invalid JSON, or
    a top-level value that is not an object.
    """
    if len(line) > MAX_LINE_BYTES:
        raise BadRequestError(
            f"message exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise BadRequestError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    """A success response echoing the request id."""
    return {"id": request_id, "ok": True, **fields}


def error_response(
    request_id: Any, code: str, message: str, **details: Any
) -> dict[str, Any]:
    """A typed failure response echoing the request id."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    error: dict[str, Any] = {"code": code, "message": message}
    if details:
        error["details"] = details
    return {"id": request_id, "ok": False, "error": error}


def error_code_for(exc: BaseException) -> str:
    """Map a server-side exception onto its protocol error code."""
    from repro.concurrency.errors import WriteConflictError
    from repro.mvql.errors import MVQLCompileError, MVQLSyntaxError

    if isinstance(exc, ProtocolError):
        return exc.code
    if isinstance(exc, WriteConflictError):
        return "conflict"
    if isinstance(exc, MVQLSyntaxError):
        return "parse_error"
    if isinstance(exc, MVQLCompileError):
        return "compile_error"
    if isinstance(exc, (QueryError, ReproError)):
        return "query_error"
    return "internal"


# -- result serialization ----------------------------------------------------------


def _confidence_symbol(confidence: Any) -> str | None:
    return None if confidence is None else confidence.symbol


def result_row_to_dict(row: Any) -> dict[str, Any]:
    """One :class:`~repro.core.query.ResultRow` as a JSON-safe dict."""
    return {
        "group": list(row.group),
        "cells": [
            {
                "measure": cell.measure,
                "value": cell.value,
                "confidence": _confidence_symbol(cell.confidence),
            }
            for cell in row.cells
        ],
    }


def result_table_to_dict(table: Any, *, rows: bool = True) -> dict[str, Any]:
    """A :class:`~repro.core.query.ResultTable` header (and optionally
    its full row list) as a JSON-safe dict.  The server usually sends
    the header with the first page and streams the rest via ``fetch``.
    """
    payload: dict[str, Any] = {
        "columns": list(table.columns),
        "measures": list(table.measures),
        "mode": table.mode,
        "total_rows": len(table),
    }
    if rows:
        payload["rows"] = [result_row_to_dict(row) for row in table.rows]
    return payload


def cube_view_to_dict(view: Any) -> dict[str, Any]:
    """A :class:`~repro.olap.cube.CubeView` as a JSON-safe dict.

    Cells are row-major, aligned with ``rows`` × ``cols``; an empty cell
    serializes as ``null``.
    """
    grid: list[list[dict[str, Any] | None]] = []
    for row_label in view.rows:
        line: list[dict[str, Any] | None] = []
        for col_label in view.cols:
            cell = view.cell(row_label, col_label)
            if cell.empty:
                line.append(None)
            else:
                line.append(
                    {
                        "value": cell.value,
                        "confidence": _confidence_symbol(cell.confidence),
                    }
                )
        grid.append(line)
    return {
        "mode": view.mode,
        "measure": view.measure,
        "row_axis": view.row_axis.name,
        "col_axis": view.col_axis.name,
        "rows": list(view.rows),
        "cols": list(view.cols),
        "cells": grid,
    }
