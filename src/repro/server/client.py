"""The blocking client library for the warehouse server.

:class:`WarehouseClient` speaks the NDJSON protocol over one TCP
connection and turns typed wire errors back into exceptions::

    with WarehouseClient(host, port, api_key="acme-key") as client:
        result = client.query("SELECT amount BY year, org.Division")
        for row in result.rows:
            ...

Every protocol error code maps to a :class:`RemoteError` subclass
(:data:`ERROR_CLASSES`), so a statement that lost first-committer-wins
validation on the server raises :class:`RemoteConflictError` here — the
same control flow an in-process caller gets from
:class:`~repro.concurrency.errors.WriteConflictError`, across the wire.
A socket timeout while waiting for a response raises the client-side
:class:`RemoteTimeoutError`; ``connect_timeout``/``request_timeout``
split the dial budget from the per-request read budget.

Pass ``tracer=`` to make the client the *head* of each request's trace:
every ``call`` runs under a ``client.request`` span whose W3C-style
``traceparent`` is stamped into the envelope, so the server's statement
span (and the engine spans below it) join the client's trace — one
connected trace per request end to end.

``query``/``pivot`` transparently drain the server's page stream by
default (``fetch_all=False`` returns the first page plus the cursor for
manual paging).  The client is deliberately synchronous: analyst tools
and tests want straight-line code; concurrency comes from opening more
connections.
"""

from __future__ import annotations

import socket
from typing import Any, Iterator, Mapping

from repro.core.errors import ReproError

from .protocol import MAX_LINE_BYTES, encode_message

__all__ = [
    "RemoteError",
    "RemoteAuthError",
    "RemoteForbiddenError",
    "RemoteBadRequestError",
    "RemoteStatementError",
    "RemoteConflictError",
    "RemoteQuotaError",
    "RemoteRateLimitError",
    "RemoteShuttingDownError",
    "RemoteInternalError",
    "RemoteTimeoutError",
    "ERROR_CLASSES",
    "RemoteTable",
    "RemotePivot",
    "WarehouseClient",
]


class RemoteError(ReproError):
    """A typed error response from the server."""

    def __init__(
        self, code: str, message: str, details: Mapping[str, Any] | None = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.details = dict(details or {})


class RemoteAuthError(RemoteError):
    """``auth_required`` / ``auth_failed``."""


class RemoteForbiddenError(RemoteError):
    """``forbidden`` — authenticated but not allowed."""


class RemoteBadRequestError(RemoteError):
    """``bad_request`` — malformed request."""


class RemoteStatementError(RemoteError):
    """``parse_error`` / ``compile_error`` / ``query_error``."""


class RemoteConflictError(RemoteError):
    """``conflict`` — a write lost first-committer-wins validation."""


class RemoteQuotaError(RemoteError):
    """``quota_exceeded`` — concurrency quota hit."""


class RemoteRateLimitError(RemoteError):
    """``rate_limited`` — sustained rate exceeded."""


class RemoteShuttingDownError(RemoteError):
    """``shutting_down`` — the server is draining."""


class RemoteInternalError(RemoteError):
    """``internal`` — unexpected server-side failure."""


class RemoteTimeoutError(RemoteError):
    """The socket timed out waiting for the server's response.

    Raised client-side (code ``timeout``): the server may still be
    executing the statement; the connection is no longer usable because
    the late response would desynchronize the request/response pairing.
    """


#: code → exception class; unknown codes fall back to :class:`RemoteError`.
ERROR_CLASSES: dict[str, type[RemoteError]] = {
    "auth_required": RemoteAuthError,
    "auth_failed": RemoteAuthError,
    "forbidden": RemoteForbiddenError,
    "bad_request": RemoteBadRequestError,
    "parse_error": RemoteStatementError,
    "compile_error": RemoteStatementError,
    "query_error": RemoteStatementError,
    "conflict": RemoteConflictError,
    "quota_exceeded": RemoteQuotaError,
    "rate_limited": RemoteRateLimitError,
    "shutting_down": RemoteShuttingDownError,
    "internal": RemoteInternalError,
}


class RemoteTable:
    """A SELECT result re-assembled from the page stream."""

    def __init__(self, payload: Mapping[str, Any], rows: list[dict]) -> None:
        self.columns: list[str] = list(payload["columns"])
        self.measures: list[str] = list(payload["measures"])
        self.mode: str = payload["mode"]
        self.total_rows: int = payload["total_rows"]
        self.rows = rows
        self.cursor = payload.get("cursor")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.rows)

    def as_dict(self) -> dict[tuple, dict[str, float | None]]:
        """``{group key: {measure: value}}`` — mirrors
        :meth:`~repro.core.query.ResultTable.as_dict` for assertions."""
        return {
            tuple(row["group"]): {
                cell["measure"]: cell["value"] for cell in row["cells"]
            }
            for row in self.rows
        }

    def confidences(self) -> dict[tuple, dict[str, str | None]]:
        """``{group key: {measure: confidence symbol}}``."""
        return {
            tuple(row["group"]): {
                cell["measure"]: cell["confidence"] for cell in row["cells"]
            }
            for row in self.rows
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteTable(mode={self.mode!r}, rows={len(self.rows)}/"
            f"{self.total_rows})"
        )


class RemotePivot:
    """A cube pivot re-assembled from the page stream."""

    def __init__(self, payload: Mapping[str, Any], grid: list[dict]) -> None:
        self.mode: str = payload["mode"]
        self.measure: str = payload["measure"]
        self.row_axis: str = payload["row_axis"]
        self.col_axis: str = payload["col_axis"]
        self.rows: list[Any] = [entry["row"] for entry in grid]
        self.cols: list[Any] = list(payload["cols"])
        self._cells: dict[tuple[Any, Any], dict | None] = {}
        for entry in grid:
            for col, cell in zip(self.cols, entry["cells"]):
                self._cells[(entry["row"], col)] = cell

    def cell(self, row: Any, col: Any) -> dict | None:
        """``{"value", "confidence"}`` or ``None`` for an empty cell."""
        return self._cells.get((row, col))

    def value(self, row: Any, col: Any) -> float | None:
        """The cell's value (``None`` when empty)."""
        cell = self.cell(row, col)
        return None if cell is None else cell["value"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemotePivot(mode={self.mode!r}, measure={self.measure!r}, "
            f"{len(self.rows)}x{len(self.cols)})"
        )


class WarehouseClient:
    """A blocking NDJSON client over one TCP connection."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        api_key: str | None = None,
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        request_timeout: float | None = None,
        tracer: Any = None,
    ) -> None:
        """``timeout`` is the legacy single knob; ``connect_timeout`` and
        ``request_timeout`` override it for the dial and the per-request
        read respectively.  ``tracer`` makes every request a client-side
        span whose ``traceparent`` rides the envelope."""
        self._sock = socket.create_connection(
            (host, port),
            timeout=timeout if connect_timeout is None else connect_timeout,
        )
        # The connect budget and the read budget are different animals: a
        # dial should fail in seconds, a heavy statement may legitimately
        # run much longer.  Re-arm the socket for the request phase.
        self._sock.settimeout(
            timeout if request_timeout is None else request_timeout
        )
        self._file = self._sock.makefile("rwb")
        self._next_id = 1
        self._tracer = tracer
        self.session: dict[str, Any] | None = None
        if api_key is not None:
            self.auth(api_key)

    # -- plumbing ----------------------------------------------------------------

    def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and return the success payload, raising the
        mapped :class:`RemoteError` subclass on a typed failure."""
        tracer = self._tracer
        if tracer is not None and getattr(tracer, "enabled", False):
            from repro.observability.tracing import format_traceparent

            with tracer.span(
                "client.request", attributes={"op": op}
            ) as span:
                fields["traceparent"] = format_traceparent(span)
                return self._roundtrip(op, fields)
        return self._roundtrip(op, fields)

    def _roundtrip(self, op: str, fields: dict[str, Any]) -> dict[str, Any]:
        import json

        request_id = self._next_id
        self._next_id += 1
        try:
            self._file.write(
                encode_message({"id": request_id, "op": op, **fields})
            )
            self._file.flush()
            line = self._file.readline(MAX_LINE_BYTES + 2)
        except TimeoutError as exc:
            raise RemoteTimeoutError(
                "timeout",
                f"no response to {op!r} within the request timeout "
                f"({self._sock.gettimeout()}s); the connection is no "
                f"longer usable",
            ) from exc
        if not line:
            raise RemoteError(
                "connection_closed", "server closed the connection"
            )
        response = json.loads(line.decode("utf-8"))
        if response.get("id") != request_id:
            raise RemoteError(
                "protocol_desync",
                f"response id {response.get('id')!r} does not match request "
                f"{request_id}",
            )
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        code = error.get("code", "internal")
        raise ERROR_CLASSES.get(code, RemoteError)(
            code, error.get("message", "unknown error"), error.get("details")
        )

    # -- session -----------------------------------------------------------------

    def hello(self) -> dict[str, Any]:
        """Server identity and supported ops (no auth required)."""
        return self.call("hello")

    def auth(self, api_key: str) -> dict[str, Any]:
        """Authenticate; pins the session to the current MVCC version."""
        self.session = self.call("auth", api_key=api_key)
        return self.session

    @property
    def version(self) -> int | None:
        """The pinned snapshot version (``None`` before auth)."""
        return None if self.session is None else self.session["version"]

    def refresh(self) -> dict[str, Any]:
        """Re-pin the session to the latest committed version."""
        payload = self.call("refresh")
        if self.session is not None:
            self.session["version"] = payload["version"]
        return payload

    # -- statements --------------------------------------------------------------

    def _drain_pages(
        self, first: list[dict], cursor: Any
    ) -> list[dict]:
        rows = list(first)
        while cursor is not None:
            page = self.call("fetch", cursor=cursor)
            rows.extend(page["rows"])
            cursor = page["cursor"]
        return rows

    def query(
        self,
        statement: str,
        *,
        page_size: int | None = None,
        as_of: int | str | None = None,
        fetch_all: bool = True,
    ) -> Any:
        """Execute one MVQL statement.

        SELECT returns a :class:`RemoteTable` (fully paged unless
        ``fetch_all=False``), RANK MODES the ranking list, SHOW the
        descriptive lines.
        """
        fields: dict[str, Any] = {"statement": statement}
        if page_size is not None:
            fields["page_size"] = page_size
        if as_of is not None:
            fields["as_of"] = as_of
        payload = self.call("query", **fields)
        kind = payload.get("kind")
        if kind == "table":
            rows = payload["page"]
            if fetch_all:
                rows = self._drain_pages(rows, payload["cursor"])
            return RemoteTable(payload, rows)
        if kind == "ranking":
            return payload["modes"]
        return payload["lines"]

    def pivot(
        self,
        mode: str,
        rows: str,
        cols: str,
        measure: str,
        *,
        page_size: int | None = None,
        fetch_all: bool = True,
    ) -> RemotePivot:
        """A 2-D cube pivot (axes as ``"year"`` or ``"dim.Level"``)."""
        fields: dict[str, Any] = {
            "mode": mode,
            "rows": rows,
            "cols": cols,
            "measure": measure,
        }
        if page_size is not None:
            fields["page_size"] = page_size
        payload = self.call("pivot", **fields)
        grid = payload["page"]
        if fetch_all:
            grid = self._drain_pages(grid, payload["cursor"])
        return RemotePivot(payload, grid)

    def fetch(self, cursor: int) -> dict[str, Any]:
        """One page of a paged result (manual paging)."""
        return self.call("fetch", cursor=cursor)

    def tail(
        self,
        *,
        from_lsn: int = 0,
        kinds: list[str] | None = None,
        page_size: int | None = None,
        fetch_all: bool = True,
    ) -> dict[str, Any]:
        """Tail committed WAL change events (write-capable tenants only).

        Returns ``{"events", "cursor_lsn", "total"}``; ``cursor_lsn`` is
        the commit LSN of the last delivered transaction — pass it back as
        ``from_lsn`` to resume exactly where this call left off.
        """
        fields: dict[str, Any] = {"from_lsn": from_lsn}
        if kinds is not None:
            fields["kinds"] = list(kinds)
        if page_size is not None:
            fields["page_size"] = page_size
        payload = self.call("tail", **fields)
        events = payload["page"]
        if fetch_all:
            events = self._drain_pages(events, payload["cursor"])
        return {
            "events": events,
            "cursor_lsn": payload["cursor_lsn"],
            "total": payload["total"],
        }

    def evolve(self, member: Mapping[str, Any]) -> dict[str, Any]:
        """Run one member-insert evolution (write-capable tenants only).

        Raises :class:`RemoteConflictError` when the write lost
        first-committer-wins validation against this session's pinned
        base — ``refresh()`` and retry, the optimistic loop.
        """
        return self.call("evolve", member=dict(member))

    # -- operations --------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness: cheap, no auth needed, answers while draining."""
        return self.call("health")

    def ready(self) -> dict[str, Any]:
        """Readiness: the server's full doctor sweep."""
        return self.call("ready")

    def stats(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        return self.call("stats")["metrics"]

    def usage(self, tenant: str | None = None) -> dict[str, Any]:
        """The per-tenant usage ledger: ``{"enabled", "records",
        "totals"}``.  Read-only tenants always get their own bill;
        write-capable tenants may pass ``tenant=`` (or ``None`` for the
        whole ledger)."""
        fields: dict[str, Any] = {}
        if tenant is not None:
            fields["tenant"] = tenant
        payload = self.call("usage", **fields)
        return {
            "enabled": payload["enabled"],
            "records": payload["records"],
            "totals": payload["totals"],
        }

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Say goodbye and close the socket (idempotent)."""
        if self._sock is None:
            return
        try:
            self.call("close")
        except (OSError, RemoteError):  # pragma: no cover - best effort
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()
            self._sock = None  # type: ignore[assignment]

    def __enter__(self) -> "WarehouseClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tenant = None if self.session is None else self.session["tenant"]
        return f"WarehouseClient(tenant={tenant!r}, version={self.version})"
