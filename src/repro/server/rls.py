"""Row-level security: per-tenant slice predicates compiled into queries.

A tenant's RLS policy is a set of declarative *member filters* — "this
tenant sees only facts rolling up into Division ∈ {Sales}" — the shape
relational warehouses express as ``CREATE SECURITY POLICY ... FILTER
PREDICATE`` scripts.  Here each rule compiles to a
:class:`~repro.core.query.LevelFilter` and the policy is **merged into
the query plan before execution**: the engine applies level filters
conjunctively and resolves them through the query's own presentation
mode, so the restriction follows reclassifications exactly like an
analyst's slice would (a department moved out of Sales in 2002 stops
contributing to a Sales-scoped tenant's 2002 numbers in ``tcm``).

Because enforcement happens at plan level rather than on serialized
results, a tenant cannot observe another tenant's slice through any
statement shape — grouping, filtering on the same level, RANK MODES
(which re-executes the compiled query per mode) or cube pivots all pass
through :meth:`RLSPolicy.apply`.  A tenant query that asks for members
outside its slice simply intersects to the empty set of facts: an empty
result, not an error, so the policy leaks nothing about what exists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.core.query import LevelFilter, Query

from .protocol import ForbiddenError

__all__ = ["RLSRule", "RLSPolicy", "RLSConfigError"]


class RLSConfigError(ValueError):
    """An RLS rule that cannot be interpreted or validated."""


@dataclass(frozen=True)
class RLSRule:
    """One declarative member filter: ``dimension.level ∈ values``."""

    dimension: str
    level: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.dimension or not self.level:
            raise RLSConfigError(
                "an RLS rule needs a dimension and a level name"
            )
        if not self.values:
            raise RLSConfigError(
                f"RLS rule on {self.dimension}.{self.level} needs at least "
                f"one allowed member"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RLSRule":
        """Build one rule from its JSON config shape."""
        unknown = set(payload) - {"dimension", "level", "values"}
        if unknown:
            raise RLSConfigError(f"unknown RLS rule fields: {sorted(unknown)}")
        missing = {"dimension", "level", "values"} - set(payload)
        if missing:
            raise RLSConfigError(f"RLS rule missing fields: {sorted(missing)}")
        values = payload["values"]
        if isinstance(values, str) or not isinstance(values, Sequence):
            raise RLSConfigError("RLS rule 'values' must be a list of names")
        return cls(
            dimension=str(payload["dimension"]),
            level=str(payload["level"]),
            values=tuple(str(v) for v in values),
        )

    def to_filter(self) -> LevelFilter:
        """The query-plan predicate implementing this rule."""
        return LevelFilter(self.dimension, self.level, self.values)

    def to_dict(self) -> dict[str, Any]:
        """The JSON config shape."""
        return {
            "dimension": self.dimension,
            "level": self.level,
            "values": list(self.values),
        }


class RLSPolicy:
    """A tenant's full set of RLS rules, applied to every query plan."""

    def __init__(self, rules: Iterable[RLSRule] = ()) -> None:
        self.rules = tuple(rules)
        self._filters = tuple(rule.to_filter() for rule in self.rules)

    @classmethod
    def from_list(cls, payload: Iterable[Mapping[str, Any]]) -> "RLSPolicy":
        """Build a policy from the JSON config list."""
        return cls(RLSRule.from_dict(item) for item in payload)

    @property
    def unrestricted(self) -> bool:
        """Whether this policy imposes no restriction."""
        return not self.rules

    @property
    def filters(self) -> tuple[LevelFilter, ...]:
        """The compiled level filters (for surfaces taking ``filters=``)."""
        return self._filters

    def apply(self, query: Query) -> Query:
        """The query with this policy's predicates merged into its plan.

        The tenant's own filters stay in place; RLS filters append, and
        the engine's conjunctive semantics make the result the
        intersection of both restrictions.
        """
        if not self._filters:
            return query
        return replace(
            query, level_filters=query.level_filters + self._filters
        )

    def validate(self, mvft: Any) -> None:
        """Fail fast when a rule names schema elements that don't exist.

        ``mvft`` is the MultiVersion fact table the policy will guard.
        Dimension levels are collected across every structure version
        (levels evolve; a rule on a level any version knows is valid).
        """
        schema = mvft.schema
        for rule in self.rules:
            if rule.dimension not in schema.dimensions:
                raise RLSConfigError(
                    f"RLS rule references unknown dimension "
                    f"{rule.dimension!r} (available: {schema.dimension_ids})"
                )
            levels: list[str] = []
            for mode in mvft.modes.version_modes:
                version = mode.version
                snap = version.dimension(rule.dimension).at(
                    version.valid_time.start
                )
                for level in snap.levels():
                    if level not in levels:
                        levels.append(level)
            if rule.level not in levels:
                raise RLSConfigError(
                    f"RLS rule references unknown level {rule.level!r} of "
                    f"dimension {rule.dimension!r} (available: {levels})"
                )

    def guard_writes(self, tenant: str) -> None:
        """RLS-scoped tenants never write: a write could move members
        across the slice boundary and reveal (or corrupt) what it must
        not see."""
        if not self.unrestricted:
            raise ForbiddenError(
                f"tenant {tenant!r} is RLS-scoped and cannot run evolutions"
            )

    def to_dicts(self) -> list[dict[str, Any]]:
        """The JSON config list."""
        return [rule.to_dict() for rule in self.rules]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RLSPolicy(rules={len(self.rules)})"
