"""Tenant configuration and API-key authentication.

The server is configured from one JSON document (usually a file next to
the deployment) listing its tenants::

    {"tenants": [
        {"tenant": "acme",
         "api_key": "acme-key-1",
         "rls": [{"dimension": "org", "level": "Division",
                  "values": ["Sales"]}],
         "max_concurrent": 2,
         "rate_limit": {"capacity": 20, "refill_per_sec": 10},
         "can_write": false},
        {"tenant": "ops", "api_key": "ops-key-1", "can_write": true}
    ]}

Authentication compares the presented key against every tenant's with
:func:`hmac.compare_digest`, so the comparison cost does not depend on
how many prefix bytes match — no timing side channel on key bytes.
Failures never say whether the key was close.
"""

from __future__ import annotations

import hmac
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from .protocol import AuthFailedError
from .rls import RLSPolicy, RLSRule

__all__ = [
    "RateLimit",
    "TenantConfig",
    "ServerConfig",
    "ConfigError",
    "demo_config",
]


class ConfigError(ValueError):
    """A server configuration document that cannot be interpreted."""


@dataclass(frozen=True)
class RateLimit:
    """A token bucket shape: sustained rate plus burst headroom."""

    capacity: float
    refill_per_sec: float

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError("rate limit capacity must be >= 1")
        if self.refill_per_sec < 0:
            raise ConfigError("rate limit refill_per_sec must be >= 0")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RateLimit":
        """Build from the JSON config shape."""
        unknown = set(payload) - {"capacity", "refill_per_sec"}
        if unknown:
            raise ConfigError(f"unknown rate-limit fields: {sorted(unknown)}")
        missing = {"capacity", "refill_per_sec"} - set(payload)
        if missing:
            raise ConfigError(f"rate limit missing fields: {sorted(missing)}")
        return cls(
            capacity=float(payload["capacity"]),
            refill_per_sec=float(payload["refill_per_sec"]),
        )


@dataclass(frozen=True)
class TenantConfig:
    """One tenant: identity, credentials, visibility, and limits."""

    tenant: str
    api_key: str
    rls: tuple[RLSRule, ...] = ()
    max_concurrent: int = 4
    rate_limit: RateLimit | None = None
    can_write: bool = False

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigError("a tenant needs a non-empty name")
        if not self.api_key:
            raise ConfigError(f"tenant {self.tenant!r} needs an api_key")
        if self.max_concurrent < 1:
            raise ConfigError(
                f"tenant {self.tenant!r}: max_concurrent must be >= 1"
            )
        if self.can_write and self.rls:
            raise ConfigError(
                f"tenant {self.tenant!r} cannot combine can_write with RLS "
                f"rules — writers see (and move) every member"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TenantConfig":
        """Build one tenant from its JSON config shape."""
        known = {
            "tenant",
            "api_key",
            "rls",
            "max_concurrent",
            "rate_limit",
            "can_write",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown tenant fields: {sorted(unknown)}")
        missing = {"tenant", "api_key"} - set(payload)
        if missing:
            raise ConfigError(f"tenant missing fields: {sorted(missing)}")
        rls_payload = payload.get("rls", ())
        if isinstance(rls_payload, Mapping):
            raise ConfigError("tenant 'rls' must be a list of rule objects")
        rate_payload = payload.get("rate_limit")
        return cls(
            tenant=str(payload["tenant"]),
            api_key=str(payload["api_key"]),
            rls=tuple(RLSRule.from_dict(item) for item in rls_payload),
            max_concurrent=int(payload.get("max_concurrent", 4)),
            rate_limit=(
                RateLimit.from_dict(rate_payload)
                if rate_payload is not None
                else None
            ),
            can_write=bool(payload.get("can_write", False)),
        )

    def policy(self) -> RLSPolicy:
        """This tenant's compiled RLS policy."""
        return RLSPolicy(self.rls)

    def to_dict(self) -> dict[str, Any]:
        """The JSON config shape (includes the api_key — handle with care)."""
        out: dict[str, Any] = {"tenant": self.tenant, "api_key": self.api_key}
        if self.rls:
            out["rls"] = [rule.to_dict() for rule in self.rls]
        out["max_concurrent"] = self.max_concurrent
        if self.rate_limit is not None:
            out["rate_limit"] = {
                "capacity": self.rate_limit.capacity,
                "refill_per_sec": self.rate_limit.refill_per_sec,
            }
        out["can_write"] = self.can_write
        return out


@dataclass
class ServerConfig:
    """The full tenant roster the server authenticates against."""

    tenants: list[TenantConfig] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [t.tenant for t in self.tenants]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigError(f"duplicate tenant names: {dupes}")
        keys = [t.api_key for t in self.tenants]
        if len(keys) != len(set(keys)):
            raise ConfigError("two tenants share an api_key")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServerConfig":
        """Build from the JSON document shape ``{"tenants": [...]}``."""
        unknown = set(payload) - {"tenants"}
        if unknown:
            raise ConfigError(f"unknown config fields: {sorted(unknown)}")
        tenants = payload.get("tenants")
        if not isinstance(tenants, list) or not tenants:
            raise ConfigError("config needs a non-empty 'tenants' list")
        return cls([TenantConfig.from_dict(item) for item in tenants])

    @classmethod
    def load(cls, path: str | Path) -> "ServerConfig":
        """Load and validate a JSON config file."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigError(f"cannot read config {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise ConfigError(f"config {path} must hold a JSON object")
        return cls.from_dict(payload)

    def dump(self, path: str | Path) -> None:
        """Write the config back out as JSON (for templates and tests)."""
        Path(path).write_text(
            json.dumps(
                {"tenants": [t.to_dict() for t in self.tenants]}, indent=2
            )
            + "\n",
            encoding="utf-8",
        )

    def tenant(self, name: str) -> TenantConfig:
        """Look a tenant up by name."""
        for tenant in self.tenants:
            if tenant.tenant == name:
                return tenant
        raise KeyError(f"no tenant named {name!r}")

    def authenticate(self, api_key: Any) -> TenantConfig:
        """The tenant owning ``api_key``, or :class:`AuthFailedError`.

        Every configured key is compared (constant-time per comparison)
        even after a match, so response timing does not reveal roster
        position either.
        """
        if not isinstance(api_key, str) or not api_key:
            raise AuthFailedError("authentication failed")
        presented = api_key.encode("utf-8")
        matched: TenantConfig | None = None
        for tenant in self.tenants:
            if hmac.compare_digest(presented, tenant.api_key.encode("utf-8")):
                matched = tenant
        if matched is None:
            raise AuthFailedError("authentication failed")
        return matched

    def validate_rls(self, mvft: Any) -> None:
        """Validate every tenant's RLS rules against the served schema."""
        for tenant in self.tenants:
            tenant.policy().validate(mvft)


def demo_config() -> ServerConfig:
    """The two-tenant roster the docs, CLI smoke and benchmarks share:
    an RLS-scoped analyst tenant and an unrestricted operator tenant."""
    return ServerConfig(
        [
            TenantConfig(
                tenant="acme",
                api_key="acme-key",
                rls=(
                    RLSRule(
                        dimension="org",
                        level="Division",
                        values=("Sales",),
                    ),
                ),
                max_concurrent=2,
                rate_limit=RateLimit(capacity=50, refill_per_sec=25),
            ),
            TenantConfig(
                tenant="ops",
                api_key="ops-key",
                max_concurrent=8,
                can_write=True,
            ),
        ]
    )
