"""repro.server — the warehouse process boundary.

The ROADMAP's "millions of users" goal needs queries to cross a process
boundary; this package is that boundary, built entirely on the stdlib:

* :mod:`~repro.server.protocol` — newline-delimited JSON messages with
  typed error codes (the contract clients dispatch on);
* :mod:`~repro.server.auth` — per-tenant API keys, limits, and RLS rules
  from one JSON config document;
* :mod:`~repro.server.rls` — row-level security compiled *into the query
  plan* before execution, so tenants cannot observe each other's slices
  through any statement shape;
* :mod:`~repro.server.quotas` — admission control: per-tenant concurrent
  statement quotas and token-bucket rate limits, shedding overload as
  typed errors;
* :mod:`~repro.server.session` — authenticated sessions pinned to one
  MVCC snapshot (reads never block the writer), with paged result
  streaming and AS-OF time travel;
* :mod:`~repro.server.server` — the asyncio server: event loop for
  connections, worker pool for engine work, graceful drain on shutdown,
  liveness/readiness ops backed by
  :func:`~repro.observability.health.run_doctor`;
* :mod:`~repro.server.client` — the blocking client library behind
  ``repro query --host``.

``repro serve`` runs the server from the CLI; :func:`serve_background`
embeds one in-process (tests, docs, benchmarks).
"""

from .auth import ConfigError, RateLimit, ServerConfig, TenantConfig, demo_config
from .client import (
    ERROR_CLASSES,
    RemoteAuthError,
    RemoteBadRequestError,
    RemoteConflictError,
    RemoteError,
    RemoteForbiddenError,
    RemoteInternalError,
    RemotePivot,
    RemoteQuotaError,
    RemoteRateLimitError,
    RemoteShuttingDownError,
    RemoteStatementError,
    RemoteTable,
    RemoteTimeoutError,
    WarehouseClient,
)
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    AuthFailedError,
    AuthRequiredError,
    BadRequestError,
    ForbiddenError,
    ProtocolError,
    QuotaExceededError,
    RateLimitedError,
    ShuttingDownError,
    cube_view_to_dict,
    decode_line,
    encode_message,
    error_code_for,
    error_response,
    ok_response,
    result_row_to_dict,
    result_table_to_dict,
)
from .quotas import AdmissionController, TokenBucket
from .rls import RLSConfigError, RLSPolicy, RLSRule
from .server import ServerHandle, WarehouseServer, serve_background
from .session import SecuredMVQLSession, ServerSession, parse_axis

__all__ = [
    # protocol
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "AuthRequiredError",
    "AuthFailedError",
    "ForbiddenError",
    "BadRequestError",
    "QuotaExceededError",
    "RateLimitedError",
    "ShuttingDownError",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "error_code_for",
    "result_row_to_dict",
    "result_table_to_dict",
    "cube_view_to_dict",
    # auth
    "RateLimit",
    "TenantConfig",
    "ServerConfig",
    "ConfigError",
    "demo_config",
    # rls
    "RLSRule",
    "RLSPolicy",
    "RLSConfigError",
    # quotas
    "TokenBucket",
    "AdmissionController",
    # session
    "SecuredMVQLSession",
    "ServerSession",
    "parse_axis",
    # server
    "WarehouseServer",
    "ServerHandle",
    "serve_background",
    # client
    "WarehouseClient",
    "RemoteTable",
    "RemotePivot",
    "RemoteError",
    "RemoteAuthError",
    "RemoteForbiddenError",
    "RemoteBadRequestError",
    "RemoteStatementError",
    "RemoteConflictError",
    "RemoteQuotaError",
    "RemoteRateLimitError",
    "RemoteShuttingDownError",
    "RemoteInternalError",
    "RemoteTimeoutError",
    "ERROR_CLASSES",
]
