"""Server-side sessions: one authenticated tenant over one pinned snapshot.

A :class:`ServerSession` is created at ``auth`` time and owns:

* a :class:`~repro.concurrency.cursor.SnapshotCursor` pinned to the MVCC
  version current at authentication — every statement of the session
  reads that version, so results are repeatable while writers keep
  committing (``refresh`` re-pins explicitly);
* the tenant's compiled :class:`~repro.server.rls.RLSPolicy`, woven into
  **every** query plan through :class:`SecuredMVQLSession` (SELECT and
  RANK MODES) and the pivot surface's ``filters=``;
* a bounded page registry: large results stream to the client in
  ``fetch``-sized chunks instead of one giant line;
* an AS-OF cache: ``as_of`` statements materialize a historical snapshot
  once per target and query it through the same RLS wrapper.

Sessions are synchronous — the server runs their statement methods on a
worker-thread pool; one connection issues statements sequentially, so a
session never races itself.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Any

from repro.core.chronology import MONTH, QUARTER, YEAR
from repro.core.query import ResultTable
from repro.mvql.session import MVQLSession
from repro.olap.cube import Cube, LevelAxis, TimeAxis

from .auth import TenantConfig
from .protocol import (
    BadRequestError,
    cube_view_to_dict,
    result_row_to_dict,
    result_table_to_dict,
)
from .rls import RLSPolicy

__all__ = ["SecuredMVQLSession", "ServerSession", "parse_axis"]

_GRANULARITIES = {"year": YEAR, "quarter": QUARTER, "month": MONTH}

DEFAULT_PAGE_SIZE = 100
MAX_PAGE_SIZE = 10_000
MAX_OPEN_PAGE_CURSORS = 32
MAX_CACHED_ASOF = 4


class SecuredMVQLSession(MVQLSession):
    """An MVQL session whose compiled plans carry an RLS policy.

    ``compile_select`` is the single funnel every SELECT — including the
    per-mode re-executions of RANK MODES — passes through, so appending
    the policy's predicates here closes the plan-level door for all
    statement shapes at once.
    """

    def __init__(self, mvft: Any, policy: RLSPolicy, **kwargs: Any) -> None:
        super().__init__(mvft, **kwargs)
        self.policy = policy

    def compile_select(self, statement: Any):
        return self.policy.apply(super().compile_select(statement))


def parse_axis(spec: Any) -> TimeAxis | LevelAxis:
    """A pivot axis from its wire spec: ``"year"`` or ``"dim.Level"``."""
    if not isinstance(spec, str) or not spec:
        raise BadRequestError(f"axis spec must be a non-empty string: {spec!r}")
    lowered = spec.lower()
    if lowered in _GRANULARITIES:
        return TimeAxis(_GRANULARITIES[lowered])
    if "." not in spec:
        raise BadRequestError(
            f"axis {spec!r} is neither a time granularity "
            f"({sorted(_GRANULARITIES)}) nor a dimension.Level pair"
        )
    dimension, level = spec.split(".", 1)
    if not dimension or not level:
        raise BadRequestError(f"axis {spec!r} needs both a dimension and a level")
    return LevelAxis(dimension, level)


class _PageCursor:
    """Buffered rows streaming out page by page."""

    __slots__ = ("rows", "position", "page_size")

    def __init__(self, rows: list[Any], page_size: int) -> None:
        self.rows = rows
        self.position = 0
        self.page_size = page_size

    def next_page(self) -> tuple[list[Any], bool]:
        chunk = self.rows[self.position : self.position + self.page_size]
        self.position += len(chunk)
        return chunk, self.position >= len(self.rows)


class ServerSession:
    """One tenant's authenticated, snapshot-pinned server session."""

    def __init__(
        self,
        tenant: TenantConfig,
        manager: Any,
        *,
        session_id: str | None = None,
        slow_log: Any = None,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        self.tenant = tenant
        self.manager = manager
        self.session_id = session_id
        self.policy = tenant.policy()
        self._slow_log = slow_log
        self._tracer = tracer
        # Every metric this session's engines emit carries the tenant
        # label: the registry is shared across tenants, but the labelled
        # view pins ``tenant=`` onto each series, so per-tenant deltas
        # (the usage meter's raw material) never mix.
        if metrics is not None:
            from repro.observability.metrics import LabelledMetrics

            metrics = LabelledMetrics(metrics, {"tenant": tenant.tenant})
        self._metrics = metrics
        # Sessions pinned to the same snapshot share the manager-wide
        # result cache; the tenant's RLS policy digest is baked into
        # every key this session writes, so tenants with different
        # policies can never observe each other's cells even though the
        # store is shared.
        from repro.cache import policy_digest

        self._result_cache = getattr(manager, "result_cache", None)
        self._policy_digest = policy_digest(self.policy)
        self.cursor = manager.open_cursor()
        self.policy.validate(self.cursor.mvft)
        self._mvql: SecuredMVQLSession | None = None
        self._cube: Cube | None = None
        self._pages: dict[int, _PageCursor] = {}
        self._page_ids = itertools.count(1)
        self._asof_cache: dict[Any, SecuredMVQLSession] = {}
        self.closed = False

    # -- pinned surfaces ---------------------------------------------------------

    @property
    def version(self) -> int:
        """The MVCC version this session is pinned to."""
        return self.cursor.version

    def _session(self) -> SecuredMVQLSession:
        if self._mvql is None:
            self._mvql = SecuredMVQLSession(
                self.cursor.mvft,
                self.policy,
                tracer=self._tracer,
                metrics=self._metrics,
                slow_log=self._slow_log,
                cache=self._result_cache,
                cache_policy_digest=self._policy_digest,
            )
        return self._mvql

    def _cube_now(self) -> Cube:
        if self._cube is None:
            self._cube = Cube(
                self.cursor.mvft,
                tracer=self._tracer,
                metrics=self._metrics,
                cache=self._result_cache,
                policy_digest=self._policy_digest,
            )
        return self._cube

    def _asof_session(self, target: Any) -> SecuredMVQLSession:
        key = target if isinstance(target, (int, str)) else None
        if key in self._asof_cache:
            return self._asof_cache[key]
        snapshot = self.manager.open_as_of_cursor(target)
        session = SecuredMVQLSession(
            snapshot.mvft,
            self.policy,
            tracer=self._tracer,
            metrics=self._metrics,
            slow_log=self._slow_log,
            cache=self._result_cache,
            cache_policy_digest=self._policy_digest,
        )
        if len(self._asof_cache) >= MAX_CACHED_ASOF:
            self._asof_cache.pop(next(iter(self._asof_cache)))
        self._asof_cache[key] = session
        return session

    # -- paging ------------------------------------------------------------------

    def _normalize_page_size(self, page_size: Any) -> int:
        if page_size is None:
            return DEFAULT_PAGE_SIZE
        if not isinstance(page_size, int) or isinstance(page_size, bool):
            raise BadRequestError(f"page_size must be an integer: {page_size!r}")
        if page_size < 1:
            raise BadRequestError("page_size must be >= 1")
        return min(page_size, MAX_PAGE_SIZE)

    def _register_pages(
        self, rows: list[Any], page_size: int
    ) -> tuple[list[Any], int | None]:
        """First page now; a cursor id when more rows remain."""
        cursor = _PageCursor(rows, page_size)
        first, done = cursor.next_page()
        if done:
            return first, None
        if len(self._pages) >= MAX_OPEN_PAGE_CURSORS:
            # Oldest-first eviction bounds per-session buffering; an
            # evicted cursor's fetch fails loudly rather than stalling.
            self._pages.pop(next(iter(self._pages)))
        page_id = next(self._page_ids)
        self._pages[page_id] = cursor
        return first, page_id

    def fetch(self, cursor_id: Any) -> dict[str, Any]:
        """The next page of a previously returned result."""
        if not isinstance(cursor_id, int) or cursor_id not in self._pages:
            raise BadRequestError(
                f"unknown result cursor {cursor_id!r} (fetched to the end, "
                f"evicted, or never issued)"
            )
        cursor = self._pages[cursor_id]
        offset = cursor.position
        chunk, done = cursor.next_page()
        if done:
            del self._pages[cursor_id]
        return {
            "rows": chunk,
            "offset": offset,
            "done": done,
            "cursor": None if done else cursor_id,
        }

    # -- statements --------------------------------------------------------------

    def execute(
        self,
        statement: Any,
        *,
        page_size: Any = None,
        as_of: Any = None,
    ) -> dict[str, Any]:
        """Run one MVQL statement; SELECT results page, the rest inline."""
        if not isinstance(statement, str) or not statement.strip():
            raise BadRequestError("'statement' must be a non-empty string")
        size = self._normalize_page_size(page_size)
        session = (
            self._session() if as_of is None else self._asof_session(as_of)
        )
        # Slow-query entries recorded under this statement carry the
        # tenant, so ``repro doctor`` can say *whose* query was slow.
        scope = (
            self._slow_log.tenant(self.tenant.tenant)
            if self._slow_log is not None and hasattr(self._slow_log, "tenant")
            else contextlib.nullcontext()
        )
        with scope:
            result = session.execute(statement)
        if isinstance(result, ResultTable):
            payload = result_table_to_dict(result, rows=False)
            serialized = [result_row_to_dict(row) for row in result.rows]
            first, cursor_id = self._register_pages(serialized, size)
            payload.update(
                {"kind": "table", "page": first, "cursor": cursor_id}
            )
            return payload
        if result and isinstance(result, list) and isinstance(result[0], tuple):
            return {
                "kind": "ranking",
                "modes": [
                    {
                        "mode": label,
                        "quality": quality,
                        "table": result_table_to_dict(table),
                    }
                    for label, quality, table in result
                ],
            }
        return {"kind": "show", "lines": [str(item) for item in result]}

    def pivot(
        self,
        *,
        mode: Any,
        rows: Any,
        cols: Any,
        measure: Any,
        page_size: Any = None,
    ) -> dict[str, Any]:
        """A 2-D cube pivot, RLS-filtered, with the row grid paged."""
        if not isinstance(mode, str) or not mode:
            raise BadRequestError("'mode' must be a non-empty string")
        if not isinstance(measure, str) or not measure:
            raise BadRequestError("'measure' must be a non-empty string")
        size = self._normalize_page_size(page_size)
        view = self._cube_now().pivot(
            mode,
            parse_axis(rows),
            parse_axis(cols),
            measure,
            filters=self.policy.filters,
        )
        payload = cube_view_to_dict(view)
        grid_rows = [
            {"row": row_label, "cells": cells}
            for row_label, cells in zip(payload["rows"], payload["cells"])
        ]
        first, cursor_id = self._register_pages(grid_rows, size)
        payload.pop("cells")
        payload.update(
            {
                "kind": "pivot",
                "total_rows": len(grid_rows),
                "page": first,
                "cursor": cursor_id,
            }
        )
        return payload

    def evolve(self, spec: Any) -> dict[str, Any]:
        """One member-insert evolution against the live schema.

        Writes go through the snapshot manager's first-committer-wins
        validation with this session's pinned version as the base — a
        concurrent commit since authentication surfaces as a
        :class:`~repro.concurrency.errors.WriteConflictError`, which the
        protocol layer sends as a typed ``conflict`` error.  ``refresh``
        re-pins and retries the canonical optimistic loop client-side.
        """
        from repro.core.chronology import ym

        from .protocol import ForbiddenError

        if not self.tenant.can_write:
            raise ForbiddenError(
                f"tenant {self.tenant.tenant!r} is not allowed to write"
            )
        self.policy.guard_writes(self.tenant.tenant)
        if not isinstance(spec, dict):
            raise BadRequestError("'member' must be an object")
        required = {"dimension", "mvid", "name", "level", "t"}
        missing = required - set(spec)
        if missing:
            raise BadRequestError(f"evolve member missing: {sorted(missing)}")
        t = spec["t"]
        if (
            not isinstance(t, (list, tuple))
            or len(t) != 2
            or not all(isinstance(part, int) for part in t)
        ):
            raise BadRequestError("'t' must be a [year, month] pair")
        parents = spec.get("parents", ())
        if not isinstance(parents, (list, tuple)):
            raise BadRequestError(
                "'parents' must be a list of member-version ids"
            )
        base = self.version

        def insert(evolution: Any) -> Any:
            return self.manager.txm.editor.insert(
                str(spec["dimension"]),
                str(spec["mvid"]),
                str(spec["name"]),
                ym(t[0], t[1]),
                level=str(spec["level"]),
                parents=[str(p) for p in parents],
            )

        self.manager.run_write(insert, base=base)
        return {
            "kind": "evolve",
            "committed_version": self.manager.version,
            "base_version": base,
        }

    def tail(
        self,
        wal_path: Any,
        *,
        from_lsn: Any = None,
        kinds: Any = None,
        page_size: Any = None,
    ) -> dict[str, Any]:
        """Stream committed change events from the server's WAL.

        Tailing exposes the *whole* committed history — every tenant's
        writes — so it takes the same authorization evolve does: a
        ``can_write`` tenant with no RLS slice.  Events page through the
        session's cursor registry exactly like query rows; ``cursor_lsn``
        in the response is the resume token for the next ``tail`` call.
        """
        from repro.observability.events import ChangeStream

        from .protocol import ForbiddenError

        if not self.tenant.can_write:
            raise ForbiddenError(
                f"tenant {self.tenant.tenant!r} is not allowed to tail "
                f"changes (write scope required)"
            )
        self.policy.guard_writes(self.tenant.tenant)
        if wal_path is None:
            raise BadRequestError(
                "the server has no WAL attached; nothing to tail"
            )
        if from_lsn is None:
            from_lsn = 0
        if not isinstance(from_lsn, int) or isinstance(from_lsn, bool) or from_lsn < 0:
            raise BadRequestError(
                f"'from_lsn' must be a non-negative integer: {from_lsn!r}"
            )
        if kinds is not None and (
            not isinstance(kinds, (list, tuple))
            or not all(isinstance(kind, str) for kind in kinds)
        ):
            raise BadRequestError("'kinds' must be a list of record kinds")
        size = self._normalize_page_size(page_size)
        try:
            stream = ChangeStream(wal_path, from_lsn=from_lsn, kinds=kinds)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from None
        events = [event.to_dict() for event in stream.poll()]
        first, cursor_id = self._register_pages(events, size)
        return {
            "kind": "tail",
            "from_lsn": from_lsn,
            "cursor_lsn": stream.cursor,
            "total": len(events),
            "page": first,
            "cursor": cursor_id,
        }

    def refresh(self) -> dict[str, Any]:
        """Re-pin the session to the latest committed version."""
        old = self.version
        self.cursor.close()
        self.cursor = self.manager.open_cursor()
        self._mvql = None
        self._cube = None
        self._pages.clear()
        return {"kind": "refresh", "from_version": old, "version": self.version}

    def describe(self) -> dict[str, Any]:
        """Session metadata for the ``auth`` response and introspection."""
        return {
            "tenant": self.tenant.tenant,
            "session": self.session_id,
            "version": self.version,
            "rls": self.policy.to_dicts(),
            "can_write": self.tenant.can_write,
            "max_concurrent": self.tenant.max_concurrent,
        }

    def close(self) -> None:
        """Release the pinned cursor and any buffered pages (idempotent)."""
        if not self.closed:
            self.closed = True
            self._pages.clear()
            self._asof_cache.clear()
            self.cursor.close()
