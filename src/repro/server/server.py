"""The asyncio warehouse server: MVQL over the wire.

:class:`WarehouseServer` listens on a TCP socket and speaks the NDJSON
protocol of :mod:`repro.server.protocol`.  The architecture is the
classic asyncio-plus-pool split:

* the **event loop** owns connections: it reads request lines, runs
  authentication and admission control (both cheap and lock-light), and
  writes responses — thousands of idle sessions cost almost nothing;
* a bounded **worker-thread pool** owns engine work: statement
  execution, pivots, readiness sweeps.  Every statement runs against the
  session's *pinned MVCC snapshot*, so worker threads never contend with
  the writer and two tenants' statements share no mutable state;
* statements pass the :class:`~repro.server.quotas.AdmissionController`
  *before* reaching the pool — an overloaded server sheds typed errors
  instead of queueing into a hang.

**Graceful shutdown** (:meth:`WarehouseServer.shutdown`, also wired to
SIGTERM/SIGINT by the CLI) stops accepting connections, rejects new
statements with ``shutting_down``, waits for in-flight statements to
drain (bounded by ``drain_timeout``), flushes their responses, then
closes the transports — a client never loses the answer to a statement
the server already admitted.

:func:`serve_background` runs a server on a dedicated daemon-thread
event loop and returns a :class:`ServerHandle` — what embedding tests,
docs and benchmarks use.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.observability import runtime as _obs

from .auth import ServerConfig
from .protocol import (
    PROTOCOL_VERSION,
    AuthRequiredError,
    BadRequestError,
    ProtocolError,
    ShuttingDownError,
    decode_line,
    encode_message,
    error_code_for,
    error_response,
    ok_response,
)
from .session import ServerSession

__all__ = ["WarehouseServer", "ServerHandle", "serve_background"]

#: Ops a connection may issue before authenticating.
_UNAUTHENTICATED_OPS = frozenset({"hello", "auth", "health"})

#: Ops that count as statements for admission control and draining.
_STATEMENT_OPS = frozenset({"query", "pivot", "evolve", "tail"})

_ALL_OPS = (
    "hello",
    "auth",
    "query",
    "fetch",
    "pivot",
    "evolve",
    "refresh",
    "health",
    "ready",
    "stats",
    "usage",
    "tail",
    "close",
)

#: Error codes that mean admission control shed the statement — the
#: audit trail records these as ``rejected`` events.
_REJECTION_CODES = frozenset({"quota_exceeded", "rate_limited"})


class _Connection:
    """Per-connection state: a session once authenticated."""

    __slots__ = ("session", "peer")

    def __init__(self, peer: str) -> None:
        self.session: ServerSession | None = None
        self.peer = peer


class WarehouseServer:
    """One warehouse process boundary: sessions, RLS, admission, health."""

    def __init__(
        self,
        manager: Any,
        config: ServerConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        wal_path: Any = None,
        admission: Any = None,
        max_global_concurrent: int = 64,
        executor_threads: int = 8,
        metrics: Any = None,
        tracer: Any = None,
        slow_log: Any = None,
        audit_log: Any = None,
        event_bus: Any = None,
        usage: Any = None,
        usage_log: Any = None,
        statement_delay: float = 0.0,
    ) -> None:
        from repro.observability.events import AuditLog, publish_commits
        from repro.observability.usage import UsageMeter

        from .quotas import AdmissionController

        self.manager = manager
        self.config = config
        self.host = host
        self.port = port
        self.wal_path = wal_path
        self._metrics = metrics
        self._tracer = tracer
        self.slow_log = slow_log
        self.event_bus = event_bus
        # ``audit_log`` accepts a path (an AuditLog is built over it,
        # republishing onto the event bus) or a ready AuditLog.
        if audit_log is not None and not isinstance(audit_log, AuditLog):
            audit_log = AuditLog(audit_log, bus=event_bus)
        self.audit_log = audit_log
        if event_bus is not None:
            txm = getattr(manager, "txm", None)
            if txm is not None:
                publish_commits(txm, event_bus)
        # ``usage`` accepts a ready UsageMeter, ``False`` to disable, or
        # None — in which case metering comes free with metrics: every
        # statement's engine-counter deltas are attributed to its tenant.
        if usage is None and metrics is not None:
            usage = UsageMeter(metrics, path=usage_log, bus=event_bus)
        self.usage = usage or None
        # Test/bench seam: an artificial per-statement delay to make
        # drain and saturation behaviour observable deterministically.
        self.statement_delay = statement_delay
        self.admission = admission or AdmissionController(
            max_global_concurrent=max_global_concurrent, metrics=metrics
        )
        for tenant in config.tenants:
            self.admission.register(tenant)
        # Fail fast on a config whose RLS rules don't fit the served
        # schema — better at startup than at the first tenant statement.
        with manager.open_cursor() as cursor:
            config.validate_rls(cursor.mvft)
        self._pool = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-server"
        )
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._inflight = 0
        self._drained: asyncio.Event | None = None
        self._started_at = time.monotonic()
        self._sessions = 0

    # -- observability helpers ---------------------------------------------------

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    def _tracer_now(self) -> Any:
        return self._tracer if self._tracer is not None else _obs.current_tracer()

    def _audit(
        self,
        action: str,
        *,
        tenant: str | None = None,
        session: str | None = None,
        ok: bool = True,
        lsn: int | None = None,
        **detail: Any,
    ) -> None:
        """Append one audit-trail entry; auditing never takes a request
        down (a full disk degrades the trail, not the service)."""
        if self.audit_log is None:
            return
        from repro.observability.events import AuditEvent

        try:
            self.audit_log.record(
                AuditEvent(
                    action=action,
                    tenant=tenant,
                    session=session,
                    ok=ok,
                    lsn=lsn,
                    detail=detail,
                )
            )
        except OSError:  # pragma: no cover - disk-full degradation
            pass

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (port 0 picks a free one)."""
        self._drained = asyncio.Event()
        self._drained.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def serving(self) -> bool:
        """Whether the listening socket is open."""
        return self._server is not None and self._server.is_serving()

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (new statements are rejected)."""
        return self._draining

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI couples this with signals)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, *, drain_timeout: float = 10.0) -> bool:
        """Drain and stop; returns whether the drain completed in time."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        drained = True
        assert self._drained is not None
        try:
            await asyncio.wait_for(self._drained.wait(), drain_timeout)
        except asyncio.TimeoutError:
            drained = False
        # Reap connections that never said goodbye (their sessions close
        # in the handler's ``finally``); responses already written have
        # been flushed by the per-request ``drain()``.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        self._pool.shutdown(wait=drained)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter(
                "server.shutdowns",
                {"drained": "true" if drained else "false"},
            ).inc()
        self._audit("drain", ok=drained, drained=drained)
        if self.event_bus is not None:
            self.event_bus.publish("server", {"event": "drain", "drained": drained})
        return drained

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        conn = _Connection(str(peer))
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("server.connections").inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(conn, line)
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
                if response.get("bye"):
                    break
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            if conn.session is not None:
                conn.session.close()
                conn.session = None
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown race
                pass

    async def _respond(
        self, conn: _Connection, line: bytes
    ) -> dict[str, Any]:
        """Decode, dispatch, and map failures to typed error responses."""
        request_id: Any = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            return await self._dispatch(conn, message, wire_bytes=len(line))
        except Exception as exc:  # noqa: BLE001 - the wire must answer
            code = error_code_for(exc)
            session = conn.session
            metrics = self._metrics_now()
            if metrics.enabled:
                # Error counters carry the tenant once a session exists,
                # so per-tenant failure rates are visible — the same
                # labelling the admission counters get.
                labels = {"code": code}
                if session is not None:
                    labels["tenant"] = session.tenant.tenant
                metrics.counter("server.errors", labels).inc()
            if session is not None and code in _REJECTION_CODES:
                self._audit(
                    "rejected",
                    tenant=session.tenant.tenant,
                    session=session.session_id,
                    ok=False,
                    code=code,
                    reason=str(exc),
                )
            return error_response(request_id, code, str(exc))

    async def _dispatch(
        self, conn: _Connection, message: dict[str, Any], *, wire_bytes: int = 0
    ) -> dict[str, Any]:
        op = message.get("op")
        request_id = message.get("id")
        if not isinstance(op, str) or op not in _ALL_OPS:
            raise BadRequestError(
                f"unknown op {op!r} (available: {list(_ALL_OPS)})"
            )
        if op not in _UNAUTHENTICATED_OPS and conn.session is None:
            raise AuthRequiredError(f"op {op!r} requires authentication")

        if op == "hello":
            return ok_response(
                request_id,
                server="repro-warehouse",
                protocol=PROTOCOL_VERSION,
                ops=list(_ALL_OPS),
            )
        if op == "auth":
            return self._op_auth(conn, message)
        if op == "health":
            return self._op_health(request_id)
        if op == "close":
            response = ok_response(request_id, bye=True)
            return response

        session = conn.session
        assert session is not None
        if op == "fetch":
            return ok_response(request_id, **session.fetch(message.get("cursor")))
        if op == "refresh":
            return ok_response(request_id, **session.refresh())
        if op == "stats":
            return ok_response(
                request_id, metrics=self._metrics_now().snapshot()
            )
        if op == "ready":
            return await self._op_ready(request_id)
        if op == "usage":
            return self._op_usage(conn, message)
        # The statement ops: gate, then hand the engine work to the pool.
        if self._draining:
            raise ShuttingDownError("server is draining; no new statements")
        with self.admission.admit(session.tenant.tenant):
            return await self._run_statement(
                conn, op, message, wire_bytes=wire_bytes
            )

    async def _run_statement(
        self,
        conn: _Connection,
        op: str,
        message: dict[str, Any],
        *,
        wire_bytes: int = 0,
    ) -> dict[str, Any]:
        session = conn.session
        assert session is not None
        request_id = message.get("id")
        tracer = self._tracer_now()
        metrics = self._metrics_now()
        loop = asyncio.get_running_loop()
        # W3C-style trace context from the client envelope: the statement
        # span resumes the caller's trace (same trace id, remote parent,
        # the client's sampling decision) instead of starting a new root.
        # A malformed value is ignored, never an error.
        traceparent = message.get("traceparent")
        if not isinstance(traceparent, str):
            traceparent = None

        def work() -> dict[str, Any]:
            if self.statement_delay:
                time.sleep(self.statement_delay)
            if op == "query":
                return session.execute(
                    message.get("statement"),
                    page_size=message.get("page_size"),
                    as_of=message.get("as_of"),
                )
            if op == "pivot":
                return session.pivot(
                    mode=message.get("mode"),
                    rows=message.get("rows"),
                    cols=message.get("cols"),
                    measure=message.get("measure"),
                    page_size=message.get("page_size"),
                )
            if op == "tail":
                return session.tail(
                    self.wal_path,
                    from_lsn=message.get("from_lsn"),
                    kinds=message.get("kinds"),
                    page_size=message.get("page_size"),
                )
            assert op == "evolve"
            return session.evolve(message.get("member"))

        self._inflight += 1
        assert self._drained is not None
        self._drained.clear()
        started = time.perf_counter()
        statement = message.get("statement")
        meter = self.usage
        try:
            with tracer.span(
                "server.statement",
                attributes={"op": op, "tenant": session.tenant.tenant},
                traceparent=traceparent,
            ):
                # run_in_executor does NOT copy the caller's context, so
                # snapshot it here — with the statement span open — and
                # run the engine work inside it: engine phase spans (and
                # the slow-log statement/tenant labels) then nest under
                # this span instead of starting disconnected traces.
                ctx = contextvars.copy_context()
                if meter is not None:
                    with meter.measure(
                        session.tenant.tenant,
                        session.session_id,
                        op=op,
                        statement=statement
                        if isinstance(statement, str)
                        else None,
                    ) as charge:
                        charge.add_wire_bytes(wire_bytes)
                        payload = await loop.run_in_executor(
                            self._pool, ctx.run, work
                        )
                        response = ok_response(request_id, **payload)
                        charge.add_wire_bytes(len(encode_message(response)))
                else:
                    payload = await loop.run_in_executor(
                        self._pool, ctx.run, work
                    )
                    response = ok_response(request_id, **payload)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()
            if metrics.enabled:
                metrics.histogram(
                    "server.statement_seconds",
                    {"op": op, "tenant": session.tenant.tenant},
                ).observe(time.perf_counter() - started)
        if op == "evolve":
            self._audit(
                "evolve",
                tenant=session.tenant.tenant,
                session=session.session_id,
                lsn=payload.get("committed_version"),
                base_version=payload.get("base_version"),
            )
        else:
            detail: dict[str, Any] = {"op": op}
            if isinstance(statement, str):
                detail["statement"] = statement[:200]
            self._audit(
                "statement",
                tenant=session.tenant.tenant,
                session=session.session_id,
                **detail,
            )
        return response

    # -- simple ops --------------------------------------------------------------

    def _op_auth(
        self, conn: _Connection, message: dict[str, Any]
    ) -> dict[str, Any]:
        if conn.session is not None:
            conn.session.close()
            conn.session = None
        try:
            tenant = self.config.authenticate(message.get("api_key"))
        except Exception as exc:
            self._audit("auth_failed", ok=False, peer=conn.peer, reason=str(exc))
            raise
        self._sessions += 1
        session = ServerSession(
            tenant,
            self.manager,
            session_id=f"{tenant.tenant}-{self._sessions}",
            slow_log=self.slow_log,
            tracer=self._tracer,
            metrics=self._metrics,
        )
        conn.session = session
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter(
                "server.sessions", {"tenant": tenant.tenant}
            ).inc()
        self._audit(
            "auth",
            tenant=tenant.tenant,
            session=session.session_id,
            peer=conn.peer,
        )
        return ok_response(message.get("id"), **session.describe())

    def _op_usage(
        self, conn: _Connection, message: dict[str, Any]
    ) -> dict[str, Any]:
        """The per-tenant usage ledger.  Read-only tenants see their own
        bill; write-capable (operator) tenants may ask for any tenant's
        or the whole ledger."""
        session = conn.session
        assert session is not None
        request_id = message.get("id")
        if self.usage is None:
            return ok_response(
                request_id, enabled=False, records=[], totals={}
            )
        requested = message.get("tenant")
        if requested is not None and not isinstance(requested, str):
            raise BadRequestError("tenant must be a string")
        if not session.tenant.can_write:
            requested = session.tenant.tenant
        totals = self.usage.totals()
        if requested is not None:
            totals = {
                name: bill for name, bill in totals.items() if name == requested
            }
        return ok_response(
            request_id,
            enabled=True,
            records=self.usage.to_dicts(requested),
            totals=totals,
        )

    def _op_health(self, request_id: Any) -> dict[str, Any]:
        """Liveness: cheap, lock-free, answers even while draining."""
        return ok_response(
            request_id,
            status="draining" if self._draining else "ok",
            uptime_s=round(time.monotonic() - self._started_at, 3),
            version=self.manager.version,
            active_statements=self.admission.active_total,
            sessions=self._sessions,
        )

    async def _op_ready(self, request_id: Any) -> dict[str, Any]:
        """Readiness: the full doctor sweep, off the event loop."""
        from repro.observability.health import run_doctor

        loop = asyncio.get_running_loop()
        schema = self.manager.snapshot().schema
        metrics = self._metrics_now()

        def sweep() -> Any:
            return run_doctor(
                schema,
                metrics=metrics if metrics.enabled else None,
                wal_path=self.wal_path,
                slow_log=self.slow_log,
                usage=self.usage,
            )

        report = await loop.run_in_executor(self._pool, sweep)
        ready = report.status != "fail" and not self._draining
        return ok_response(
            request_id,
            ready=ready,
            status=report.status,
            draining=self._draining,
            doctor=report.to_dict(),
        )


# -- background serving ------------------------------------------------------------


class ServerHandle:
    """A running server on its own daemon-thread event loop."""

    def __init__(
        self,
        server: WarehouseServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        """The bound host."""
        return self.server.host

    @property
    def port(self) -> int:
        """The bound (possibly OS-assigned) port."""
        return self.server.port

    def stop(self, *, drain_timeout: float = 10.0) -> bool:
        """Drain, stop the loop, join the thread; True if fully drained."""
        if not self._thread.is_alive():
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout=drain_timeout), self._loop
        )
        drained = future.result(timeout=drain_timeout + 5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        return drained

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve_background(
    manager: Any, config: ServerConfig, **server_kwargs: Any
) -> ServerHandle:
    """Start a :class:`WarehouseServer` on a daemon thread and return a
    handle once the socket is bound — the embedding surface for tests,
    docs and benchmarks (and mirrors what ``repro serve`` does in the
    foreground)."""
    server = WarehouseServer(manager, config, **server_kwargs)
    loop = asyncio.new_event_loop()
    bound = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - startup failure
            failure.append(exc)
            bound.set()
            return
        bound.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-server-loop", daemon=True
    )
    thread.start()
    bound.wait(timeout=10.0)
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
