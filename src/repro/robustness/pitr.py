"""Point-in-time recovery: AS-OF time travel, restore points, backups.

The journal already holds everything a rewind needs — ``dml`` records
carry pre-images, ``catalog`` records carry table births, checkpoints
carry full dumps — this module is what finally consumes them:

* :func:`materialize_as_of` — **undo replay**: recover the current
  warehouse, then walk the committed ``dml`` history *backwards* from the
  journal head to a target LSN, applying pre-images (inserts are removed,
  updates and deletes restore their captured rows, post-target tables are
  dropped) to produce a historical :class:`~repro.storage.database.Database`
  byte-identical to what forward replay to that LSN would build;
* :func:`materialize_schema_as_of` — the schema tier of the same instant
  (forward replay across archives; ``op`` records are not journaled with
  invertible pre-images, and replay from the nearest checkpoint is exact);
* restore points — named LSN tags (:meth:`WriteAheadJournal.restore_point`)
  resolved by :func:`resolve_target`;
* :func:`recover_to` — rewind *the journal itself*: truncate forward
  history after the target, pruning archive segments the rewind obsoletes;
* :func:`open_as_of` — a read-only historical cursor
  (:class:`AsOfSnapshot`) mirroring the
  :class:`~repro.concurrency.cursor.SnapshotCursor` surface, the backing
  of ``AS OF`` queries (``MVQLSession.as_of`` / ``Cube.from_warehouse``);
* :func:`backup_journal` / :func:`restore_backup` — copy the journal,
  its archive segments and manifest into a self-verifying backup
  directory (staged, then renamed into place) and back.

Fault points: ``pitr.undo`` fires before each pre-image is applied,
``backup.copy`` before each file copy — both sides of the PITR crash
matrix (``tests/robustness/test_pitr.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.storage.database import Database
from repro.storage.errors import StorageError

from .errors import RecoveryError, WALError
from .recovery import (
    RecoveryReport,
    WarehouseRecoveryReport,
    _foreign_key_violations,
    recover_schema,
    recover_warehouse,
)
from .wal import (
    WriteAheadJournal,
    _segment_records,
    _write_manifest,
    manifest_path,
    read_chain,
    read_manifest,
)

__all__ = [
    "AsOfReport",
    "AsOfSnapshot",
    "BackupReport",
    "RecoverToReport",
    "backup_journal",
    "materialize_as_of",
    "materialize_schema_as_of",
    "open_as_of",
    "recover_to",
    "resolve_target",
    "restore_points",
]

BACKUP_METADATA = "backup.json"


# -- targets ----------------------------------------------------------------------


def _chain_of(
    wal: WriteAheadJournal | str | Path,
) -> tuple[list[dict[str, Any]], Path]:
    """The full (archives + live) record history and the journal path."""
    if isinstance(wal, WriteAheadJournal):
        return wal.chain_records(), wal.path
    return read_chain(wal), Path(wal)


def restore_points(wal: WriteAheadJournal | str | Path) -> dict[str, int]:
    """Every named restore point in the journal's history, ``name → lsn``.

    A re-used name resolves to its newest tag (the journal keeps all of
    them; rewinding past the newest re-exposes the older one).
    """
    records, _ = _chain_of(wal)
    return {
        record["name"]: record["lsn"]
        for record in records
        if record["kind"] == "restore_point"
    }


def resolve_target(
    wal: WriteAheadJournal | str | Path, target: int | str | None
) -> int:
    """Resolve an LSN, a restore-point name, or ``None`` (= head) to an LSN."""
    records, path = _chain_of(wal)
    return _resolve(records, path, target)


def _resolve(
    records: list[dict[str, Any]], path: Path, target: int | str | None
) -> int:
    if not records:
        raise RecoveryError(f"{path}: journal holds no records")
    first, last = records[0]["lsn"], records[-1]["lsn"]
    if target is None:
        return last
    if isinstance(target, bool) or not isinstance(target, (int, str)):
        raise RecoveryError(
            f"recovery target must be an LSN or a restore-point name, "
            f"not {target!r}"
        )
    if isinstance(target, int):
        if not first <= target <= last:
            raise RecoveryError(
                f"{path}: lsn {target} is outside the journal history "
                f"({first}..{last})"
            )
        return target
    points = {
        record["name"]: record["lsn"]
        for record in records
        if record["kind"] == "restore_point"
    }
    if target not in points:
        known = ", ".join(sorted(points)) if points else "none"
        raise RecoveryError(
            f"{path}: unknown restore point {target!r} (known: {known})"
        )
    return points[target]


def _commit_lsns(records: list[dict[str, Any]]) -> dict[int, int]:
    """Map each committed payload record (by chain index) to the LSN of
    its transaction's commit record — the instant its effects became
    durable, which is the clock undo replay rewinds against.  Resolution
    is positional, like :func:`~repro.robustness.recovery._resolve_commits`,
    so transaction-id reuse across compaction generations cannot attach a
    record to the wrong commit."""
    commit_of: dict[int, int] = {}
    open_records: dict[int, list[int]] = {}
    for i, record in enumerate(records):
        txid = record.get("txid")
        if not isinstance(txid, int):
            continue
        kind = record["kind"]
        if kind == "begin":
            open_records[txid] = []
        elif kind == "commit":
            for j in open_records.pop(txid, ()):
                commit_of[j] = record["lsn"]
        elif kind == "abort":
            open_records.pop(txid, None)
        else:
            open_records.setdefault(txid, []).append(i)
    return commit_of


# -- undo replay ------------------------------------------------------------------


@dataclass
class AsOfReport:
    """What one :func:`materialize_as_of` undo replay did."""

    target_lsn: int = 0
    head_lsn: int = 0
    inserts_undone: int = 0
    updates_undone: int = 0
    deletes_undone: int = 0
    tables_dropped: int = 0

    def to_text(self) -> str:
        """A human-readable summary (the CLI prints this)."""
        return "\n".join(
            [
                f"as-of target: lsn {self.target_lsn} (head: {self.head_lsn})",
                f"inserts undone: {self.inserts_undone}",
                f"updates undone: {self.updates_undone}",
                f"deletes undone: {self.deletes_undone}",
                f"tables dropped: {self.tables_dropped}",
            ]
        )


def materialize_as_of(
    wal: WriteAheadJournal | str | Path,
    target: int | str | None,
    *,
    verify: bool = True,
    fault_injector: Any = None,
) -> tuple[Database, AsOfReport]:
    """The warehouse as it stood at ``target``, by backwards undo replay.

    Recovers the current database from the live journal, then walks the
    committed write history in reverse LSN order, reversing every ``dml``
    record whose transaction committed *after* the target: an insert is
    removed from its slot, an update or delete restores its pre-image.
    Tables the target predates are dropped, and slots that exist only
    because of undone inserts are un-allocated — the result is
    slot-for-slot identical to replaying the journal forward to the
    target (the property the PITR tests assert), without re-reading the
    bulk of the history.

    ``target`` is an LSN, a restore-point name, or ``None`` for the head
    (which degenerates to plain recovery).  ``verify=True`` re-audits
    foreign keys over the historical rows.  The ``pitr.undo`` fault point
    fires before each pre-image is applied; the journal itself is never
    written, so a crash mid-undo loses nothing.
    """
    records, path = _chain_of(wal)
    target_lsn = _resolve(records, path, target)
    db, _ = recover_warehouse(wal, verify=False)
    report = AsOfReport(
        target_lsn=target_lsn,
        head_lsn=records[-1]["lsn"] if records else 0,
    )
    commit_of = _commit_lsns(records)

    undone_inserts: dict[str, set[int]] = {}
    for i in range(len(records) - 1, -1, -1):
        commit_lsn = commit_of.get(i)
        if commit_lsn is None or commit_lsn <= target_lsn:
            continue
        record = records[i]
        if record["kind"] != "dml":
            continue
        if fault_injector is not None:
            fault_injector.fire("pitr.undo")
        action = record["action"]
        try:
            table = db.table(record["table"])
            if action == "row.insert":
                table.remove_row(record["rid"])
                undone_inserts.setdefault(record["table"], set()).add(
                    record["rid"]
                )
                report.inserts_undone += 1
            elif action == "row.update":
                table.restore_row(record["rid"], record["pre"])
                report.updates_undone += 1
            elif action == "row.delete":
                table.restore_row(record["rid"], record["pre"])
                report.deletes_undone += 1
            else:
                raise RecoveryError(
                    f"cannot undo unknown dml action {action!r} "
                    f"at lsn {record['lsn']}"
                )
        except StorageError as exc:
            raise RecoveryError(
                f"undo of committed dml at lsn {record['lsn']} failed: {exc}"
            ) from exc

    # Reverse catalog ops: a table absent from the forward state at the
    # target — not in the dump of the last checkpoint at or below it, and
    # not (re-)cataloged by a transaction committed at or below it — did
    # not exist yet and is dropped whole.
    checkpoint_idx = None
    for i, record in enumerate(records):
        if record["kind"] == "checkpoint" and record["lsn"] <= target_lsn:
            checkpoint_idx = i
    if checkpoint_idx is None:
        raise RecoveryError(
            f"{path}: no checkpoint at or below lsn {target_lsn} to anchor "
            f"the as-of state"
        )
    dumped = records[checkpoint_idx].get("database")
    existing = {
        table_dump["schema"]["name"]
        for table_dump in (dumped or {}).get("tables", ())
    }
    for i, record in enumerate(records[checkpoint_idx + 1:], checkpoint_idx + 1):
        commit_lsn = commit_of.get(i)
        if (
            record["kind"] == "catalog"
            and commit_lsn is not None
            and commit_lsn <= target_lsn
        ):
            existing.add(record["table"]["name"])
    for name in reversed(db.table_names):
        if name not in existing:
            db.drop_table(name, check_references=False)
            report.tables_dropped += 1
    # Forward replay would have named the database after that checkpoint's
    # dump (or the default, when the checkpoint predates the warehouse).
    db.name = (dumped or {}).get("name", "warehouse")

    # Un-allocate trailing slots that exist only because of undone
    # inserts: inserts always append, so every slot past the forward
    # extent belongs to an undone insert and the trimmed tail is exactly
    # the contiguous run of them.
    for name, rids in undone_inserts.items():
        if name not in db:
            continue
        table = db.table(name)
        length = table.slot_count
        while length > 0 and (length - 1) in rids:
            length -= 1
        table.truncate_slots(length)

    if verify:
        violations = _foreign_key_violations(db)
        if violations:
            raise RecoveryError(
                "as-of warehouse violates foreign keys:\n"
                + "\n".join(violations)
            )
    return db, report


def materialize_schema_as_of(
    wal: WriteAheadJournal | str | Path,
    target: int | str | None,
    *,
    verify: bool = True,
):
    """The schema as it stood at ``target`` (forward replay over the full
    archive chain — operator records carry no invertible pre-images, and
    replay from the nearest checkpoint at or below the target is exact).
    Returns ``(schema, RecoveryReport)``."""
    records, path = _chain_of(wal)
    target_lsn = _resolve(records, path, target)
    return recover_schema(
        wal, verify=verify, up_to_lsn=target_lsn, use_archives=True
    )


# -- the historical cursor ---------------------------------------------------------


class AsOfSnapshot:
    """A read-only cursor over the state a journal described at one LSN.

    Mirrors the read surface of
    :class:`~repro.concurrency.cursor.SnapshotCursor` — ``mvft``,
    :meth:`query_engine`, :meth:`mvql_session`, :meth:`cube`,
    :meth:`warehouse` — but is pinned to a *historical* instant
    materialized from the journal rather than a live published version,
    and additionally exposes the historical relational
    :attr:`database`.  Everything is materialized up front; the snapshot
    holds no file handles and needs no ``close``.
    """

    def __init__(self, lsn: int, schema: Any, database: Database) -> None:
        self.lsn = lsn
        self.schema = schema
        self.database = database
        self._mvft: Any = None
        self._engine: Any = None

    @property
    def version(self) -> int:
        """The pinned LSN (the concurrency tier's version clock)."""
        return self.lsn

    @property
    def mvft(self):
        """The MultiVersion fact table of the historical schema (cached).

        Stamped with the pinned LSN so versioned result-cache entries
        computed by one AS-OF reader serve other readers of the same
        target (the historical state at an LSN is immutable by
        definition).
        """
        if self._mvft is None:
            mvft = self.schema.multiversion_facts()
            mvft.snapshot_version = self.lsn
            self._mvft = mvft
        return self._mvft

    def query_engine(self):
        """A query engine over the historical MVFT (cached)."""
        from repro.core.query import QueryEngine

        if self._engine is None:
            self._engine = QueryEngine(self.mvft)
        return self._engine

    def mvql_session(self, **kwargs: Any):
        """An MVQL session bound to the historical instant."""
        from repro.mvql.session import MVQLSession

        return MVQLSession(self.mvft, **kwargs)

    def cube(self, *, materialize: bool = False, **kwargs: Any):
        """An OLAP cube bound to the historical instant."""
        from repro.olap.cube import Cube

        return Cube(self.mvft, materialize=materialize, **kwargs)

    def warehouse(self, **build_kwargs: Any):
        """A relational multiversion warehouse built from the historical
        instant."""
        from repro.warehouse.multiversion_dw import MultiVersionDataWarehouse

        return MultiVersionDataWarehouse.build(self.mvft, **build_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsOfSnapshot(lsn={self.lsn})"


def open_as_of(
    wal: WriteAheadJournal | str | Path,
    target: int | str | None = None,
    *,
    verify: bool = True,
    fault_injector: Any = None,
) -> AsOfSnapshot:
    """Open a historical cursor: schema (forward replay) plus warehouse
    (undo replay) at ``target``, wrapped as an :class:`AsOfSnapshot`."""
    records, path = _chain_of(wal)
    target_lsn = _resolve(records, path, target)
    schema, _ = materialize_schema_as_of(wal, target_lsn, verify=verify)
    database, _ = materialize_as_of(
        wal, target_lsn, verify=verify, fault_injector=fault_injector
    )
    return AsOfSnapshot(target_lsn, schema, database)


# -- rewinding the journal ---------------------------------------------------------


@dataclass
class RecoverToReport:
    """What one :func:`recover_to` rewind did."""

    target_lsn: int = 0
    restore_point: str | None = None
    checkpoint_lsn: int = 0
    records_dropped: int = 0
    segments_dropped: int = 0
    segments_trimmed: int = 0
    schema: Any = field(default=None, repr=False, compare=False)
    database: Database | None = field(default=None, repr=False, compare=False)
    schema_report: RecoveryReport | None = field(
        default=None, repr=False, compare=False
    )
    warehouse_report: WarehouseRecoveryReport | None = field(
        default=None, repr=False, compare=False
    )

    def to_text(self) -> str:
        """A human-readable summary (the CLI prints this)."""
        lines = [f"recovered to: lsn {self.target_lsn}"]
        if self.restore_point is not None:
            lines[0] += f" (restore point {self.restore_point!r})"
        lines += [
            f"replay checkpoint: lsn {self.checkpoint_lsn}",
            f"forward-history records dropped: {self.records_dropped}",
            f"archive segments dropped: {self.segments_dropped}",
            f"archive segments trimmed: {self.segments_trimmed}",
        ]
        return "\n".join(lines)


def recover_to(
    wal: WriteAheadJournal | str | Path,
    target: int | str,
    *,
    verify: bool = True,
    fault_injector: Any = None,
) -> RecoverToReport:
    """Rewind the journal itself to ``target``, truncating forward history.

    The new live journal keeps the records from the last checkpoint at or
    below the target through the target; everything after the target is
    dropped *everywhere* — the live file is rewritten atomically and
    archive segments that only held forward (or now-live) history are
    deleted or trimmed, manifest included.  The rewound state is
    validated by full replay (schema and warehouse, honouring ``verify``)
    *before* the live journal is replaced, so a rewind that would not
    recover refuses to destroy anything.  The recovered tiers ride along
    on the report (``report.schema`` / ``report.database``).

    Accepts a path, or a :class:`WriteAheadJournal` that has been
    ``close()``-d — rewriting a journal under an open append handle would
    silently divorce the handle from the file.
    """
    if isinstance(wal, WriteAheadJournal):
        if not wal._file.closed:
            raise WALError(
                f"{wal.path}: close the journal before recover_to — an open "
                f"append handle would keep writing to the replaced file"
            )
        path = wal.path
    else:
        path = Path(wal)
    chain = read_chain(path)
    target_lsn = _resolve(chain, path, target)
    checkpoint_idx = None
    for i, record in enumerate(chain):
        if record["kind"] == "checkpoint" and record["lsn"] <= target_lsn:
            checkpoint_idx = i
    if checkpoint_idx is None:
        raise RecoveryError(
            f"{path}: no checkpoint at or below lsn {target_lsn} to recover "
            f"from"
        )
    kept = [r for r in chain[checkpoint_idx:] if r["lsn"] <= target_lsn]
    report = RecoverToReport(
        target_lsn=target_lsn,
        restore_point=target if isinstance(target, str) else None,
        checkpoint_lsn=chain[checkpoint_idx]["lsn"],
        records_dropped=sum(1 for r in chain if r["lsn"] > target_lsn),
    )

    # Validate-then-swap: write the rewound journal to a side file, prove
    # it replays, and only then let it replace the live one.
    tmp = path.with_name(path.name + ".rewind")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        report.schema, report.schema_report = recover_schema(tmp, verify=verify)
        report.database, report.warehouse_report = recover_warehouse(
            tmp, verify=verify
        )
        if fault_injector is not None:
            fault_injector.fire("wal.truncate")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise

    # Archives keep only records below the new live journal's first LSN;
    # segments of pure forward/now-live history go, the boundary segment
    # is trimmed.  Segments are LSN-ordered, so only a suffix is touched
    # and the surviving sequence numbers stay contiguous.
    keep_from = kept[0]["lsn"]
    manifest = read_manifest(path)
    surviving: list[dict[str, Any]] = []
    changed = False
    for segment in manifest["segments"]:
        if segment["last_lsn"] < keep_from:
            surviving.append(segment)
            continue
        changed = True
        segment_path = path.with_name(segment["name"])
        if segment["first_lsn"] >= keep_from:
            try:
                os.remove(segment_path)
            except OSError:
                pass
            report.segments_dropped += 1
            continue
        # The boundary segment: keep its pre-rewind prefix, drop the rest.
        trimmed = [
            r for r in _segment_records(path, segment) if r["lsn"] < keep_from
        ]
        data = "".join(
            json.dumps(r, separators=(",", ":")) + "\n" for r in trimmed
        ).encode("utf-8")
        seg_tmp = segment_path.with_name(segment_path.name + ".tmp")
        with open(seg_tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(seg_tmp, segment_path)
        surviving.append(
            {
                **segment,
                "last_lsn": trimmed[-1]["lsn"],
                "records": len(trimmed),
                "crc": zlib.crc32(data),
            }
        )
        report.segments_trimmed += 1
    if changed:
        manifest["segments"] = surviving
        if surviving:
            _write_manifest(path, manifest)
        else:
            try:
                os.remove(manifest_path(path))
            except OSError:
                pass
    return report


# -- backup and restore ------------------------------------------------------------


@dataclass
class BackupReport:
    """What one :func:`backup_journal` / :func:`restore_backup` run did."""

    action: str = "backup"
    journal: str = ""
    destination: str = ""
    files: int = 0
    bytes: int = 0

    def to_text(self) -> str:
        """A human-readable summary (the CLI prints this)."""
        return (
            f"{self.action}: {self.journal} -> {self.destination} "
            f"({self.files} files, {self.bytes} bytes)"
        )


def _backup_files(path: Path) -> list[Path]:
    """Every file a complete backup of ``path`` must carry: the live
    journal, its archive manifest (when present) and every segment the
    manifest names (a missing one fails the backup — a backup that cannot
    rewind is not a backup)."""
    files = [path]
    manifest = read_manifest(path)
    if manifest["segments"]:
        files.append(manifest_path(path))
    for segment in manifest["segments"]:
        segment_path = path.with_name(segment["name"])
        if not segment_path.exists():
            raise WALError(
                f"{segment_path}: archive segment named by the manifest is "
                f"missing; refusing to take an incomplete backup"
            )
        files.append(segment_path)
    return files


def backup_journal(
    wal: WriteAheadJournal | str | Path,
    destination: str | Path,
    *,
    fault_injector: Any = None,
) -> BackupReport:
    """Copy the journal, manifest and archive segments into a backup
    directory — atomically, by staging into ``<destination>.partial`` and
    renaming once every file (and the self-describing ``backup.json``
    catalog of names, sizes and CRC32s) is in place.  A crash mid-copy
    (the ``backup.copy`` fault point) leaves only the stage directory,
    never a half-written backup under the destination name.
    """
    path = wal.path if isinstance(wal, WriteAheadJournal) else Path(wal)
    if not path.exists():
        raise WALError(f"{path}: no journal to back up")
    destination = Path(destination)
    if destination.exists():
        raise WALError(f"{destination}: backup destination already exists")
    files = _backup_files(path)
    stage = destination.with_name(destination.name + ".partial")
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir(parents=True)
    entries: list[dict[str, Any]] = []
    try:
        for source in files:
            if fault_injector is not None:
                fault_injector.fire("backup.copy")
            data = source.read_bytes()
            (stage / source.name).write_bytes(data)
            entries.append(
                {"name": source.name, "bytes": len(data), "crc": zlib.crc32(data)}
            )
        metadata = {
            "format": 1,
            "journal": path.name,
            "files": entries,
        }
        (stage / BACKUP_METADATA).write_text(
            json.dumps(metadata, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(stage, destination)
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    return BackupReport(
        action="backup",
        journal=str(path),
        destination=str(destination),
        files=len(entries),
        bytes=sum(e["bytes"] for e in entries),
    )


def restore_backup(
    backup: str | Path,
    wal_path: str | Path,
    *,
    fault_injector: Any = None,
) -> BackupReport:
    """Reinstate a backup as the journal at ``wal_path``.

    Every file is CRC-verified against ``backup.json`` *before* anything
    is written (a tampered backup is refused whole), file names are
    re-rooted onto the destination journal's name (manifest contents
    included), and the live journal file is written last — a crash
    mid-restore (the ``backup.copy`` fault point) leaves no journal file,
    so a retry starts clean and simply overwrites the stray segments.
    """
    backup = Path(backup)
    metadata_path = backup / BACKUP_METADATA
    if not metadata_path.exists():
        raise WALError(f"{backup}: not a journal backup (no {BACKUP_METADATA})")
    try:
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
    except ValueError:
        raise WALError(f"{metadata_path}: backup catalog is not valid JSON") from None
    original = metadata.get("journal")
    entries = metadata.get("files", [])
    if not isinstance(original, str) or not isinstance(entries, list):
        raise WALError(f"{metadata_path}: backup catalog is malformed")
    wal_path = Path(wal_path)
    if wal_path.exists():
        raise WALError(
            f"{wal_path}: refusing to overwrite an existing journal; "
            f"remove it (or restore elsewhere) first"
        )

    contents: dict[str, bytes] = {}
    for entry in entries:
        source = backup / entry["name"]
        if not source.exists():
            raise WALError(f"{source}: file named by the backup catalog is missing")
        data = source.read_bytes()
        if zlib.crc32(data) != entry.get("crc"):
            raise WALError(
                f"{source}: backup file does not match its catalog checksum"
            )
        if not entry["name"].startswith(original):
            raise WALError(
                f"{source}: backup file does not belong to journal {original!r}"
            )
        contents[entry["name"]] = data

    def renamed(name: str) -> str:
        return wal_path.name + name[len(original):]

    manifest_name = original + ".manifest.json"
    if manifest_name in contents:
        manifest = json.loads(contents[manifest_name].decode("utf-8"))
        manifest["journal"] = wal_path.name
        for segment in manifest.get("segments", ()):
            segment["name"] = renamed(segment["name"])
        contents[manifest_name] = json.dumps(
            manifest, separators=(",", ":")
        ).encode("utf-8")

    # Segments and manifest first, the journal itself last: its presence
    # is what marks the restore complete.
    ordered = sorted(contents, key=lambda name: name == original)
    written = 0
    for name in ordered:
        if fault_injector is not None:
            fault_injector.fire("backup.copy")
        target = wal_path.with_name(renamed(name))
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(contents[name])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        written += len(contents[name])
    return BackupReport(
        action="restore",
        journal=str(backup),
        destination=str(wal_path),
        files=len(contents),
        bytes=written,
    )
