"""Exception hierarchy of the robustness subsystem.

Everything derives from :class:`RobustnessError`, itself a
:class:`~repro.core.errors.ReproError`, so applications keep a single
catch-all for the whole library.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "RobustnessError",
    "TransactionError",
    "WALError",
    "RecoveryError",
    "InjectedFault",
    "RetryExhaustedError",
]


class RobustnessError(ReproError):
    """Base class of every robustness-subsystem error."""


class TransactionError(RobustnessError):
    """Raised on transaction protocol misuse — operators applied outside a
    transaction, nested ``begin``, commit/rollback without a transaction."""


class WALError(RobustnessError):
    """Raised on an unusable write-ahead journal (corrupt records other
    than a torn final line, unknown record kinds, bad format version)."""


class RecoveryError(RobustnessError):
    """Raised when crash recovery cannot rebuild a schema from the journal
    (no checkpoint, replay of a committed operator fails)."""


class InjectedFault(RobustnessError):
    """The exception a tripped fault point raises.

    Deliberately *not* derived from any domain error so production code
    paths cannot accidentally swallow it as an expected failure.
    """

    def __init__(self, point: str, count: int) -> None:
        super().__init__(f"injected fault at {point!r} (call #{count})")
        self.point = point
        self.count = count


class RetryExhaustedError(RobustnessError):
    """Raised when a retry policy runs out of attempts; ``__cause__`` holds
    the last underlying exception."""

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"operation failed after {attempts} attempts: "
            f"{type(last).__name__}: {last}"
        )
        self.attempts = attempts
        self.last = last
