"""Replay-based crash recovery.

Recovery rebuilds a schema from the write-ahead journal alone:

1. find the most recent ``checkpoint`` record and rebuild the schema
   snapshot it embeds;
2. scan the records after it, noting which transaction ids reached a
   ``commit`` record — those are the durable transactions;
3. replay the ``op`` / ``fact`` records of the committed transactions, in
   journal order, through a fresh :class:`SchemaEditor`;
4. (by default) run the :class:`~repro.robustness.integrity.IntegrityChecker`
   on the result and refuse to hand back a schema that violates the
   paper's invariants.

Records of transactions that never committed — a crash mid-transaction, an
explicit abort, a torn tail — are discarded: the recovered schema sits
exactly at the last committed transaction boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.chronology import NOW
from repro.core.errors import ReproError
from repro.core.operators import SchemaEditor
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.serialization import schema_from_dict

from .errors import RecoveryError
from .integrity import IntegrityChecker
from .wal import WriteAheadJournal, mapping_relationship_from_json

__all__ = ["RecoveryReport", "recover_schema", "replay_operator"]


@dataclass
class RecoveryReport:
    """What one recovery run did."""

    checkpoint_lsn: int = 0
    last_committed_txid: int | None = None
    transactions_replayed: int = 0
    transactions_discarded: int = 0
    operators_replayed: int = 0
    facts_replayed: int = 0
    integrity_violations: int = 0

    def to_text(self) -> str:
        """A human-readable summary (the CLI prints this)."""
        lines = [
            f"checkpoint: lsn {self.checkpoint_lsn}",
            f"transactions replayed: {self.transactions_replayed}",
            f"transactions discarded (uncommitted): {self.transactions_discarded}",
            f"operators replayed: {self.operators_replayed}",
            f"facts replayed: {self.facts_replayed}",
            f"integrity violations: {self.integrity_violations}",
        ]
        if self.last_committed_txid is not None:
            lines.insert(1, f"last committed transaction: {self.last_committed_txid}")
        return "\n".join(lines)


def replay_operator(editor: SchemaEditor, record: dict[str, Any]) -> None:
    """Re-apply one journaled basic operator through ``editor``."""
    op = record["op"]
    args = record["args"]
    if op == "Insert":
        editor.insert(
            args["did"],
            args["mvid"],
            args["name"],
            args["ti"],
            NOW if args["tf"] is None else args["tf"],
            attributes=args.get("attributes") or {},
            level=args.get("level"),
            parents=args.get("parents", ()),
            children=args.get("children", ()),
        )
    elif op == "Exclude":
        editor.exclude(args["did"], args["mvid"], args["tf"])
    elif op == "Associate":
        editor.associate(
            mapping_relationship_from_json(args["rel"]),
            allow_non_leaf=args.get("allow_non_leaf", False),
        )
    elif op == "Reclassify":
        editor.reclassify(
            args["did"],
            args["mvid"],
            args["ti"],
            NOW if args["tf"] is None else args["tf"],
            old_parents=args.get("old_parents", ()),
            new_parents=args.get("new_parents", ()),
        )
    else:
        raise RecoveryError(f"cannot replay unknown operator {op!r}")


def recover_schema(
    wal: WriteAheadJournal | str | Path, *, verify: bool = True
) -> tuple[TemporalMultidimensionalSchema, RecoveryReport]:
    """Rebuild the schema a journal describes, up to the last commit.

    ``verify=True`` (the default) runs the integrity checker on the
    recovered schema and raises :class:`RecoveryError` when any paper
    invariant is violated — a recovery that would hand back a broken
    schema is treated as failed.
    """
    if isinstance(wal, WriteAheadJournal):
        journal = wal
        records = journal.records()
    else:
        # Recovery is read-only: never create (or hold open for append) a
        # journal that is merely being inspected.
        if not Path(wal).exists():
            raise RecoveryError(
                f"{wal}: journal holds no checkpoint to recover from"
            )
        with WriteAheadJournal(wal) as journal:
            records = journal.records()
    checkpoint_idx: int | None = None
    for i, record in enumerate(records):
        if record["kind"] == "checkpoint":
            checkpoint_idx = i
    if checkpoint_idx is None:
        raise RecoveryError(
            f"{journal.path}: journal holds no checkpoint to recover from"
        )
    checkpoint = records[checkpoint_idx]
    try:
        schema = schema_from_dict(checkpoint["schema"])
    except ReproError as exc:
        raise RecoveryError(f"checkpoint snapshot does not rebuild: {exc}") from exc

    tail = records[checkpoint_idx + 1:]
    committed = {r["txid"] for r in tail if r["kind"] == "commit"}
    seen = {r["txid"] for r in tail if r["kind"] == "begin"}

    report = RecoveryReport(
        checkpoint_lsn=checkpoint["lsn"],
        last_committed_txid=max(committed) if committed else None,
        transactions_replayed=len(committed & seen),
        transactions_discarded=len(seen - committed),
    )

    editor = SchemaEditor(schema)
    for record in tail:
        if record.get("txid") not in committed:
            continue
        if record["kind"] == "op":
            try:
                replay_operator(editor, record)
            except ReproError as exc:
                raise RecoveryError(
                    f"replay of committed operator at lsn {record['lsn']} "
                    f"failed: {exc}"
                ) from exc
            report.operators_replayed += 1
        elif record["kind"] == "fact":
            try:
                schema.add_fact(record["coordinates"], record["t"], record["values"])
            except ReproError as exc:
                raise RecoveryError(
                    f"replay of committed fact at lsn {record['lsn']} failed: {exc}"
                ) from exc
            report.facts_replayed += 1

    if verify:
        integrity = IntegrityChecker(schema).run()
        report.integrity_violations = len(integrity.violations)
        if not integrity.ok:
            raise RecoveryError(
                "recovered schema violates invariants:\n" + integrity.to_text()
            )
    return schema, report
