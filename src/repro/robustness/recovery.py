"""Replay-based crash recovery.

Recovery rebuilds state from the write-ahead journal alone:

1. find the most recent ``checkpoint`` record and rebuild the snapshot it
   embeds (the schema, and — for :func:`recover_warehouse` — the embedded
   relational database dump);
2. scan the records after it, noting which transaction ids reached a
   ``commit`` record — those are the durable transactions;
3. replay the committed transactions' records in journal order:
   ``op`` / ``fact`` through a fresh :class:`SchemaEditor`
   (:func:`recover_schema`), ``catalog`` / ``dml`` onto a rebuilt
   :class:`~repro.storage.database.Database` (:func:`recover_warehouse`);
4. (by default) validate the result — the paper's invariants for the
   schema, foreign-key consistency for the warehouse — and refuse to hand
   back broken state.

Records of transactions that never committed — a crash mid-transaction, an
explicit abort, a torn tail — are discarded: the recovered state sits
exactly at the last committed transaction boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.chronology import NOW
from repro.core.errors import ReproError
from repro.core.operators import SchemaEditor
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.serialization import schema_from_dict
from repro.storage.database import Database, database_from_dict
from repro.storage.errors import StorageError
from repro.storage.schema import table_schema_from_dict, table_schema_to_dict

from .errors import RecoveryError
from .integrity import IntegrityChecker
from .wal import WriteAheadJournal, mapping_relationship_from_json, read_chain

__all__ = [
    "RecoveryReport",
    "WarehouseRecoveryReport",
    "recover_schema",
    "recover_warehouse",
    "replay_operator",
]


@dataclass
class RecoveryReport:
    """What one recovery run did."""

    checkpoint_lsn: int = 0
    last_committed_txid: int | None = None
    transactions_replayed: int = 0
    transactions_discarded: int = 0
    operators_replayed: int = 0
    facts_replayed: int = 0
    integrity_violations: int = 0
    warehouse_records_skipped: int = 0

    def to_text(self) -> str:
        """A human-readable summary (the CLI prints this)."""
        lines = [
            f"checkpoint: lsn {self.checkpoint_lsn}",
            f"transactions replayed: {self.transactions_replayed}",
            f"transactions discarded (uncommitted): {self.transactions_discarded}",
            f"operators replayed: {self.operators_replayed}",
            f"facts replayed: {self.facts_replayed}",
            f"integrity violations: {self.integrity_violations}",
        ]
        if self.warehouse_records_skipped:
            lines.append(
                f"warehouse records skipped (use recover_warehouse): "
                f"{self.warehouse_records_skipped}"
            )
        if self.last_committed_txid is not None:
            lines.insert(1, f"last committed transaction: {self.last_committed_txid}")
        return "\n".join(lines)


@dataclass
class WarehouseRecoveryReport:
    """What one warehouse (row-level) recovery run did."""

    checkpoint_lsn: int = 0
    last_committed_txid: int | None = None
    transactions_replayed: int = 0
    transactions_discarded: int = 0
    tables_restored: int = 0
    tables_created: int = 0
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0

    def to_text(self) -> str:
        """A human-readable summary (the CLI prints this)."""
        lines = [
            f"checkpoint: lsn {self.checkpoint_lsn}",
            f"transactions replayed: {self.transactions_replayed}",
            f"transactions discarded (uncommitted): {self.transactions_discarded}",
            f"tables restored from checkpoint: {self.tables_restored}",
            f"tables created from catalog records: {self.tables_created}",
            f"rows inserted: {self.rows_inserted}",
            f"rows updated: {self.rows_updated}",
            f"rows deleted: {self.rows_deleted}",
        ]
        if self.last_committed_txid is not None:
            lines.insert(1, f"last committed transaction: {self.last_committed_txid}")
        return "\n".join(lines)


def replay_operator(editor: SchemaEditor, record: dict[str, Any]) -> None:
    """Re-apply one journaled basic operator through ``editor``."""
    op = record["op"]
    args = record["args"]
    if op == "Insert":
        editor.insert(
            args["did"],
            args["mvid"],
            args["name"],
            args["ti"],
            NOW if args["tf"] is None else args["tf"],
            attributes=args.get("attributes") or {},
            level=args.get("level"),
            parents=args.get("parents", ()),
            children=args.get("children", ()),
        )
    elif op == "Exclude":
        editor.exclude(args["did"], args["mvid"], args["tf"])
    elif op == "Associate":
        editor.associate(
            mapping_relationship_from_json(args["rel"]),
            allow_non_leaf=args.get("allow_non_leaf", False),
        )
    elif op == "Reclassify":
        editor.reclassify(
            args["did"],
            args["mvid"],
            args["ti"],
            NOW if args["tf"] is None else args["tf"],
            old_parents=args.get("old_parents", ()),
            new_parents=args.get("new_parents", ()),
        )
    else:
        raise RecoveryError(f"cannot replay unknown operator {op!r}")


def _journal_records(
    wal: WriteAheadJournal | str | Path, *, use_archives: bool = False
) -> tuple[list[dict[str, Any]], Path]:
    """Read every durable record of a journal (plus its path, for errors).

    ``use_archives=True`` reads the full chain — compacted archive
    segments first, then the live journal — so replay can reach LSNs the
    live journal no longer holds (point-in-time recovery).
    """
    if isinstance(wal, WriteAheadJournal):
        records = wal.chain_records() if use_archives else wal.records()
        return records, wal.path
    # Recovery is read-only: never create (or hold open for append) a
    # journal that is merely being inspected.
    if not Path(wal).exists():
        raise RecoveryError(f"{wal}: journal holds no checkpoint to recover from")
    if use_archives:
        return read_chain(wal), Path(wal)
    with WriteAheadJournal(wal) as journal:
        return journal.records(), journal.path


def _resolve_commits(
    tail: list[dict[str, Any]],
) -> tuple[set[int], int, int, int | None]:
    """Decide positionally which tail records belong to committed
    transactions.

    Journal generations separated by compaction can reuse transaction
    ids (the id counter restarts from what the live journal still shows),
    so membership cannot be a global txid set over an archive chain: a
    ``commit`` record commits exactly the records its transaction
    accumulated since its most recent ``begin`` — never the records of an
    earlier same-id instance.  Returns ``(committed tail indices,
    transactions replayed, transactions discarded, last committed txid)``.
    """
    committed_idx: set[int] = set()
    open_records: dict[int, list[int]] = {}
    begun: set[int] = set()
    replayed = discarded = 0
    last_committed_txid: int | None = None
    for i, record in enumerate(tail):
        txid = record.get("txid")
        if not isinstance(txid, int):
            continue  # checkpoints and restore points carry no txid
        kind = record["kind"]
        if kind == "begin":
            if txid in begun:
                discarded += 1  # a same-id instance that never committed
            open_records[txid] = []
            begun.add(txid)
        elif kind == "commit":
            committed_idx.update(open_records.pop(txid, ()))
            if txid in begun:
                begun.discard(txid)
                replayed += 1
            last_committed_txid = txid
        elif kind == "abort":
            open_records.pop(txid, None)
            if txid in begun:
                begun.discard(txid)
                discarded += 1
        else:
            # A payload record: tentatively owned by the open instance of
            # its transaction (one may exist without a tail ``begin`` when
            # the checkpoint landed mid-transaction).
            open_records.setdefault(txid, []).append(i)
    discarded += len(begun)
    return committed_idx, replayed, discarded, last_committed_txid


def _last_checkpoint(
    records: list[dict[str, Any]], path: Path
) -> tuple[dict[str, Any], int]:
    """The most recent ``checkpoint`` record and its index."""
    checkpoint_idx: int | None = None
    for i, record in enumerate(records):
        if record["kind"] == "checkpoint":
            checkpoint_idx = i
    if checkpoint_idx is None:
        raise RecoveryError(f"{path}: journal holds no checkpoint to recover from")
    return records[checkpoint_idx], checkpoint_idx


def recover_schema(
    wal: WriteAheadJournal | str | Path,
    *,
    verify: bool = True,
    up_to_lsn: int | None = None,
    use_archives: bool = False,
) -> tuple[TemporalMultidimensionalSchema, RecoveryReport]:
    """Rebuild the schema a journal describes, up to the last commit.

    ``verify=True`` (the default) runs the integrity checker on the
    recovered schema and raises :class:`RecoveryError` when any paper
    invariant is violated — a recovery that would hand back a broken
    schema is treated as failed.  Relational ``catalog`` / ``dml`` records
    belong to the warehouse tier; they are counted (``report.
    warehouse_records_skipped``) and left to :func:`recover_warehouse`.

    ``up_to_lsn`` stops replay at a historical LSN (only transactions
    whose commit record lies at or below it count as committed) and
    ``use_archives`` replays across compacted archive segments — together
    they are the forward half of point-in-time recovery
    (:mod:`repro.robustness.pitr`).
    """
    records, path = _journal_records(wal, use_archives=use_archives)
    if up_to_lsn is not None:
        records = [r for r in records if r["lsn"] <= up_to_lsn]
    checkpoint, checkpoint_idx = _last_checkpoint(records, path)
    try:
        schema = schema_from_dict(checkpoint["schema"])
    except ReproError as exc:
        raise RecoveryError(f"checkpoint snapshot does not rebuild: {exc}") from exc

    tail = records[checkpoint_idx + 1:]
    committed_idx, replayed, discarded, last_txid = _resolve_commits(tail)

    report = RecoveryReport(
        checkpoint_lsn=checkpoint["lsn"],
        last_committed_txid=last_txid,
        transactions_replayed=replayed,
        transactions_discarded=discarded,
    )

    editor = SchemaEditor(schema)
    for i, record in enumerate(tail):
        if i not in committed_idx:
            continue
        if record["kind"] == "op":
            try:
                replay_operator(editor, record)
            except ReproError as exc:
                raise RecoveryError(
                    f"replay of committed operator at lsn {record['lsn']} "
                    f"failed: {exc}"
                ) from exc
            report.operators_replayed += 1
        elif record["kind"] == "fact":
            try:
                schema.add_fact(
                    record["coordinates"],
                    record["t"],
                    record["values"],
                    source=record.get("source"),
                )
            except ReproError as exc:
                raise RecoveryError(
                    f"replay of committed fact at lsn {record['lsn']} failed: {exc}"
                ) from exc
            report.facts_replayed += 1
        elif record["kind"] in ("catalog", "dml"):
            report.warehouse_records_skipped += 1

    if verify:
        integrity = IntegrityChecker(schema).run()
        report.integrity_violations = len(integrity.violations)
        if not integrity.ok:
            raise RecoveryError(
                "recovered schema violates invariants:\n" + integrity.to_text()
            )
    return schema, report


def _replay_catalog(
    db: Database, record: dict[str, Any], report: WarehouseRecoveryReport
) -> None:
    """Re-apply one committed ``catalog`` record (idempotently)."""
    payload = record["table"]
    name = payload["name"]
    if name in db.table_names:
        existing = table_schema_to_dict(db.table(name).schema)
        if existing != payload:
            raise RecoveryError(
                f"catalog record at lsn {record['lsn']} disagrees with the "
                f"recovered schema of table {name!r}"
            )
        return
    schema = table_schema_from_dict(payload)
    table = db.create_table(
        name,
        schema.columns,
        primary_key=schema.primary_key,
        foreign_keys=schema.foreign_keys,
    )
    for spec in record.get("indexes", ()):
        table.create_index(tuple(spec["columns"]), unique=bool(spec.get("unique")))
    report.tables_created += 1


def _replay_dml(
    db: Database, record: dict[str, Any], report: WarehouseRecoveryReport
) -> None:
    """Re-apply one committed ``dml`` record at its journaled row id."""
    action = record["action"]
    try:
        table = db.table(record["table"])
        if action == "row.insert":
            table.restore_row(record["rid"], record["row"])
            report.rows_inserted += 1
        elif action == "row.update":
            table.restore_row(record["rid"], record["row"])
            report.rows_updated += 1
        elif action == "row.delete":
            table.remove_row(record["rid"])
            report.rows_deleted += 1
        else:
            raise RecoveryError(
                f"cannot replay unknown dml action {action!r} "
                f"at lsn {record['lsn']}"
            )
    except StorageError as exc:
        raise RecoveryError(
            f"replay of committed dml at lsn {record['lsn']} failed: {exc}"
        ) from exc


def recover_warehouse(
    wal: WriteAheadJournal | str | Path,
    *,
    verify: bool = True,
    up_to_lsn: int | None = None,
    use_archives: bool = False,
) -> tuple[Database, WarehouseRecoveryReport]:
    """Rebuild the relational database a journal describes, up to the last
    commit.

    The checkpoint's embedded database dump seeds the state; committed
    ``catalog`` records recreate tables the dump predates, and committed
    ``dml`` records replay row writes at their journaled row ids (so the
    recovered tables are slot-for-slot identical to the pre-crash ones).
    ``verify=True`` re-audits every foreign key over the replayed rows and
    raises :class:`RecoveryError` when a reference dangles.

    ``up_to_lsn`` / ``use_archives`` replay to a historical LSN across
    archive segments — see :func:`recover_schema`.
    """
    records, path = _journal_records(wal, use_archives=use_archives)
    if up_to_lsn is not None:
        records = [r for r in records if r["lsn"] <= up_to_lsn]
    checkpoint, checkpoint_idx = _last_checkpoint(records, path)
    dumped = checkpoint.get("database")
    try:
        db = database_from_dict(dumped) if dumped is not None else Database()
    except (StorageError, KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(
            f"checkpoint database dump does not rebuild: {exc}"
        ) from exc

    tail = records[checkpoint_idx + 1:]
    committed_idx, replayed, discarded, last_txid = _resolve_commits(tail)

    report = WarehouseRecoveryReport(
        checkpoint_lsn=checkpoint["lsn"],
        last_committed_txid=last_txid,
        transactions_replayed=replayed,
        transactions_discarded=discarded,
        tables_restored=len(db.table_names),
    )

    for i, record in enumerate(tail):
        if i not in committed_idx:
            continue
        if record["kind"] == "catalog":
            _replay_catalog(db, record, report)
        elif record["kind"] == "dml":
            _replay_dml(db, record, report)

    if verify:
        violations = _foreign_key_violations(db)
        if violations:
            raise RecoveryError(
                "recovered warehouse violates foreign keys:\n"
                + "\n".join(violations)
            )
    return db, report


def _foreign_key_violations(db: Database) -> list[str]:
    """Dangling foreign-key references across every row of ``db``."""
    violations: list[str] = []
    for name in db.table_names:
        table = db.table(name)
        for fk in table.schema.foreign_keys:
            try:
                parent = db.table(fk.parent_table)
            except StorageError:
                violations.append(
                    f"{name}: foreign key references missing table "
                    f"{fk.parent_table!r}"
                )
                continue
            parent_keys = {
                tuple(row[c] for c in fk.parent_columns) for row in parent.rows()
            }
            for row in table.rows():
                key = tuple(row[c] for c in fk.columns)
                if any(v is None for v in key):
                    continue
                if key not in parent_keys:
                    violations.append(
                        f"{name}: {dict(zip(fk.columns, key))} has no match "
                        f"in {fk.parent_table!r}"
                    )
    return violations
