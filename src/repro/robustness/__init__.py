"""Operational hardening for the evolution engine.

The paper's §3.2 operators are applied in multi-operator sequences (Table
11); this package makes those sequences safe to run in production:

* :mod:`~repro.robustness.transactions` — ``begin``/``commit``/``rollback``
  over :class:`~repro.core.operations.EvolutionManager` and
  :class:`~repro.storage.database.Database`, with an inverse-operator undo
  log (all-or-nothing compound operations);
* :mod:`~repro.robustness.wal` — a persistent JSONL write-ahead journal;
* :mod:`~repro.robustness.recovery` — replay-based crash recovery to the
  last committed transaction boundary;
* :mod:`~repro.robustness.integrity` — on-demand validation of the paper's
  invariants (Definitions 2, 3, 5, 7);
* :mod:`~repro.robustness.faults` — deterministic, seedable fault
  injection at named points;
* :mod:`~repro.robustness.retry` — exponential-backoff retries for flaky
  operational sources.

See ``docs/robustness.md`` for the transaction API, the WAL format, the
fault-point catalog and a recovery walkthrough.
"""

from .errors import (
    InjectedFault,
    RecoveryError,
    RetryExhaustedError,
    RobustnessError,
    TransactionError,
    WALError,
)
from .faults import FAULT_POINTS, FaultInjector, FaultPlan
from .integrity import IntegrityChecker, IntegrityReport, Violation
from .pitr import (
    AsOfReport,
    AsOfSnapshot,
    BackupReport,
    RecoverToReport,
    backup_journal,
    materialize_as_of,
    materialize_schema_as_of,
    open_as_of,
    recover_to,
    resolve_target,
    restore_backup,
    restore_points,
)
from .recovery import (
    RecoveryReport,
    WarehouseRecoveryReport,
    recover_schema,
    recover_warehouse,
    replay_operator,
)
from .retry import RetryPolicy
from .transactions import (
    Transaction,
    TransactionalDatabase,
    TransactionalEditor,
    TransactionManager,
    UndoRecord,
)
from .wal import DML_ACTIONS, WAL_FORMAT, WriteAheadJournal, operator_payload

__all__ = [
    "RobustnessError",
    "TransactionError",
    "WALError",
    "RecoveryError",
    "InjectedFault",
    "RetryExhaustedError",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPlan",
    "IntegrityChecker",
    "IntegrityReport",
    "Violation",
    "RecoveryReport",
    "WarehouseRecoveryReport",
    "recover_schema",
    "recover_warehouse",
    "replay_operator",
    "AsOfReport",
    "AsOfSnapshot",
    "BackupReport",
    "RecoverToReport",
    "backup_journal",
    "materialize_as_of",
    "materialize_schema_as_of",
    "open_as_of",
    "recover_to",
    "resolve_target",
    "restore_backup",
    "restore_points",
    "RetryPolicy",
    "Transaction",
    "TransactionManager",
    "TransactionalDatabase",
    "TransactionalEditor",
    "UndoRecord",
    "DML_ACTIONS",
    "WAL_FORMAT",
    "WriteAheadJournal",
    "operator_payload",
]
