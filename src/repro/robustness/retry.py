"""Retry with exponential backoff.

Operational sources are the flaky edge of the Figure-1 architecture —
legacy systems, network shares, spreadsheets.  :class:`RetryPolicy`
wraps any callable with bounded, exponentially backed-off retries; the
jitter (when enabled) is drawn from a seeded generator so test runs are
reproducible, and the sleep function is injectable so tests never
actually wait.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .errors import RetryExhaustedError

__all__ = ["RetryPolicy"]


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff.

    Attempt ``k`` (0-based) sleeps ``base_delay * multiplier**k`` seconds
    before retrying, capped at ``max_delay``, plus a uniform jitter of up
    to ``jitter`` fraction of the delay drawn from ``Random(seed)``.

    ``retry_on`` restricts which exceptions are retried; anything else
    propagates immediately.  When attempts are exhausted a
    :class:`RetryExhaustedError` is raised chaining the last failure.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.0
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter is a fraction in [0, 1]")
        self._rng = random.Random(self.seed)

    def backoff_schedule(self) -> list[float]:
        """The deterministic (jitter-free) delays between attempts."""
        return [
            min(self.base_delay * self.multiplier**k, self.max_delay)
            for k in range(self.max_attempts - 1)
        ]

    def _delay(self, attempt: int) -> float:
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter:
            delay += delay * self.jitter * self._rng.random()
        return delay

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Invoke ``fn`` under this policy and return its result."""
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt + 1 >= self.max_attempts:
                    break
                self.sleep(self._delay(attempt))
        assert last is not None
        raise RetryExhaustedError(self.max_attempts, last) from last

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """A callable that applies this policy to every invocation."""

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            return self.call(fn, *args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped

    @staticmethod
    def no_sleep(
        max_attempts: int = 3,
        *,
        retry_on: Sequence[type[BaseException]] = (Exception,),
        seed: int = 0,
        jitter: float = 0.0,
    ) -> "RetryPolicy":
        """A policy that never actually waits — for tests and benchmarks."""
        return RetryPolicy(
            max_attempts=max_attempts,
            base_delay=0.0,
            max_delay=0.0,
            jitter=jitter,
            seed=seed,
            retry_on=tuple(retry_on),
            sleep=lambda _s: None,
        )
