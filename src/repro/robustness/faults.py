"""Deterministic fault injection.

A :class:`FaultInjector` is a registry of *named fault points*.  Code that
wants to be testable under partial failure calls ``injector.fire("point")``
at its hazardous boundaries; tests arm the points they care about —
either at an exact call index (fully deterministic) or with a seeded
probability (deterministic per seed) — and the injector raises
:class:`InjectedFault` when a point trips.

The injector is duck-typed on purpose: :class:`~repro.storage.database.Database`
and :class:`~repro.warehouse.etl.ETLPipeline` accept any object with a
``fire(point)`` method, so the core layers stay free of a dependency on
this package.

Fault-point catalog (see ``docs/robustness.md`` for the walkthrough):

========================  ====================================================
point                     fired
========================  ====================================================
``txn.begin``             when a transaction starts
``txn.op.pre``            before each basic operator inside a transaction
``txn.op.post``           after each basic operator, before it is journaled
``txn.commit``            at commit, before the WAL commit record
``txn.commit.durable``    after the WAL commit record is on disk
``wal.append``            before each WAL record is written
``wal.dml``               before each relational ``dml`` record is written
``wal.truncate``          mid-compaction, after the temp file is written
                          but before it replaces the journal
``wal.archive``           mid-archive-rotation, after the segment temp file
                          is written but before it is renamed into place
``pitr.undo``             before each pre-image is applied during
                          :func:`~repro.robustness.pitr.materialize_as_of`
``backup.copy``           before each file is copied by
                          :func:`~repro.robustness.pitr.backup_journal` /
                          :func:`~repro.robustness.pitr.restore_backup`
``db.insert``             before each checked :class:`Database` insert
``db.insert_many.row``    before each row of a :meth:`Database.insert_many`
``etl.extract``           before each operational-source extraction
========================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .errors import InjectedFault

__all__ = ["FAULT_POINTS", "FaultPlan", "FaultInjector"]

FAULT_POINTS: tuple[str, ...] = (
    "txn.begin",
    "txn.op.pre",
    "txn.op.post",
    "txn.commit",
    "txn.commit.durable",
    "wal.append",
    "wal.dml",
    "wal.truncate",
    "wal.archive",
    "pitr.undo",
    "backup.copy",
    "db.insert",
    "db.insert_many.row",
    "etl.extract",
)


@dataclass
class FaultPlan:
    """How one armed point misbehaves.

    Exactly one of ``at_call`` (1-based call index that trips) or
    ``probability`` (seeded chance per call) is set; ``times`` bounds how
    many trips the plan will produce before exhausting itself.
    """

    point: str
    at_call: int | None = None
    probability: float | None = None
    times: int = 1
    exception: type[Exception] = InjectedFault
    trips: int = field(default=0, init=False)

    def exhausted(self) -> bool:
        """Whether this plan has produced all its trips."""
        return self.trips >= self.times

    def should_trip(self, call_index: int, rng: random.Random) -> bool:
        """Decide whether call ``call_index`` (1-based) trips."""
        if self.exhausted():
            return False
        if self.at_call is not None:
            return call_index == self.at_call
        assert self.probability is not None
        return rng.random() < self.probability


class FaultInjector:
    """A seeded, deterministic fault injector.

    >>> inj = FaultInjector(seed=7)
    >>> inj.arm("txn.op.pre", at_call=2)
    >>> inj.fire("txn.op.pre")   # call 1: passes
    >>> inj.fire("txn.op.pre")   # call 2: raises InjectedFault
    Traceback (most recent call last):
      ...
    repro.robustness.errors.InjectedFault: injected fault at 'txn.op.pre' (call #2)

    Determinism: probability plans draw from one ``random.Random(seed)``
    private to the injector, and call counters advance only on ``fire`` —
    the same program with the same seed trips the same faults.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._plans: dict[str, FaultPlan] = {}
        self._calls: dict[str, int] = {}
        self.trip_log: list[tuple[str, int]] = []

    # -- arming ----------------------------------------------------------------

    def arm(
        self,
        point: str,
        *,
        at_call: int | None = None,
        probability: float | None = None,
        times: int = 1,
        exception: type[Exception] = InjectedFault,
    ) -> FaultPlan:
        """Arm a fault point.

        ``at_call`` trips the exact Nth ``fire`` of that point (1-based);
        ``probability`` trips each call with the given seeded chance.
        Exactly one must be given.  Re-arming a point replaces its plan and
        resets its call counter.
        """
        if (at_call is None) == (probability is None):
            raise ValueError("arm() needs exactly one of at_call / probability")
        if at_call is not None and at_call < 1:
            raise ValueError("at_call is a 1-based call index")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        plan = FaultPlan(
            point=point,
            at_call=at_call,
            probability=probability,
            times=times,
            exception=exception,
        )
        self._plans[point] = plan
        self._calls[point] = 0
        return plan

    def disarm(self, point: str) -> None:
        """Disarm a point (a no-op when the point is not armed)."""
        self._plans.pop(point, None)

    def disarm_all(self) -> None:
        """Disarm every point; call counters and the trip log survive."""
        self._plans.clear()

    # -- firing ----------------------------------------------------------------

    def fire(self, point: str) -> None:
        """Pass through a fault point; raises when its plan trips."""
        count = self._calls.get(point, 0) + 1
        self._calls[point] = count
        plan = self._plans.get(point)
        if plan is None or not plan.should_trip(count, self._rng):
            return
        plan.trips += 1
        self.trip_log.append((point, count))
        if plan.exception is InjectedFault:
            raise InjectedFault(point, count)
        raise plan.exception(f"injected fault at {point!r} (call #{count})")

    def calls(self, point: str) -> int:
        """How many times ``point`` has fired so far."""
        return self._calls.get(point, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(seed={self.seed}, armed={sorted(self._plans)}, "
            f"trips={len(self.trip_log)})"
        )
