"""On-demand validation of the paper's structural invariants.

:class:`IntegrityChecker` is the non-throwing complement of
:meth:`TemporalMultidimensionalSchema.validate`: instead of raising on the
first problem it sweeps the whole schema and reports *every* violation,
which is what crash recovery and operational monitoring need.  It checks:

* **interval well-formedness** — every member-version and relationship
  valid time has ``start <= end`` (defensive: corrupted states built
  through internals can bypass the :class:`Interval` constructor);
* **Definition 2 inclusion** — each temporal relationship's valid time
  lies inside the intersection of its endpoints' valid times;
* **rollup DAG acyclicity** — ``D(t)`` is acyclic at every critical
  instant of every dimension, i.e. in every structure version;
* **Definition 5 temporal consistency** — every fact row references
  member versions that exist, are valid at the row's ``t`` and are leaves
  at ``t``;
* **mapping confidence-factor totality** — every mapping relationship
  covers *every* schema measure in both directions with a canonical
  confidence factor, and links existing leaf-capable member versions of
  one dimension;
* **MVid global uniqueness** across dimensions.

The schema-quality *linter* lives in :mod:`repro.core.audit`; the checker
here is about hard invariants, not modelling style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.chronology import Interval, NowType
from repro.core.confidence import CANONICAL_FACTORS
from repro.core.errors import CyclicHierarchyError, ReproError
from repro.core.schema import TemporalMultidimensionalSchema

__all__ = ["Violation", "IntegrityReport", "IntegrityChecker"]

_CANONICAL_SYMBOLS = {f.symbol for f in CANONICAL_FACTORS}


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``code`` is a stable machine-readable identifier (``interval``,
    ``relationship``, ``acyclicity``, ``fact``, ``mapping``, ``mvid``);
    ``subject`` names the offending object.
    """

    code: str
    subject: str
    message: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.subject}: {self.message}"


@dataclass
class IntegrityReport:
    """All violations of one integrity sweep."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the schema satisfies every checked invariant."""
        return not self.violations

    def by_code(self) -> dict[str, int]:
        """Violation counts per invariant code."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.code] = out.get(v.code, 0) + 1
        return out

    def to_text(self) -> str:
        """Human-readable listing (empty schemas report a clean bill)."""
        if self.ok:
            return "integrity: OK (0 violations)"
        lines = [f"integrity: {len(self.violations)} violation(s)"]
        for v in self.violations:
            lines.append(f"  [{v.code}] {v.subject}: {v.message}")
        return "\n".join(lines)


class IntegrityChecker:
    """Sweeps a schema and reports every invariant violation.

    ``scope`` (on the constructor or per :meth:`run` call) restricts the
    sweep to a set of subjects: dimension ids limit the structural checks
    to those dimensions (and the fact/mapping checks to the parts that
    reference them); the sentinel ``"facts"`` forces the full fact sweep.
    ``None`` means everything — the default, and the behaviour of every
    pre-existing caller.  Scoped sweeps are what commit-time validation
    uses: a transaction that touched two dimensions only pays for
    re-checking those two.
    """

    def __init__(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        scope: Iterable[str] | None = None,
    ) -> None:
        self.schema = schema
        self.scope = None if scope is None else set(scope)

    def run(self, scope: Iterable[str] | None = None) -> IntegrityReport:
        """Run every check and return the consolidated report.

        ``scope`` overrides the constructor's scope for this sweep.
        """
        active = self.scope if scope is None else set(scope)
        report = IntegrityReport()
        self._check_intervals(report, active)
        self._check_relationships(report, active)
        self._check_acyclicity(report, active)
        self._check_facts(report, active)
        self._check_mappings(report, active)
        self._check_mvid_uniqueness(report, active)
        return report

    def _dims(self, scope: set[str] | None):
        for did, dim in self.schema.dimensions.items():
            if scope is None or did in scope:
                yield did, dim

    # -- individual sweeps -------------------------------------------------------

    @staticmethod
    def _interval_ok(interval: Interval) -> bool:
        if not isinstance(interval, Interval):
            return False
        if isinstance(interval.end, NowType):
            return isinstance(interval.start, int)
        return isinstance(interval.start, int) and interval.start <= interval.end

    def _check_intervals(
        self, report: IntegrityReport, scope: set[str] | None = None
    ) -> None:
        for did, dim in self._dims(scope):
            for mv in dim.members.values():
                if not self._interval_ok(mv.valid_time):
                    report.violations.append(
                        Violation(
                            "interval",
                            f"{did}/{mv.mvid}",
                            f"member valid time {mv.valid_time!r} is ill-formed",
                        )
                    )
            for rel in dim.relationships:
                if not self._interval_ok(rel.valid_time):
                    report.violations.append(
                        Violation(
                            "interval",
                            f"{did}/{rel.child}->{rel.parent}",
                            f"relationship valid time {rel.valid_time!r} is "
                            f"ill-formed",
                        )
                    )

    def _check_relationships(
        self, report: IntegrityReport, scope: set[str] | None = None
    ) -> None:
        for did, dim in self._dims(scope):
            for rel in dim.relationships:
                subject = f"{did}/{rel.child}->{rel.parent}"
                if rel.child not in dim or rel.parent not in dim:
                    report.violations.append(
                        Violation(
                            "relationship",
                            subject,
                            "relationship references a missing member version",
                        )
                    )
                    continue
                child, parent = dim.member(rel.child), dim.member(rel.parent)
                if not (
                    self._interval_ok(rel.valid_time)
                    and self._interval_ok(child.valid_time)
                    and self._interval_ok(parent.valid_time)
                ):
                    continue  # already reported by the interval sweep
                common = child.valid_time.intersect(parent.valid_time)
                if common is None or not common.covers(rel.valid_time):
                    report.violations.append(
                        Violation(
                            "relationship",
                            subject,
                            f"valid time {rel.valid_time!r} escapes the "
                            f"endpoints' intersection (Definition 2)",
                        )
                    )

    def _check_acyclicity(
        self, report: IntegrityReport, scope: set[str] | None = None
    ) -> None:
        for did, dim in self._dims(scope):
            try:
                instants = dim.critical_instants()
            except Exception:
                # ill-formed valid times (reported by the interval sweep)
                # make the critical instants themselves uncomputable
                continue
            for t in instants:
                try:
                    dim.at(t)
                except CyclicHierarchyError as exc:
                    report.violations.append(
                        Violation("acyclicity", f"{did}@t={t}", str(exc))
                    )
                except Exception as exc:  # defensive: corrupt states may
                    # break snapshot construction in arbitrary ways; the
                    # sweep must survive to report the rest of the schema
                    report.violations.append(
                        Violation("acyclicity", f"{did}@t={t}", str(exc))
                    )

    def _check_facts(
        self, report: IntegrityReport, scope: set[str] | None = None
    ) -> None:
        if scope is None or "facts" in scope:
            check_dims = list(self.schema.dimension_ids)
        else:
            # A touched dimension can invalidate facts only along its own
            # coordinate; the other coordinates were checked when their
            # dimensions last changed.
            check_dims = [d for d in self.schema.dimension_ids if d in scope]
            if not check_dims:
                return
        for i, row in enumerate(self.schema.facts):
            for did in check_dims:
                dim = self.schema.dimension(did)
                try:
                    mvid = row.coordinate(did)
                except ReproError as exc:
                    report.violations.append(
                        Violation("fact", f"row#{i}", str(exc))
                    )
                    continue
                subject = f"row#{i}({did}={mvid},t={row.t})"
                if mvid not in dim:
                    report.violations.append(
                        Violation(
                            "fact", subject, "coordinate names an unknown member"
                        )
                    )
                    continue
                mv = dim.member(mvid)
                if not mv.valid_at(row.t):
                    report.violations.append(
                        Violation(
                            "fact",
                            subject,
                            f"member not valid at t={row.t} "
                            f"(valid {mv.valid_time!r})",
                        )
                    )
                elif not dim.is_leaf_at(mvid, row.t):
                    report.violations.append(
                        Violation(
                            "fact",
                            subject,
                            f"member is not a leaf at t={row.t} (Definition 5)",
                        )
                    )

    def _check_mappings(
        self, report: IntegrityReport, scope: set[str] | None = None
    ) -> None:
        measures = set(self.schema.measure_names)
        for rel in self.schema.mappings:
            if scope is not None:
                endpoint_dims = set()
                for endpoint in (rel.source, rel.target):
                    try:
                        dim, _ = self.schema.find_member(endpoint)
                        endpoint_dims.add(dim.did)
                    except ReproError:
                        # A dangling endpoint cannot be attributed to a
                        # dimension; any scoped sweep must still surface it
                        # (removing members is exactly what breaks mappings).
                        endpoint_dims.add("__dangling__")
                if not endpoint_dims & (scope | {"__dangling__"}):
                    continue
            subject = f"{rel.source}=>{rel.target}"
            dims = []
            for endpoint in (rel.source, rel.target):
                try:
                    dim, _ = self.schema.find_member(endpoint)
                    dims.append(dim.did)
                except ReproError:
                    report.violations.append(
                        Violation(
                            "mapping",
                            subject,
                            f"endpoint {endpoint!r} is not a member version of "
                            f"any dimension",
                        )
                    )
            if len(dims) == 2 and dims[0] != dims[1]:
                report.violations.append(
                    Violation(
                        "mapping",
                        subject,
                        f"endpoints live in different dimensions "
                        f"({dims[0]!r} vs {dims[1]!r})",
                    )
                )
            for direction_name, direction in (
                ("forward", rel.forward),
                ("reverse", rel.reverse),
            ):
                missing = measures - set(direction)
                if missing:
                    report.violations.append(
                        Violation(
                            "mapping",
                            subject,
                            f"{direction_name} maps miss measures "
                            f"{sorted(missing)} (confidence totality)",
                        )
                    )
                for measure, mm in direction.items():
                    if mm.confidence.symbol not in _CANONICAL_SYMBOLS:
                        report.violations.append(
                            Violation(
                                "mapping",
                                subject,
                                f"{direction_name}[{measure}] carries "
                                f"non-canonical confidence "
                                f"{mm.confidence.symbol!r}",
                            )
                        )

    def _check_mvid_uniqueness(
        self, report: IntegrityReport, scope: set[str] | None = None
    ) -> None:
        # Uniqueness is a cross-dimension property: the full catalog is
        # always indexed, but only collisions involving a scoped dimension
        # are reported.
        seen: dict[str, str] = {}
        for did, dim in self.schema.dimensions.items():
            for mvid in dim.members:
                if mvid in seen and seen[mvid] != did:
                    if scope is not None and not {seen[mvid], did} & scope:
                        continue
                    report.violations.append(
                        Violation(
                            "mvid",
                            mvid,
                            f"appears in dimensions {seen[mvid]!r} and {did!r}; "
                            f"MVids must be globally unique",
                        )
                    )
                else:
                    seen.setdefault(mvid, did)
