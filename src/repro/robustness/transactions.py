"""Transactional evolution: ``begin`` / ``commit`` / ``rollback``.

The §3.2 operators are applied in *sequences* — Table 11 compiles every
simple and complex evolution (merge, split, annexation) into multi-operator
scripts — so a failure mid-sequence must not leave the Temporal
Multidimensional Schema in a state that is neither the old nor the new
structure version.  :class:`TransactionManager` makes every compound
operation of :class:`~repro.core.operations.EvolutionManager` all-or-nothing:

* each basic operator is applied through a :class:`TransactionalEditor`
  that captures a pre-image of the touched dimension and pushes an inverse
  entry onto the transaction's undo log (Insert is compensated by removing
  what it created, Exclude/Reclassify by restoring the truncated members
  and relationships, Associate by removing the registered mapping);
* ``rollback`` applies the undo log in reverse, restoring the schema
  *byte-identically* (container order included, so serialization output
  matches) to its begin state;
* with a :class:`~repro.robustness.wal.WriteAheadJournal` attached, every
  operator is journaled before the commit record, giving replay-based
  crash recovery to the last committed transaction boundary
  (:mod:`repro.robustness.recovery`);
* a :class:`~repro.robustness.faults.FaultInjector` can be woven in to
  trip any of the ``txn.*`` / ``wal.append`` fault points.

Row-level undo for the relational substrate is provided by
:class:`TransactionalDatabase`, which wraps a
:class:`~repro.storage.database.Database` and enlists its writes in the
same transaction.  With a WAL attached, those writes are journaled as
``dml`` records (and ``catalog`` records for table schemas), so
:func:`repro.robustness.recovery.recover_warehouse` rebuilds the
warehouse tier together with the schema after a crash.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.chronology import Endpoint, Instant, NOW
from repro.core.facts import FactRow
from repro.core.mapping import MappingRelationship
from repro.core.member import MemberVersion
from repro.core.operations import EvolutionManager
from repro.core.operators import SchemaEditor
from repro.core.schema import TemporalMultidimensionalSchema
from repro.observability import runtime as _obs
from repro.storage.database import Database
from repro.storage.schema import table_schema_to_dict

from .errors import TransactionError
from .wal import WriteAheadJournal, operator_payload

__all__ = [
    "UndoRecord",
    "Transaction",
    "TransactionalEditor",
    "TransactionManager",
    "TransactionalDatabase",
]


@dataclass
class UndoRecord:
    """One inverse action on the undo log.

    ``description`` names the operator being compensated (for diagnostics
    and the tests' undo-log assertions); ``action`` performs the inverse.
    """

    description: str
    action: Callable[[], None]

    def undo(self) -> None:
        """Apply the inverse action."""
        self.action()


@dataclass
class Transaction:
    """One open unit of work.

    ``journal_mark`` / ``facts_mark`` record where the operator journal and
    the fact table stood at ``begin`` so rollback can truncate both.

    ``touched`` accumulates the ids of every dimension the transaction's
    operators and fact loads reached — the conflict-detection granularity
    of :mod:`repro.concurrency` and the scope of incremental integrity
    checks.  ``cataloged`` names the relational tables whose ``catalog``
    WAL record this transaction emitted — rollback un-registers them so a
    later transaction re-catalogs the table under a txid that commits.
    ``base_version`` is the snapshot version the writer's
    decisions were based on (``None`` when the transaction was not opened
    through a :class:`~repro.concurrency.manager.SnapshotManager`);
    ``commit_lsn`` is the WAL LSN of the commit record, set by
    :meth:`TransactionManager.commit` — the MVCC version clock.
    """

    txid: int
    journal_mark: int
    facts_mark: int
    undo: list[UndoRecord] = field(default_factory=list)
    status: str = "active"
    operators: int = 0
    touched: set[str] = field(default_factory=set)
    cataloged: set[str] = field(default_factory=set)
    base_version: int | None = None
    commit_lsn: int | None = None

    @property
    def active(self) -> bool:
        """Whether the transaction is still open."""
        return self.status == "active"


class TransactionalEditor(SchemaEditor):
    """A :class:`SchemaEditor` whose operators enlist in a transaction.

    Every basic operator requires an active transaction on the owning
    :class:`TransactionManager`; applying one outside a transaction raises
    :class:`TransactionError` — that is the contract that makes compound
    operations atomic.
    """

    def __init__(
        self, schema: TemporalMultidimensionalSchema, manager: "TransactionManager"
    ) -> None:
        super().__init__(schema)
        self._manager = manager

    # Each override snapshots the touched dimension, delegates to the base
    # operator, then registers undo + WAL through the manager.

    def insert(
        self,
        did: str,
        mvid: str,
        name: str,
        ti: Instant,
        tf: Endpoint = NOW,
        *,
        attributes: Mapping[str, Any] | None = None,
        level: str | None = None,
        parents: Sequence[str] = (),
        children: Sequence[str] = (),
    ) -> MemberVersion:
        return self._manager._apply_operator(
            "Insert",
            dims=(did,),
            call=lambda: super(TransactionalEditor, self).insert(
                did,
                mvid,
                name,
                ti,
                tf,
                attributes=attributes,
                level=level,
                parents=parents,
                children=children,
            ),
            wal_args={
                "did": did,
                "mvid": mvid,
                "name": name,
                "ti": ti,
                "tf": tf,
                "attributes": dict(attributes or {}),
                "level": level,
                "parents": list(parents),
                "children": list(children),
            },
        )

    def exclude(self, did: str, mvid: str, tf: Instant) -> MemberVersion:
        return self._manager._apply_operator(
            "Exclude",
            dims=(did,),
            call=lambda: super(TransactionalEditor, self).exclude(did, mvid, tf),
            wal_args={"did": did, "mvid": mvid, "tf": tf},
        )

    def associate(
        self, rel: MappingRelationship, *, allow_non_leaf: bool = False
    ) -> MappingRelationship:
        return self._manager._apply_operator(
            "Associate",
            dims=(),
            call=lambda: super(TransactionalEditor, self).associate(
                rel, allow_non_leaf=allow_non_leaf
            ),
            wal_args={"rel": rel, "allow_non_leaf": allow_non_leaf},
            mapping_rel=rel,
        )

    def reclassify(
        self,
        did: str,
        mvid: str,
        ti: Instant,
        tf: Endpoint = NOW,
        *,
        old_parents: Sequence[str] = (),
        new_parents: Sequence[str] = (),
    ) -> None:
        return self._manager._apply_operator(
            "Reclassify",
            dims=(did,),
            call=lambda: super(TransactionalEditor, self).reclassify(
                did, mvid, ti, tf, old_parents=old_parents, new_parents=new_parents
            ),
            wal_args={
                "did": did,
                "mvid": mvid,
                "ti": ti,
                "tf": tf,
                "old_parents": list(old_parents),
                "new_parents": list(new_parents),
            },
        )


class TransactionManager:
    """Transactions over a TMD schema (and optionally a relational store).

    Parameters
    ----------
    schema:
        The schema to protect.
    wal:
        A :class:`WriteAheadJournal`, a path to create/open one, or ``None``
        for in-memory transactions (rollback still works; crash recovery
        does not).  A fresh, empty journal automatically receives an
        initial checkpoint of the schema.
    database:
        An optional :class:`~repro.storage.database.Database`; use
        :attr:`database` (a :class:`TransactionalDatabase`) to give its
        writes row-level undo within the same transaction.
    fault_injector:
        Optional :class:`~repro.robustness.faults.FaultInjector` fired at
        the ``txn.*`` fault points (and handed to the WAL for
        ``wal.append``).
    checkpoint_every:
        With a WAL attached, automatically write a schema checkpoint
        after every N commits and truncate the journal prefix before it
        (WAL compaction) — recovery replays from the checkpoint, so the
        dropped prefix is dead weight.  ``None`` (the default) disables
        auto-checkpointing.

    Commit-time extension hooks (used by
    :class:`~repro.concurrency.manager.SnapshotManager`):
    ``precommit_hooks`` run after the ``txn.commit`` fault point but
    *before* the WAL commit record — a hook that raises (e.g. a
    write-conflict validator) aborts the commit and, under
    ``transaction()``, rolls the transaction back; ``postcommit_hooks``
    run once the transaction is durably committed (snapshot publication).

    Usage::

        txm = TransactionManager(schema, wal="evolutions.wal")
        with txm.transaction():
            txm.evolution.merge_members("org", ["a", "b"], "ab", "AB", t)
        # committed — or rolled back to the byte-identical begin state
        # if anything inside raised.
    """

    def __init__(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        wal: WriteAheadJournal | str | Path | None = None,
        database: Database | None = None,
        fault_injector: Any = None,
        checkpoint_every: int | None = None,
        metrics: Any = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise TransactionError("checkpoint_every must be a positive count")
        self.schema = schema
        self.fault_injector = fault_injector
        self.checkpoint_every = checkpoint_every
        self._metrics = metrics
        self.precommit_hooks: list[Callable[[Transaction], None]] = []
        self.postcommit_hooks: list[Callable[[Transaction], None]] = []
        if wal is None or isinstance(wal, WriteAheadJournal):
            self.wal = wal
        else:
            self.wal = WriteAheadJournal(
                wal, fault_injector=fault_injector, metrics=metrics
            )
        self.database = (
            TransactionalDatabase(database, self) if database is not None else None
        )
        # Tables whose schema the journal currently describes (checkpoint
        # dump or a catalog record).  A reopened journal starts empty and
        # re-catalogs lazily — catalog replay is idempotent.
        self._cataloged: set[str] = set()
        if self.wal is not None and not self.wal.records():
            self._write_checkpoint()
        self.editor = TransactionalEditor(schema, self)
        self.evolution = EvolutionManager(schema, editor=self.editor)
        self.current: Transaction | None = None
        self.committed = 0
        self.rolled_back = 0
        self._txid_counter = 0

    # -- fault plumbing ---------------------------------------------------------

    def _fire(self, point: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.fire(point)

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    # -- lifecycle --------------------------------------------------------------

    def begin(self) -> Transaction:
        """Open a transaction; nesting is not supported."""
        if self.current is not None and self.current.active:
            raise TransactionError(
                f"transaction {self.current.txid} is still active; "
                f"nested transactions are not supported"
            )
        self._fire("txn.begin")
        if self.wal is not None:
            txid = self.wal.next_txid()
        else:
            self._txid_counter += 1
            txid = self._txid_counter
        txn = Transaction(
            txid=txid,
            journal_mark=len(self.editor.journal),
            facts_mark=len(self.schema.facts),
        )
        if self.wal is not None:
            self.wal.begin(txid)
        self.current = txn
        return txn

    def commit(self) -> Transaction:
        """Make the open transaction durable and permanent.

        Pre-commit hooks run before the WAL commit record: a raising hook
        (write-conflict validation, scoped integrity) aborts the commit
        while rollback is still possible.  Post-commit hooks run once the
        transaction is durable; after them, ``checkpoint_every`` may
        trigger an automatic checkpoint + journal truncation.
        """
        txn = self._require_txn()
        metrics = self._metrics_now()
        commit_start = time.perf_counter() if metrics.enabled else 0.0
        self._fire("txn.commit")
        for hook in self.precommit_hooks:
            hook(txn)
        if self.wal is not None:
            txn.commit_lsn = self.wal.commit(txn.txid)
        self._fire("txn.commit.durable")
        txn.status = "committed"
        txn.undo.clear()
        self.current = None
        self.committed += 1
        for hook in self.postcommit_hooks:
            hook(txn)
        if (
            self.checkpoint_every is not None
            and self.wal is not None
            and self.committed % self.checkpoint_every == 0
        ):
            lsn = self._write_checkpoint()
            self.wal.truncate_before(lsn)
        if metrics.enabled:
            metrics.histogram("txn.commit_seconds").observe(
                time.perf_counter() - commit_start
            )
            metrics.counter("txn.committed").inc()
            metrics.counter("txn.operators_applied").inc(txn.operators)
        return txn

    def rollback(self) -> Transaction:
        """Undo every effect of the open transaction.

        The undo log is applied in reverse; the operator journal and the
        fact table are truncated back to their begin marks.  After the
        call, serializing the schema yields bytes identical to the
        pre-transaction serialization.
        """
        txn = self._require_txn()
        self._fire("txn.rollback")
        for record in reversed(txn.undo):
            record.undo()
        txn.undo.clear()
        # Catalog records this transaction emitted die with it at recovery
        # (no commit record), so the tables must be re-cataloged by the
        # next transaction that touches them.
        self._cataloged -= txn.cataloged
        del self.editor.journal[txn.journal_mark:]
        self.schema.facts.truncate(txn.facts_mark)
        if self.wal is not None:
            try:
                self.wal.abort(txn.txid)
            except Exception:
                # The abort record is advisory — recovery discards any
                # transaction without a commit record — so a failing
                # journal must not block the in-memory rollback.
                pass
        txn.status = "rolled-back"
        self.current = None
        self.rolled_back += 1
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("txn.rolled_back").inc()
        return txn

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """``with txm.transaction():`` — commit on success, rollback on error."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if self.current is txn and txn.active:
                self.rollback()
            raise
        else:
            if self.current is txn and txn.active:
                try:
                    self.commit()
                except BaseException:
                    # The commit never reached its durability point (e.g. a
                    # fault before/at the WAL commit record): the
                    # transaction aborts as a whole.
                    if self.current is txn and txn.active:
                        self.rollback()
                    raise

    def execute(self, fn: Callable[[EvolutionManager], Any]) -> Any:
        """Run ``fn(evolution_manager)`` inside one transaction."""
        with self.transaction():
            return fn(self.evolution)

    def create_restore_point(self, name: str) -> int:
        """Journal a named restore point and return its LSN.

        The tag marks a committed boundary point-in-time recovery can
        rewind to by name (:func:`repro.robustness.pitr.recover_to`,
        ``repro recover --to <name>``), so it refuses to land inside an
        open transaction — a mid-transaction tag would name a state that
        never existed at any commit boundary.
        """
        if self.wal is None:
            raise TransactionError("no write-ahead journal attached")
        if self.current is not None and self.current.active:
            raise TransactionError(
                "cannot create a restore point inside an open transaction"
            )
        return self.wal.restore_point(name)

    def checkpoint(self) -> int:
        """Write a schema snapshot to the WAL (no open transaction allowed).

        With a database attached, the checkpoint embeds its full dump —
        the row-level recovery baseline that keeps journal compaction
        (:meth:`WriteAheadJournal.truncate_before`) correct for the
        warehouse tier.
        """
        if self.wal is None:
            raise TransactionError("no write-ahead journal attached")
        if self.current is not None and self.current.active:
            raise TransactionError("cannot checkpoint inside an open transaction")
        return self._write_checkpoint()

    def _write_checkpoint(self) -> int:
        """Checkpoint schema (and database, when attached) to the WAL."""
        db = self.database.db if self.database is not None else None
        lsn = self.wal.checkpoint(self.schema, database=db)
        if db is not None:
            # The dump describes every current table; nothing needs a
            # catalog record until a new table appears.
            self._cataloged = set(db.table_names)
        return lsn

    def _require_txn(self) -> Transaction:
        if self.current is None or not self.current.active:
            raise TransactionError(
                "no active transaction; wrap the operation in "
                "`with manager.transaction():`"
            )
        return self.current

    # -- operator interception ---------------------------------------------------

    def _apply_operator(
        self,
        operator: str,
        *,
        dims: tuple[str, ...],
        call: Callable[[], Any],
        wal_args: dict[str, Any],
        mapping_rel: MappingRelationship | None = None,
    ) -> Any:
        """Apply one basic operator under the open transaction.

        A pre-image of every touched dimension is captured first.  On
        failure the pre-images are restored immediately (statement-level
        atomicity: the transaction stays open, the schema shows no trace of
        the failed operator) and the error propagates.  On success an
        :class:`UndoRecord` restoring the pre-images (and removing the
        ``Associate``'d mapping, when there is one) joins the undo log and
        the operator is journaled to the WAL.
        """
        txn = self._require_txn()
        self._fire("txn.op.pre")
        pre_images = [
            (did, self.schema.dimension(did).capture_state()) for did in dims
        ]
        journal_mark = len(self.editor.journal)
        try:
            result = call()
        except BaseException:
            for did, state in pre_images:
                self.schema.dimension(did).restore_state(state)
            del self.editor.journal[journal_mark:]
            raise

        def compensate() -> None:
            if mapping_rel is not None:
                self.schema.mappings.remove(mapping_rel)
            for did, state in pre_images:
                self.schema.dimension(did).restore_state(state)

        # Register the inverse *before* the post-op fault point and the WAL
        # append: once the operator has touched the schema, a failure
        # anywhere downstream must still be able to unwind it.
        txn.undo.append(UndoRecord(description=operator, action=compensate))
        txn.operators += 1
        txn.touched.update(dims)
        if mapping_rel is not None:
            # Associate names no dimension explicitly; both endpoints live
            # in the same dimension (checked by add_mapping), so resolve
            # the touched dimension from the source member version.
            dim, _ = self.schema.find_member(mapping_rel.source)
            txn.touched.add(dim.did)
        self._fire("txn.op.post")
        if self.wal is not None:
            self.wal.operator(txn.txid, operator_payload(operator, wal_args))
        return result

    # -- transactional fact loads -------------------------------------------------

    def add_fact(
        self,
        coordinates: Mapping[str, str],
        t: Instant,
        values: Mapping[str, float | None] | None = None,
        *,
        source: str | None = None,
        **value_kwargs: float | None,
    ) -> FactRow:
        """Record a fact inside the open transaction (undo = truncate).

        ``source`` tags the row — and its WAL record — with the ETL
        origin, so lineage and the change stream can name the source row.
        """
        txn = self._require_txn()
        self._fire("txn.op.pre")
        mark = len(self.schema.facts)
        row = self.schema.add_fact(
            coordinates, t, values, source=source, **value_kwargs
        )
        txn.undo.append(
            UndoRecord(
                description="Fact",
                action=lambda: self.schema.facts.truncate(mark),
            )
        )
        txn.touched.update(coordinates)
        self._fire("txn.op.post")
        if self.wal is not None:
            self.wal.fact(
                txn.txid, dict(coordinates), t, dict(row.values), source=row.source
            )
        return row


class TransactionalDatabase:
    """Row-level undo *and* journaling for
    :class:`~repro.storage.database.Database` writes.

    Writes performed through this wrapper while a transaction is open are
    compensated row by row on rollback: inserts are removed, updates and
    deletes restore the captured pre-image rows.  Reads pass through to the
    wrapped database.  With a WAL attached to the owning manager, every
    write is also journaled as a ``dml`` record (post-image for inserts and
    updates, pre-image for updates and deletes), preceded by a ``catalog``
    record the first time a transaction touches a table the journal does
    not yet describe — so the warehouse tier recovers together with the
    schema (:func:`repro.robustness.recovery.recover_warehouse`).
    """

    def __init__(self, db: Database, manager: TransactionManager) -> None:
        self.db = db
        self._manager = manager

    def __getattr__(self, name: str) -> Any:
        # Reads (table, find, row_counts, ...) pass through untouched.
        return getattr(self.db, name)

    def _txn(self) -> Transaction:
        return self._manager._require_txn()

    # -- journaling --------------------------------------------------------------

    def _journal_catalog(self, txn: Transaction, table: Any) -> None:
        """Emit a ``catalog`` record unless the journal already describes
        the table (checkpoint dump or an earlier committed catalog record)."""
        manager = self._manager
        if manager.wal is None or table.name in manager._cataloged:
            return
        manager.wal.catalog(
            txn.txid,
            table=table_schema_to_dict(table.schema),
            indexes=table.index_specs(),
        )
        manager._cataloged.add(table.name)
        txn.cataloged.add(table.name)

    def _journal_dml(
        self,
        txn: Transaction,
        action: str,
        table: Any,
        rid: int,
        *,
        row: dict[str, Any] | None = None,
        pre: dict[str, Any] | None = None,
    ) -> None:
        manager = self._manager
        if manager.wal is None:
            return
        self._journal_catalog(txn, table)
        manager.wal.dml(txn.txid, action, table.name, rid, row=row, pre=pre)

    # -- writes ------------------------------------------------------------------

    def insert(
        self, table_name: str, row: Mapping[str, Any], *, check_fk: bool = True
    ) -> int:
        """Insert one row; rollback removes it."""
        txn = self._txn()
        rid = self.db.insert(table_name, row, check_fk=check_fk)
        table = self.db.table(table_name)
        # The inverse joins the undo log *before* the WAL append: once the
        # row is in the table, a failure downstream (a journaling fault)
        # must still be able to unwind it at rollback.
        txn.undo.append(
            UndoRecord(
                description=f"db.insert:{table_name}",
                action=lambda: table.remove_row(rid),
            )
        )
        self._journal_dml(txn, "row.insert", table, rid, row=table.row(rid))
        return rid

    def insert_many(
        self,
        table_name: str,
        rows: Iterable[Mapping[str, Any]],
        *,
        check_fk: bool = True,
    ) -> int:
        """Bulk insert: atomic within the statement *and* undone on rollback.

        The batch is journaled only after every row is in — a statement
        that fails halfway peels its rows off the undo log and leaves no
        ``dml`` records behind, so a transaction that catches the error
        and commits does not replay rows the statement rolled back.
        """
        txn = self._txn()
        table = self.db.table(table_name)
        start = len(txn.undo)
        inserted: list[int] = []
        try:
            for row in rows:
                # Mirror Database.insert_many's per-row fault point: the
                # crash matrix must reach mid-batch failures through the
                # transactional wrapper too.
                self.db._fire("db.insert_many.row")
                rid = self.db.insert(table_name, row, check_fk=check_fk)
                inserted.append(rid)
                txn.undo.append(
                    UndoRecord(
                        description=f"db.insert:{table_name}",
                        action=lambda rid=rid: table.remove_row(rid),
                    )
                )
        except Exception:
            # Statement-level atomicity: peel off this statement's rows now
            # so a caught error leaves the table batch-free.
            while len(txn.undo) > start:
                txn.undo.pop().undo()
            raise
        for rid in inserted:
            self._journal_dml(txn, "row.insert", table, rid, row=table.row(rid))
        return len(inserted)

    def update(
        self,
        table_name: str,
        predicate: Callable[[Mapping[str, Any]], bool],
        changes: Mapping[str, Any],
    ) -> int:
        """Update matching rows; rollback restores the pre-image rows."""
        txn = self._txn()
        table = self.db.table(table_name)
        pre = [(rid, row) for rid, row in table.items() if predicate(row)]
        # Register the inverse before applying: a mid-update failure (e.g.
        # a duplicate key on a later row) leaves earlier rows changed, and
        # restoring the pre-images is safe whether or not any row changed.
        txn.undo.append(
            UndoRecord(
                description=f"db.update:{table_name}",
                action=lambda: [table.restore_row(rid, row) for rid, row in pre],
            )
        )
        updated = table.update(predicate, changes)
        for rid, row in pre:
            self._journal_dml(
                txn, "row.update", table, rid, pre=row, row=table.row(rid)
            )
        return updated

    def delete(
        self, table_name: str, predicate: Callable[[Mapping[str, Any]], bool]
    ) -> int:
        """Delete matching rows; rollback restores them in place."""
        txn = self._txn()
        table = self.db.table(table_name)
        pre = [(rid, row) for rid, row in table.items() if predicate(row)]
        txn.undo.append(
            UndoRecord(
                description=f"db.delete:{table_name}",
                action=lambda: [table.restore_row(rid, row) for rid, row in pre],
            )
        )
        removed = table.delete(predicate)
        for rid, row in pre:
            self._journal_dml(txn, "row.delete", table, rid, pre=row)
        return removed
