"""The persistent write-ahead journal (JSONL on disk).

Every transaction the :class:`~repro.robustness.transactions.TransactionManager`
runs is journaled as a sequence of records, one JSON object per line:

* ``checkpoint`` — a full schema snapshot (:func:`schema_to_dict`); recovery
  starts from the most recent one;
* ``begin`` / ``commit`` / ``abort`` — transaction boundaries;
* ``op`` — one basic operator (Insert/Exclude/Associate/Reclassify) with
  JSON-serialized arguments, appended *after* the operator succeeded in
  memory but strictly *before* the transaction's commit record — a logical
  redo journal: replaying the committed records reproduces the schema;
* ``fact`` — one fact row loaded inside a transaction;
* ``catalog`` — one relational table schema (columns, keys, secondary
  indexes), emitted before the first DML record touching a table the
  journal does not yet describe;
* ``dml`` — one relational write (``row.insert`` / ``row.update`` /
  ``row.delete``) with the row id, the post-image and — for updates and
  deletes — the pre-image, so the warehouse tier recovers together with
  the schema (:func:`repro.robustness.recovery.recover_warehouse`);
* ``restore_point`` — a named LSN tag; point-in-time recovery
  (:mod:`repro.robustness.pitr`) rewinds to it by name.

Every record carries a per-record CRC32 over its serialized body
(``checksum=False`` disables writing them; verification always happens when
the field is present, so journals written by older versions stay readable).

Torn tails are expected: a crash mid-append leaves a final line that is not
valid JSON.  :meth:`WriteAheadJournal.records` silently drops a torn *final*
line (the record was never durable) but raises :class:`WALError` on garbage
anywhere else — that is corruption, not a crash.  Opening a journal repairs
the torn tail on disk (truncating the fragment) so the next append starts on
a fresh line instead of concatenating onto it.  Mid-file damage is governed
by the ``corruption_policy``: ``"fail"`` (default) refuses the journal,
``"quarantine"`` moves everything from the first damaged line onwards into
``<journal>.quarantine`` and recovers to the last valid record.

Compaction (:meth:`WriteAheadJournal.truncate_before`) archives instead of
destroys: the dropped prefix moves to numbered segment files
(``<journal>.0001.seg``, …) listed in ``<journal>.manifest.json``, and
:func:`read_chain` re-reads the full history (archives + live journal) for
time travel.
"""

from __future__ import annotations

import json
import os
import time
import warnings
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.core.chronology import NOW
from repro.core.mapping import MappingRelationship
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.serialization import (
    measure_map_from_json,
    measure_map_to_json,
    schema_to_dict,
)
from repro.observability import runtime as _obs

from .errors import WALError

__all__ = [
    "WAL_FORMAT",
    "RECORD_KINDS",
    "DML_ACTIONS",
    "CORRUPTION_POLICIES",
    "WriteAheadJournal",
    "operator_payload",
    "mapping_relationship_to_json",
    "mapping_relationship_from_json",
    "record_crc",
    "manifest_path",
    "read_manifest",
    "read_chain",
    "sweep_journal",
]

WAL_FORMAT = 1

RECORD_KINDS = (
    "checkpoint",
    "begin",
    "op",
    "fact",
    "catalog",
    "dml",
    "commit",
    "abort",
    "restore_point",
)

DML_ACTIONS = ("row.insert", "row.update", "row.delete")

CORRUPTION_POLICIES = ("fail", "quarantine")


def mapping_relationship_to_json(rel: MappingRelationship) -> dict[str, Any]:
    """Serialize one mapping relationship (for ``Associate`` records)."""
    return {
        "source": rel.source,
        "target": rel.target,
        "forward": {m: measure_map_to_json(mm) for m, mm in rel.forward.items()},
        "reverse": {m: measure_map_to_json(mm) for m, mm in rel.reverse.items()},
    }


def mapping_relationship_from_json(payload: dict[str, Any]) -> MappingRelationship:
    """Rebuild a mapping relationship from :func:`mapping_relationship_to_json`."""
    return MappingRelationship(
        source=payload["source"],
        target=payload["target"],
        forward={
            m: measure_map_from_json(spec) for m, spec in payload["forward"].items()
        },
        reverse={
            m: measure_map_from_json(spec) for m, spec in payload["reverse"].items()
        },
    )


def operator_payload(operator: str, arguments: dict[str, Any]) -> dict[str, Any]:
    """JSON-encode one basic operator call (``NOW`` becomes ``null``)."""
    encoded: dict[str, Any] = {}
    for key, value in arguments.items():
        if value is NOW:
            encoded[key] = None
        elif isinstance(value, MappingRelationship):
            encoded[key] = mapping_relationship_to_json(value)
        elif isinstance(value, tuple):
            encoded[key] = list(value)
        else:
            encoded[key] = value
    return {"op": operator, "args": encoded}


def record_crc(record: dict[str, Any]) -> int:
    """CRC32 of a record's serialized body, ``crc`` field excluded.

    The checksum covers exactly the bytes :meth:`WriteAheadJournal.append`
    would have written without the field (JSON objects preserve insertion
    order, so stripping ``crc`` from a parsed record reproduces them)."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(json.dumps(body, separators=(",", ":")).encode("utf-8"))


def _scan_lines(
    lines: list[str],
    origin: str,
    *,
    strict: bool = True,
    stop_at_problem: bool = False,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """Validate journal lines; the one scanner every read path shares.

    Returns ``(records, problems)``.  A torn final line (invalid JSON) is
    dropped silently — that is a crash, not corruption.  Any other defect
    — garbage mid-file, bad format, unknown kind, non-monotonic LSN, a CRC
    mismatch — raises :class:`WALError` when ``strict`` (the error carries
    ``lineno`` and ``checksum_mismatch`` attributes), else is collected as
    ``{"line", "reason", "checksum"}`` dicts.
    """
    records: list[dict[str, Any]] = []
    problems: list[dict[str, Any]] = []
    last_lsn = 0
    for i, line in enumerate(lines):
        reason: str | None = None
        is_crc = False
        record: Any = None
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail: the record never became durable
            reason = "corrupt WAL record (not valid JSON)"
        if reason is None:
            if not isinstance(record, dict):
                reason = "corrupt WAL record (not a JSON object)"
            elif record.get("format") != WAL_FORMAT:
                reason = f"unsupported WAL format {record.get('format')!r}"
            elif record.get("kind") not in RECORD_KINDS:
                reason = f"unknown record kind {record.get('kind')!r}"
            elif not isinstance(record.get("lsn"), int) or record["lsn"] <= last_lsn:
                reason = f"non-monotonic LSN {record.get('lsn')!r}"
            elif "crc" in record and record["crc"] != record_crc(record):
                reason = (
                    f"checksum mismatch (stored {record['crc']!r}, "
                    f"computed {record_crc(record)})"
                )
                is_crc = True
        if reason is None:
            last_lsn = record["lsn"]
            records.append(record)
            continue
        if strict:
            error = WALError(f"{origin}:{i + 1}: {reason}")
            error.lineno = i + 1
            error.checksum_mismatch = is_crc
            raise error
        problems.append({"line": i + 1, "reason": reason, "checksum": is_crc})
        if stop_at_problem:
            break
    return records, problems


def _journal_lines(path: Path) -> list[str]:
    lines = path.read_text(encoding="utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


class WriteAheadJournal:
    """An append-only JSONL journal with monotonically increasing LSNs.

    ``durable=True`` fsyncs after every append (the crash-safe setting);
    the default flushes only, which is what the benchmarks measure as the
    baseline journaling tax.  Opening an existing journal scans it once to
    continue the LSN and transaction-id sequences.

    ``checksum`` controls whether appends carry a per-record CRC32 (reads
    verify the field whenever present, regardless of this setting);
    ``corruption_policy`` decides what opening a damaged journal does —
    ``"fail"`` raises, ``"quarantine"`` moves the damaged suffix to
    ``<journal>.quarantine`` and keeps the valid prefix; ``archive``
    controls whether :meth:`truncate_before` moves the compacted prefix to
    numbered segment files instead of destroying it.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        durable: bool = False,
        fault_injector: Any = None,
        metrics: Any = None,
        checksum: bool = True,
        corruption_policy: str = "fail",
        archive: bool = True,
    ) -> None:
        if corruption_policy not in CORRUPTION_POLICIES:
            raise WALError(
                f"unknown corruption policy {corruption_policy!r} "
                f"(choose from {', '.join(CORRUPTION_POLICIES)})"
            )
        self.path = Path(path)
        self.durable = durable
        self.fault_injector = fault_injector
        self._metrics = metrics
        self.checksum = checksum
        self.corruption_policy = corruption_policy
        self.archive = archive
        self.quarantined_records = 0
        self._next_lsn = 1
        self._next_txid = 1
        self.last_checkpoint_lsn: int | None = None
        if self.path.exists():
            # Repair the tail *before* reopening in append mode: a torn
            # final line (crash mid-append) must be truncated away, or the
            # next append would concatenate onto the fragment and turn a
            # recoverable crash into mid-file corruption.
            self._repair_tail()
            if corruption_policy == "quarantine":
                self._quarantine_damage()
            for record in self.records():
                self._next_lsn = record["lsn"] + 1
                txid = record.get("txid")
                if isinstance(txid, int) and txid >= self._next_txid:
                    self._next_txid = txid + 1
                if record["kind"] == "checkpoint":
                    self.last_checkpoint_lsn = record["lsn"]
        # After the repair, st_size is the durable size — never the raw
        # pre-truncation size that would double-count the torn fragment.
        self._bytes = self.path.stat().st_size if self.path.exists() else 0
        self._file = open(self.path, "a", encoding="utf-8")

    def _repair_tail(self) -> None:
        """Make the on-disk journal end in a complete, newline-terminated line.

        A torn final line — invalid JSON after a crash mid-append — is
        truncated away (it is exactly what :meth:`records` drops, so the
        file and the record view stay consistent).  A final line that *is*
        valid JSON but lost its newline (crash between the payload and the
        terminator reaching the disk) is durable, so it is terminated
        instead of dropped.
        """
        raw = self.path.read_bytes()
        if not raw:
            return
        body, sep, tail = raw.rpartition(b"\n")
        if tail == b"":
            return  # newline-terminated: nothing to repair
        try:
            json.loads(tail.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            with open(self.path, "r+b") as handle:
                handle.truncate(len(body) + len(sep))
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
        else:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())

    def _quarantine_damage(self) -> None:
        """Apply the ``quarantine`` corruption policy on open.

        Everything from the first damaged line onwards moves into
        ``<journal>.quarantine`` (appended, so repeated incidents stack up
        for the operator to inspect) and the journal keeps only the valid
        prefix — recovery then stops at the last valid record instead of
        refusing the whole journal.  Records *after* the damage are
        sacrificed deliberately: with an unreadable line between them and
        the prefix there is no trustworthy LSN chain to splice them onto.
        """
        lines = _journal_lines(self.path)
        _, problems = _scan_lines(
            lines, str(self.path), strict=False, stop_at_problem=True
        )
        if not problems:
            return
        first_bad = problems[0]["line"]  # 1-based
        quarantine = self.path.with_name(self.path.name + ".quarantine")
        with open(quarantine, "a", encoding="utf-8") as handle:
            for line in lines[first_bad - 1:]:
                handle.write(line + "\n")
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
        tmp = self.path.with_name(self.path.name + ".repair")
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in lines[: first_bad - 1]:
                handle.write(line + "\n")
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.quarantined_records = len(lines) - first_bad + 1
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.quarantined_records").inc(self.quarantined_records)
            if problems[0]["checksum"]:
                metrics.counter("wal.checksum_failures").inc()

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    @property
    def size_bytes(self) -> int:
        """Bytes appended to (minus truncated from) the journal file."""
        return self._bytes

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record (0 when empty) —
        the version clock of :mod:`repro.concurrency`."""
        return self._next_lsn - 1

    # -- low-level append -------------------------------------------------------

    def append(self, kind: str, **fields: Any) -> int:
        """Append one record; returns its LSN."""
        if kind not in RECORD_KINDS:
            raise WALError(f"unknown WAL record kind {kind!r}")
        if self._file.closed:
            raise WALError(f"{self.path}: journal is closed")
        if self.fault_injector is not None:
            self.fault_injector.fire("wal.append")
        record = {"lsn": self._next_lsn, "format": WAL_FORMAT, "kind": kind}
        record.update(fields)
        try:
            line = json.dumps(record, separators=(",", ":"))
        except TypeError as exc:
            raise WALError(f"WAL record is not JSON-serializable: {exc}") from exc
        if self.checksum:
            record["crc"] = zlib.crc32(line.encode("utf-8"))
            line = json.dumps(record, separators=(",", ":"))
        metrics = self._metrics_now()
        self._file.write(line + "\n")
        self._file.flush()
        if self.durable:
            if metrics.enabled:
                fsync_start = time.perf_counter()
                os.fsync(self._file.fileno())
                metrics.histogram("wal.fsync_seconds").observe(
                    time.perf_counter() - fsync_start
                )
            else:
                os.fsync(self._file.fileno())
        self._next_lsn += 1
        self._bytes += len(line) + 1
        if metrics.enabled:
            metrics.counter("wal.appends", {"kind": kind}).inc()
            metrics.counter("wal.bytes_written").inc(len(line) + 1)
            metrics.gauge("wal.size_bytes").set(self._bytes)
            if self.durable:
                metrics.counter("wal.fsyncs").inc()
        return record["lsn"]

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- record helpers ---------------------------------------------------------

    def next_txid(self) -> int:
        """Allocate the next transaction id."""
        txid = self._next_txid
        self._next_txid += 1
        return txid

    def checkpoint(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        database: Any = None,
    ) -> int:
        """Write a full schema snapshot; recovery replays from here.

        ``database`` is an optional relational catalog (any object with a
        ``dump()`` method, i.e. :class:`~repro.storage.database.Database`
        or its snapshot); its dump is embedded in the record so warehouse
        recovery — and journal compaction via :meth:`truncate_before` —
        has a row-level baseline to replay from.
        """
        fields: dict[str, Any] = {"schema": schema_to_dict(schema)}
        if database is not None:
            fields["database"] = database.dump()
        lsn = self.append("checkpoint", **fields)
        self.last_checkpoint_lsn = lsn
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.checkpoints").inc()
        return lsn

    def truncate_before(self, lsn: int, *, archive: bool | None = None) -> int:
        """Compact the journal: drop every record with an LSN below ``lsn``.

        ``lsn`` should be a checkpoint's LSN — everything before it is
        dead weight for recovery, which replays from the most recent
        checkpoint.  The surviving suffix is rewritten atomically
        (write-temp-then-rename); LSNs are preserved, so the sequence
        stays monotonic and :meth:`records` keeps validating.  Returns
        the number of records dropped from the live journal.

        With archiving on (the constructor default, overridable per call),
        the dropped prefix first moves to a numbered segment file — the
        history point-in-time recovery rewinds through.  Without it,
        compaction that would destroy a restore point raises
        :class:`WALError`, and destroying ``dml`` pre-image history is
        loudly warned about: both make the journal unable to answer
        rewinds it promised.
        """
        records = self.records()
        keep = [record for record in records if record["lsn"] >= lsn]
        dropping = [record for record in records if record["lsn"] < lsn]
        dropped = len(dropping)
        if dropped == 0:
            return 0
        archive = self.archive if archive is None else archive
        if not archive:
            points = sorted(
                {r["name"] for r in dropping if r["kind"] == "restore_point"}
            )
            if points:
                raise WALError(
                    f"{self.path}: compaction would destroy restore point(s) "
                    f"{', '.join(points)}; keep archiving enabled or remove "
                    f"the restore points first"
                )
            if any(r["kind"] == "dml" for r in dropping):
                warnings.warn(
                    f"{self.path}: compaction is destroying dml pre-image "
                    f"history; point-in-time recovery cannot rewind below "
                    f"lsn {lsn} (keep archiving enabled to preserve it)",
                    stacklevel=2,
                )
        else:
            self._archive_records(dropping)
        self._file.close()
        tmp = self.path.with_name(self.path.name + ".compact")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in keep:
                    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            if self.fault_injector is not None:
                self.fault_injector.fire("wal.truncate")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        finally:
            # Whatever happened above — temp-file write error, a fault
            # tripping mid-compaction, or the replace going through — the
            # journal must come back usable: reopen the (old or new) file
            # for append and track its true size.
            self._file = open(self.path, "a", encoding="utf-8")
            self._bytes = self.path.stat().st_size
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.truncations").inc()
            metrics.counter("wal.truncated_records").inc(dropped)
            metrics.gauge("wal.size_bytes").set(self._bytes)
        return dropped

    def _archive_records(self, dropping: list[dict[str, Any]]) -> int:
        """Move records compaction is about to drop into a new archive
        segment (``<journal>.NNNN.seg``) and list it in the manifest.

        Idempotent across crash retries: records at or below the
        manifest's high-water LSN are already archived and skipped, so a
        compaction that died between archiving and truncating re-archives
        nothing on the retry.  The segment is written temp-then-rename
        (the ``wal.archive`` fault point sits between the two), and only
        after the rename does the manifest advertise it.
        """
        manifest = read_manifest(self.path)
        segments = manifest["segments"]
        archived_high = segments[-1]["last_lsn"] if segments else 0
        to_archive = [r for r in dropping if r["lsn"] > archived_high]
        if not to_archive:
            return 0
        seq = len(segments) + 1
        name = f"{self.path.name}.{seq:04d}.seg"
        segment_path = self.path.with_name(name)
        data = "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for record in to_archive
        ).encode("utf-8")
        tmp = self.path.with_name(name + ".tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            if self.fault_injector is not None:
                self.fault_injector.fire("wal.archive")
            os.replace(tmp, segment_path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        segments.append(
            {
                "seq": seq,
                "name": name,
                "first_lsn": to_archive[0]["lsn"],
                "last_lsn": to_archive[-1]["lsn"],
                "records": len(to_archive),
                "crc": zlib.crc32(data),
            }
        )
        _write_manifest(self.path, manifest, durable=self.durable)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.archived_records").inc(len(to_archive))
            metrics.gauge("wal.archive_segments").set(len(segments))
        return len(to_archive)

    def chain_records(self) -> list[dict[str, Any]]:
        """The full history: archived segments plus the live journal
        (see :func:`read_chain`)."""
        return read_chain(self.path)

    def begin(self, txid: int) -> int:
        """Journal a transaction start."""
        return self.append("begin", txid=txid)

    def operator(self, txid: int, payload: dict[str, Any]) -> int:
        """Journal one applied basic operator (see :func:`operator_payload`)."""
        return self.append("op", txid=txid, **payload)

    def fact(
        self,
        txid: int,
        coordinates: dict[str, str],
        t: int,
        values: dict[str, float | None],
        *,
        source: str | None = None,
    ) -> int:
        """Journal one fact row loaded inside a transaction.

        ``source`` names the ETL origin (``"<source>#<row-index>"``); the
        field is written only when set, so untagged journals keep their
        exact byte shape.
        """
        fields: dict[str, Any] = {"coordinates": coordinates, "t": t, "values": values}
        if source is not None:
            fields["source"] = source
        return self.append("fact", txid=txid, **fields)

    def catalog(
        self, txid: int, *, table: dict[str, Any], indexes: list[dict[str, Any]]
    ) -> int:
        """Journal one relational table schema (plus its secondary-index
        specs) so warehouse recovery can rebuild tables created after the
        last checkpoint.  ``table`` is a
        :func:`~repro.storage.schema.table_schema_to_dict` payload."""
        lsn = self.append("catalog", txid=txid, table=table, indexes=indexes)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.catalog_records").inc()
        return lsn

    def dml(
        self,
        txid: int,
        action: str,
        table: str,
        rid: int,
        *,
        row: dict[str, Any] | None = None,
        pre: dict[str, Any] | None = None,
    ) -> int:
        """Journal one relational write.

        ``row`` is the post-image (inserts and updates), ``pre`` the
        pre-image (updates and deletes) — recovery replays post-images and
        compaction keeps the pre-images auditable.
        """
        if action not in DML_ACTIONS:
            raise WALError(f"unknown DML action {action!r}")
        if self.fault_injector is not None:
            self.fault_injector.fire("wal.dml")
        fields: dict[str, Any] = {"action": action, "table": table, "rid": rid}
        if row is not None:
            fields["row"] = row
        if pre is not None:
            fields["pre"] = pre
        lsn = self.append("dml", txid=txid, **fields)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.dml_records", {"action": action}).inc()
        return lsn

    def restore_point(self, name: str) -> int:
        """Journal a named restore point — an LSN tag point-in-time
        recovery (:func:`repro.robustness.pitr.recover_to`) rewinds to by
        name.  Re-using a name moves the tag (the newest wins)."""
        if not isinstance(name, str) or not name:
            raise WALError("a restore point needs a non-empty name")
        lsn = self.append("restore_point", name=name)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.restore_points").inc()
        return lsn

    def commit(self, txid: int) -> int:
        """Journal a commit — the durability point of the transaction."""
        return self.append("commit", txid=txid)

    def abort(self, txid: int) -> int:
        """Journal an explicit rollback (advisory: recovery also discards
        transactions that simply lack a commit record)."""
        return self.append("abort", txid=txid)

    # -- reading ----------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Every durable record, in LSN order.

        A torn final line (crash mid-append) is dropped; a malformed line
        elsewhere, an unknown kind, a bad format version, a non-monotonic
        LSN or a CRC mismatch raises :class:`WALError`.
        """
        if not self.path.exists():
            return []
        try:
            out, _ = _scan_lines(_journal_lines(self.path), str(self.path))
        except WALError as exc:
            if getattr(exc, "checksum_mismatch", False):
                metrics = self._metrics_now()
                if metrics.enabled:
                    metrics.counter("wal.checksum_failures").inc()
            raise
        return out

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadJournal({str(self.path)!r}, next_lsn={self._next_lsn})"


# -- archive manifest and full-history reading -----------------------------------


def manifest_path(path: str | Path) -> Path:
    """Where a journal's archive manifest lives (``<journal>.manifest.json``)."""
    path = Path(path)
    return path.with_name(path.name + ".manifest.json")


def read_manifest(path: str | Path) -> dict[str, Any]:
    """The archive manifest of a journal (an empty one when none exists)."""
    target = manifest_path(path)
    if not target.exists():
        return {"format": WAL_FORMAT, "journal": Path(path).name, "segments": []}
    try:
        manifest = json.loads(target.read_text(encoding="utf-8"))
    except ValueError:
        raise WALError(f"{target}: archive manifest is not valid JSON") from None
    if not isinstance(manifest, dict) or not isinstance(
        manifest.get("segments"), list
    ):
        raise WALError(f"{target}: archive manifest has no segment list")
    return manifest


def _write_manifest(
    path: str | Path, manifest: dict[str, Any], *, durable: bool = False
) -> None:
    """Atomically (re)write a journal's archive manifest."""
    target = manifest_path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, separators=(",", ":"))
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp, target)


def _segment_records(
    path: Path, segment: dict[str, Any]
) -> list[dict[str, Any]]:
    """Read and validate one archive segment named by the manifest."""
    segment_path = path.with_name(segment["name"])
    if not segment_path.exists():
        raise WALError(
            f"{segment_path}: archive segment named by the manifest is missing"
        )
    data = segment_path.read_bytes()
    if "crc" in segment and zlib.crc32(data) != segment["crc"]:
        raise WALError(
            f"{segment_path}: archive segment does not match its manifest "
            f"checksum"
        )
    lines = data.decode("utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records, _ = _scan_lines(lines, str(segment_path))
    return records


def read_chain(path: str | Path) -> list[dict[str, Any]]:
    """The journal's full history: archived segments, then the live file.

    A compaction that crashed between archiving and truncating leaves the
    live journal still holding records the newest segment also holds; the
    archived copies are pruned (the live journal wins), so the chain is
    always LSN-monotonic — anything else raises :class:`WALError`.
    """
    path = Path(path)
    chain: list[dict[str, Any]] = []
    for segment in read_manifest(path)["segments"]:
        chain.extend(_segment_records(path, segment))
    live: list[dict[str, Any]] = []
    if path.exists():
        live, _ = _scan_lines(_journal_lines(path), str(path))
    if live:
        chain = [record for record in chain if record["lsn"] < live[0]["lsn"]]
        chain.extend(live)
    last_lsn = 0
    for record in chain:
        if record["lsn"] <= last_lsn:
            raise WALError(
                f"{path}: archive chain is not LSN-monotonic at "
                f"lsn {record['lsn']}"
            )
        last_lsn = record["lsn"]
    return chain


def sweep_journal(path: str | Path) -> dict[str, Any]:
    """A lenient integrity sweep over a journal and its archives.

    Unlike :meth:`WriteAheadJournal.records` this never raises on damage:
    it walks every line of the live journal and every manifest segment,
    collecting ``(severity, message)`` problems — ``"fail"`` for
    unreadable records and checksum mismatches, ``"warn"`` for
    missing/misnumbered/stray archive segments — alongside counters.
    ``repro doctor`` turns the result into alerts and metrics.
    """
    path = Path(path)
    out: dict[str, Any] = {
        "records": 0,
        "checksum_failures": 0,
        "archive_segments": 0,
        "archived_records": 0,
        "problems": [],
    }
    problems: list[tuple[str, str]] = out["problems"]
    if path.exists():
        records, damage = _scan_lines(
            _journal_lines(path), str(path), strict=False
        )
        out["records"] = len(records)
        for problem in damage:
            if problem["checksum"]:
                out["checksum_failures"] += 1
            problems.append(
                ("fail", f"{path.name}:{problem['line']}: {problem['reason']}")
            )
    try:
        manifest = read_manifest(path)
    except WALError as exc:
        problems.append(("fail", str(exc)))
        return out
    segments = manifest["segments"]
    out["archive_segments"] = len(segments)
    listed: set[str] = set()
    for expected_seq, segment in enumerate(segments, start=1):
        name = segment.get("name", f"segment #{expected_seq}")
        listed.add(name)
        if segment.get("seq") != expected_seq:
            problems.append(
                (
                    "warn",
                    f"{name}: misnumbered archive segment "
                    f"(seq {segment.get('seq')!r}, expected {expected_seq})",
                )
            )
        segment_path = path.with_name(name)
        if not segment_path.exists():
            problems.append(
                ("warn", f"{name}: archive segment named by the manifest is missing")
            )
            continue
        data = segment_path.read_bytes()
        if "crc" in segment and zlib.crc32(data) != segment["crc"]:
            out["checksum_failures"] += 1
            problems.append(
                (
                    "fail",
                    f"{name}: archive segment does not match its manifest checksum",
                )
            )
            continue
        lines = data.decode("utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records, damage = _scan_lines(lines, name, strict=False)
        out["archived_records"] += len(records)
        for problem in damage:
            if problem["checksum"]:
                out["checksum_failures"] += 1
            problems.append(
                ("fail", f"{name}:{problem['line']}: {problem['reason']}")
            )
    for stray in sorted(path.parent.glob(path.name + ".*.seg")):
        if stray.name not in listed:
            problems.append(
                ("warn", f"{stray.name}: archive segment not named by the manifest")
            )
    return out
